"""The shared perf-trajectory scenario, in exactly one place.

``test_bench_backends.py`` (the asserted benchmarks) and
``bench_report.py`` (the per-commit ``BENCH_<sha>.json`` artifact) must
measure the *same* workload, or the trajectory silently stops being
comparable; both import the design-point list and the timing harness
from here.

Speedup assertions are scaled by ``REPRO_BENCH_SPEEDUP_SCALE`` (default
1.0): CI sets it below 1 so a throttled shared runner cannot fail a push
on timing noise, while local runs keep the strict floors.
"""

from __future__ import annotations

import os
import time

from repro.core.design_space import DesignPoint

#: The design-space sweep scenario every backend benchmark pins down
#: (also the scenario of ``test_bench_design_space.py``).
DESIGN_POINTS = [
    DesignPoint(rows=128, cols=128, supported_depths=(1, 2)),
    DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4)),
    DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4, 8)),
    DesignPoint(rows=256, cols=256, supported_depths=(1, 2, 4)),
]

#: The transformer-suite serving scenario (``test_bench_transformers.py``
#: and the ``BENCH_<sha>.json`` artifact): the ``transformers`` registry
#: suite scheduled on the paper's two array geometries, cold and
#: store-warm.
TRANSFORMER_SUITE = "transformers"
TRANSFORMER_SIZES = (128, 256)


#: The sampled-vs-cycle scenario (``test_bench_sampled.py`` and the
#: ``BENCH_<sha>.json`` artifact): the ``cnn`` registry suite under
#: batched inference, scheduled per layer on one mid-size geometry.  The
#: batch scaling puts the streamed dimension T squarely in the big-model
#: regime the sampled backend exists for (the cycle backend's cost grows
#: with T; the sampled backend's calibrated probes do not).
CNN_SAMPLED_SUITE = "cnn"
CNN_SAMPLED_BATCH = 4
CNN_SAMPLED_SIZE = 64


def schedule_cnn_suite(backend, batch: int = CNN_SAMPLED_BATCH):
    """Run the sampled-vs-cycle scenario once on ``backend``.

    Returns the per-workload :class:`~repro.core.metrics.ModelSchedule`
    objects (the accuracy assertions need per-layer cycles and error
    bounds, not just totals), in the suite's sorted-key order.
    """
    from repro.core.config import ArrayFlexConfig
    from repro.workloads import get_suite

    config = ArrayFlexConfig(rows=CNN_SAMPLED_SIZE, cols=CNN_SAMPLED_SIZE)
    return [
        backend.schedule_model(workload, config)
        for workload in get_suite(CNN_SAMPLED_SUITE, batch=batch)
    ]


#: The batched-engine scenario (``test_bench_engine.py`` and the
#: ``BENCH_<sha>.json`` artifact): one batch of same-depth tiles through
#: ``CycleAccurateSystolicArray.simulate_tiles`` vs the same tiles
#: through a scalar ``simulate_tile`` loop.  Small array, many tiles —
#: the regime where per-tile Python stepping overhead dominates and the
#: closed-form batched path pays off most.
ENGINE_TILE_SIZE = 16
ENGINE_TILE_T = 32
ENGINE_TILE_BATCH = 64
ENGINE_TILE_DEPTH = 2


def engine_tile_operands():
    """Deterministic same-depth operand tiles of the engine scenario.

    A mix of full and edge tile shapes, so the batched call exercises the
    heterogeneous-shape path it runs in production.
    """
    import numpy as np

    rng = np.random.default_rng(20230307)
    a_tiles, b_tiles = [], []
    for index in range(ENGINE_TILE_BATCH):
        rows_used = ENGINE_TILE_SIZE if index % 4 else ENGINE_TILE_SIZE - 3
        cols_used = ENGINE_TILE_SIZE if index % 5 else ENGINE_TILE_SIZE - 7
        a_tiles.append(
            rng.integers(-8, 8, size=(ENGINE_TILE_T, rows_used), dtype=np.int64)
        )
        b_tiles.append(
            rng.integers(-8, 8, size=(rows_used, cols_used), dtype=np.int64)
        )
    return a_tiles, b_tiles


def engine_array():
    """A fresh array of the engine scenario's geometry."""
    from repro.sim.systolic_sim import CycleAccurateSystolicArray

    return CycleAccurateSystolicArray(
        rows=ENGINE_TILE_SIZE,
        cols=ENGINE_TILE_SIZE,
        collapse_depth=ENGINE_TILE_DEPTH,
    )


def run_batched_tiles(array, a_tiles, b_tiles):
    """One batched ``simulate_tiles`` call over the whole scenario batch."""
    return array.simulate_tiles(a_tiles, b_tiles)


def run_scalar_tiles(array, a_tiles, b_tiles):
    """The same tiles through the scalar register-stepping reference."""
    return [
        array.simulate_tile(a_tile, b_tile)
        for a_tile, b_tile in zip(a_tiles, b_tiles)
    ]


def transformer_workloads():
    """Fresh workload objects of the transformer scenario (sorted by key)."""
    from repro.workloads import get_suite

    return get_suite(TRANSFORMER_SUITE)


def schedule_transformer_suite(backend):
    """Run the transformer scenario once on ``backend``; returns totals.

    Totals (not schedules) are what sweep-style consumers aggregate, and
    the pairs keep the workload order of :func:`transformer_workloads`.
    """
    from repro.backends import model_totals
    from repro.core.config import ArrayFlexConfig

    totals = []
    for size in TRANSFORMER_SIZES:
        config = ArrayFlexConfig(rows=size, cols=size)
        for workload in transformer_workloads():
            totals.append(
                (
                    model_totals(backend, workload, config, conventional=False),
                    model_totals(backend, workload, config, conventional=True),
                )
            )
    return totals


def design_space_sweep(activity_model=None, backend=None):
    """Run the design-space scenario once under one activity model.

    The activity-aware counterpart of the scenario every backend
    benchmark pins down: same points, same workloads, with the per-layer
    power pass priced by ``activity_model`` (``None``/"constant" is the
    bit-identical historical path; "utilization" exercises the vectorised
    tiling-utilization computation).  Returns the point results.
    """
    from repro.core.design_space import DesignSpaceExplorer
    from repro.nn.models import model_zoo

    explorer = DesignSpaceExplorer(
        list(model_zoo().values()),
        backend=backend or "batched",
        activity_model=activity_model,
    )
    return explorer.explore(DESIGN_POINTS)


#: The ablation-sweep scenario (``test_bench_ablations.py`` and the
#: ``BENCH_<sha>.json`` artifact): one importance study — the default
#: three components (activity model, geometry, collapse-depth menu) on
#: the ``cnn`` registry suite — fanned out through one
#: ``SchedulingService.submit_many`` batch.  A small baseline geometry
#: keeps the scenario bench-sized while still paying the real engine
#: cost: run generation, service fan-out, ranking.
ABLATION_SUITE = "cnn"
ABLATION_SIZE = 64


def ablation_study(executor: str = "thread"):
    """A fresh study object of the ablation-sweep scenario."""
    from repro.eval.ablation import AblationStudy, Component

    return AblationStudy(
        components=[
            Component("activity_model", "constant", ("utilization",)),
            Component(
                "geometry",
                (ABLATION_SIZE, ABLATION_SIZE),
                ((2 * ABLATION_SIZE, 2 * ABLATION_SIZE),),
            ),
            Component("depths", (1, 2, 4), ((1, 2),)),
        ],
        fixed={"suite": ABLATION_SUITE},
        executor=executor,
    )


def run_ablation_sweep(executor: str = "thread"):
    """Run the ablation-sweep scenario once; returns the StudyResult."""
    return ablation_study(executor=executor).run()


#: The observability-overhead scenario (``test_bench_obs.py`` and the
#: ``BENCH_<sha>.json`` artifact): the design-space sweep under three
#: tracer regimes.  The *bypass* tracer's ``span()`` returns the shared
#: null span unconditionally — as close to "instrumentation compiled
#: out" as Python allows, so it stands in for the pre-instrumentation
#: baseline.  The real tracer *disabled* (the production default, one
#: attribute check per site) must stay within ``OBS_DISABLED_STRICT`` of
#: the bypass; *enabled* (every span allocated and recorded) within
#: ``OBS_ENABLED_STRICT`` of disabled.
OBS_DISABLED_STRICT = 1.05
OBS_ENABLED_STRICT = 1.15


def bypass_tracer():
    """A tracer whose ``span()`` skips even the enabled check."""
    from repro.obs.trace import _NULL, Tracer

    class _BypassTracer(Tracer):
        def span(self, name, trace_id=None, **attributes):
            return _NULL

    return _BypassTracer()


def sweep_under_tracer(tracer):
    """One design-space sweep with ``tracer`` installed as the global."""
    from repro.obs.trace import set_tracer

    previous = set_tracer(tracer)
    try:
        return design_space_sweep()
    finally:
        set_tracer(previous)


#: The store-warm-load scenario (``test_bench_store.py`` and the
#: ``BENCH_<sha>.json`` artifact): one >= 10k-decision shard, loaded warm
#: by a fresh process the way every pool worker of a sweep does.  The
#: baseline is the v1 JSON shard format (one payload object, string
#: keys, fully materialised list rows) parsed the way the v1 store did.
STORE_WARM_ROWS = 10_000
STORE_WARM_CONFIG_KEY = ("bench-store-warm", 128, 128)
STORE_WARM_PROBES = 64


def store_warm_rows(count: int = STORE_WARM_ROWS):
    """``count`` synthetic decision rows keyed by distinct (m, n, t).

    Full-width rows (every power column populated, half the rows with a
    finite ``error_bound``) so the scenario pays the real per-row cost.
    """
    rows = {}
    for i in range(count):
        key = (i + 1, (i % 97) + 1, (i % 89) + 1)
        bound = None if i % 2 else 1e-3 + i * 1e-9
        rows[key] = [
            1 + i % 4,
            1_000 + i,
            1.7,
            58.8 + i,
            3.5,
            0.5,
            0.9,
            *[float(i % 7) + j * 0.125 for j in range(8)],
            bound,
        ]
    return rows


def build_columnar_store(directory, count: int = STORE_WARM_ROWS):
    """Write the scenario's decisions as one columnar v2 shard."""
    from repro.backends.store import DecisionStore

    store = DecisionStore(directory)
    store.put_many(STORE_WARM_CONFIG_KEY, store_warm_rows(count))
    return store


def write_json_v1_shard(path, count: int = STORE_WARM_ROWS):
    """Write the same decisions in the v1 JSON shard format."""
    import json

    decisions = {
        ",".join(map(str, key)): row for key, row in store_warm_rows(count).items()
    }
    payload = {
        "version": "1.3",
        "config_key": list(STORE_WARM_CONFIG_KEY),
        "decisions": decisions,
    }
    path.write_text(json.dumps(payload))
    return path


def columnar_warm_load(directory):
    """One warm columnar load: fresh store handle, mmap + index build."""
    from repro.backends.store import DecisionStore

    return DecisionStore(directory).load(STORE_WARM_CONFIG_KEY)


def json_v1_warm_load(path):
    """One warm v1 load: parse the JSON payload into the row dict."""
    import json

    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)["decisions"]


def _vm_rss_kb() -> int:
    """Resident set size of this process in KiB (0 if unavailable)."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def _trim_heap() -> None:
    """Release free malloc arenas back to the OS (glibc; no-op elsewhere).

    The RSS workers fork from whatever process pytest has become by the
    time this scenario runs; inherited free arenas would let the loads
    recycle already-resident pages and read as ~zero RSS growth.
    Trimming first restores the fresh-heap condition the comparison is
    about.
    """
    import ctypes

    try:
        ctypes.CDLL("libc.so.6").malloc_trim(0)
    except (OSError, AttributeError):
        pass


#: How many simultaneous loads each RSS worker holds.  A single load can
#: hide inside allocator arenas the worker inherited over ``fork``;
#: holding several live at once forces real heap growth, and the
#: per-load average is what gets compared.
STORE_WARM_RSS_LOADS = 3


def rss_delta_columnar_worker(directory) -> float:
    """Pool worker: per-load RSS growth (KiB), columnar path + probes."""
    _trim_heap()
    before = _vm_rss_kb()
    views = [columnar_warm_load(directory) for _ in range(STORE_WARM_RSS_LOADS)]
    for view in views:
        probes = [view.get(key) for key in list(view.keys())[:STORE_WARM_PROBES]]
        assert len(probes) == STORE_WARM_PROBES and all(p is not None for p in probes)
    after = _vm_rss_kb()
    return (after - before) / STORE_WARM_RSS_LOADS


def rss_delta_json_worker(path) -> float:
    """Pool worker: per-load RSS growth (KiB), v1 JSON path + probes."""
    _trim_heap()
    before = _vm_rss_kb()
    tables = [json_v1_warm_load(path) for _ in range(STORE_WARM_RSS_LOADS)]
    for table in tables:
        probes = [table[key] for key in list(table)[:STORE_WARM_PROBES]]
        assert len(probes) == STORE_WARM_PROBES
    after = _vm_rss_kb()
    return (after - before) / STORE_WARM_RSS_LOADS


#: The daemon HTTP-overhead scenario (``test_bench_daemon.py`` and the
#: ``BENCH_<sha>.json`` artifact): ``DAEMON_BENCH_CALLS`` schedule calls
#: of distinct ``DAEMON_BENCH_LAYERS``-layer GEMM workloads, once as
#: direct ``SchedulingService.submit()`` library calls and once as
#: ``POST /v1/schedule`` round-trips against a daemon wrapping an
#: identical service.  The streamed dimension T encodes both the run and
#: the call index, so no timed call ever degenerates into a dedup or
#: decision-cache hit: the measured ratio is real scheduling work with
#: vs without the HTTP layer on top.
DAEMON_BENCH_CALLS = 8
DAEMON_BENCH_LAYERS = 384
DAEMON_BENCH_SIZE = 64
DAEMON_OVERHEAD_STRICT = 1.75


def daemon_bench_requests(run: int):
    """The ``run``-th batch of distinct schedule requests.

    Shapes are disjoint across calls *and* runs, so repeated best-of
    rounds keep paying the full scheduling cost on both paths.
    """
    from repro.core.config import ArrayFlexConfig
    from repro.nn.gemm_mapping import GemmShape
    from repro.serve import Request

    config = ArrayFlexConfig(rows=DAEMON_BENCH_SIZE, cols=DAEMON_BENCH_SIZE)
    requests = []
    for call in range(DAEMON_BENCH_CALLS):
        offset = (run * DAEMON_BENCH_CALLS + call) * DAEMON_BENCH_LAYERS
        gemms = tuple(
            GemmShape(
                m=64 + layer,
                n=64 + (layer % 9),
                t=784 + offset + layer,
                name=f"bench-r{run}-c{call}-l{layer}",
            )
            for layer in range(DAEMON_BENCH_LAYERS)
        )
        requests.append(
            Request(
                model=gemms,
                config=config,
                totals_only=True,
                model_name=f"daemon-bench-{run}-{call}",
            )
        )
    return requests


def run_direct_schedules(service, requests) -> None:
    """The library path: one blocking ``submit()`` per request."""
    for request in requests:
        assert service.submit(request).ok


def run_http_schedules(client, requests) -> None:
    """The HTTP path: one ``POST /v1/schedule`` round-trip per request."""
    for request in requests:
        assert client.schedule(request)["status"] == "ok"


def best_of(fn, rounds: int = 3) -> float:
    """Best-of-N wall-clock seconds of ``fn()``."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def speedup_floor(strict: float) -> float:
    """An asserted speedup threshold, relaxed on noisy (CI) machines."""
    return strict * float(os.environ.get("REPRO_BENCH_SPEEDUP_SCALE", "1.0"))


def overhead_ceiling(strict: float) -> float:
    """An asserted slowdown-ratio cap (> 1.0), relaxed on noisy machines.

    The counterpart of :func:`speedup_floor` for overhead assertions:
    ``strict = 1.10`` means "at most 10% slower"; CI's
    ``REPRO_BENCH_SPEEDUP_SCALE < 1`` widens the margin the same way it
    lowers speedup floors.
    """
    scale = float(os.environ.get("REPRO_BENCH_SPEEDUP_SCALE", "1.0"))
    return 1.0 + (strict - 1.0) / scale
