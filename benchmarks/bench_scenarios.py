"""The shared perf-trajectory scenario, in exactly one place.

``test_bench_backends.py`` (the asserted benchmarks) and
``bench_report.py`` (the per-commit ``BENCH_<sha>.json`` artifact) must
measure the *same* workload, or the trajectory silently stops being
comparable; both import the design-point list and the timing harness
from here.

Speedup assertions are scaled by ``REPRO_BENCH_SPEEDUP_SCALE`` (default
1.0): CI sets it below 1 so a throttled shared runner cannot fail a push
on timing noise, while local runs keep the strict floors.
"""

from __future__ import annotations

import os
import time

from repro.core.design_space import DesignPoint

#: The design-space sweep scenario every backend benchmark pins down
#: (also the scenario of ``test_bench_design_space.py``).
DESIGN_POINTS = [
    DesignPoint(rows=128, cols=128, supported_depths=(1, 2)),
    DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4)),
    DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4, 8)),
    DesignPoint(rows=256, cols=256, supported_depths=(1, 2, 4)),
]

#: The transformer-suite serving scenario (``test_bench_transformers.py``
#: and the ``BENCH_<sha>.json`` artifact): the ``transformers`` registry
#: suite scheduled on the paper's two array geometries, cold and
#: store-warm.
TRANSFORMER_SUITE = "transformers"
TRANSFORMER_SIZES = (128, 256)


#: The sampled-vs-cycle scenario (``test_bench_sampled.py`` and the
#: ``BENCH_<sha>.json`` artifact): the ``cnn`` registry suite under
#: batched inference, scheduled per layer on one mid-size geometry.  The
#: batch scaling puts the streamed dimension T squarely in the big-model
#: regime the sampled backend exists for (the cycle backend's cost grows
#: with T; the sampled backend's calibrated probes do not).
CNN_SAMPLED_SUITE = "cnn"
CNN_SAMPLED_BATCH = 4
CNN_SAMPLED_SIZE = 64


def schedule_cnn_suite(backend, batch: int = CNN_SAMPLED_BATCH):
    """Run the sampled-vs-cycle scenario once on ``backend``.

    Returns the per-workload :class:`~repro.core.metrics.ModelSchedule`
    objects (the accuracy assertions need per-layer cycles and error
    bounds, not just totals), in the suite's sorted-key order.
    """
    from repro.core.config import ArrayFlexConfig
    from repro.workloads import get_suite

    config = ArrayFlexConfig(rows=CNN_SAMPLED_SIZE, cols=CNN_SAMPLED_SIZE)
    return [
        backend.schedule_model(workload, config)
        for workload in get_suite(CNN_SAMPLED_SUITE, batch=batch)
    ]


def transformer_workloads():
    """Fresh workload objects of the transformer scenario (sorted by key)."""
    from repro.workloads import get_suite

    return get_suite(TRANSFORMER_SUITE)


def schedule_transformer_suite(backend):
    """Run the transformer scenario once on ``backend``; returns totals.

    Totals (not schedules) are what sweep-style consumers aggregate, and
    the pairs keep the workload order of :func:`transformer_workloads`.
    """
    from repro.backends import model_totals
    from repro.core.config import ArrayFlexConfig

    totals = []
    for size in TRANSFORMER_SIZES:
        config = ArrayFlexConfig(rows=size, cols=size)
        for workload in transformer_workloads():
            totals.append(
                (
                    model_totals(backend, workload, config, conventional=False),
                    model_totals(backend, workload, config, conventional=True),
                )
            )
    return totals


def design_space_sweep(activity_model=None, backend=None):
    """Run the design-space scenario once under one activity model.

    The activity-aware counterpart of the scenario every backend
    benchmark pins down: same points, same workloads, with the per-layer
    power pass priced by ``activity_model`` (``None``/"constant" is the
    bit-identical historical path; "utilization" exercises the vectorised
    tiling-utilization computation).  Returns the point results.
    """
    from repro.core.design_space import DesignSpaceExplorer
    from repro.nn.models import model_zoo

    explorer = DesignSpaceExplorer(
        list(model_zoo().values()),
        backend=backend or "batched",
        activity_model=activity_model,
    )
    return explorer.explore(DESIGN_POINTS)


def best_of(fn, rounds: int = 3) -> float:
    """Best-of-N wall-clock seconds of ``fn()``."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def speedup_floor(strict: float) -> float:
    """An asserted speedup threshold, relaxed on noisy (CI) machines."""
    return strict * float(os.environ.get("REPRO_BENCH_SPEEDUP_SCALE", "1.0"))


def overhead_ceiling(strict: float) -> float:
    """An asserted slowdown-ratio cap (> 1.0), relaxed on noisy machines.

    The counterpart of :func:`speedup_floor` for overhead assertions:
    ``strict = 1.10`` means "at most 10% slower"; CI's
    ``REPRO_BENCH_SPEEDUP_SCALE < 1`` widens the margin the same way it
    lowers speedup floors.
    """
    scale = float(os.environ.get("REPRO_BENCH_SPEEDUP_SCALE", "1.0"))
    return 1.0 + (strict - 1.0) / scale
