"""Benchmark harness for the Section IV operating points.

The paper implements both designs with a 28 nm flow and reports:
conventional SA at 2 GHz; ArrayFlex at 1.8 GHz (k = 1), 1.7 GHz (k = 2) and
1.4 GHz (k = 4); k = 3 unsupported because it does not divide a
power-of-two array.  The same numbers must fall out of the calibrated
technology model, and the closed-form Eq. (5) must agree with the
graph-based static timing analysis of the collapsed pipeline block.
"""

import pytest

from repro.eval import ClockFrequencyExperiment
from repro.core.config import ArrayFlexConfig


def test_operating_points_and_sta(benchmark):
    experiment = ClockFrequencyExperiment(kmax=4)
    result = benchmark(experiment.run)

    print()
    print(experiment.render(result))

    # The paper's reported operating points.
    assert result.conventional_ghz == pytest.approx(2.0, abs=1e-9)
    assert result.mode_ghz[1] == pytest.approx(1.8, abs=1e-9)
    assert result.mode_ghz[2] == pytest.approx(1.7, abs=1e-9)
    assert result.mode_ghz[4] == pytest.approx(1.4, abs=1e-9)

    # Eq. (5) and the netlist-level STA agree exactly for every depth.
    for depth in (1, 2, 3, 4):
        assert result.sta_period_ps[depth] == pytest.approx(
            result.eq5_period_ps[depth], rel=1e-12
        )

    # Deeper collapsing monotonically slows the clock.
    periods = [result.eq5_period_ps[d] for d in (1, 2, 3, 4)]
    assert all(a < b for a, b in zip(periods, periods[1:]))


def test_k3_rejected_for_power_of_two_arrays():
    """Collapsing three stages is not supported on 128x128 / 256x256 arrays."""
    with pytest.raises(ValueError):
        ArrayFlexConfig(rows=128, cols=128, supported_depths=(1, 2, 3, 4))
    with pytest.raises(ValueError):
        ArrayFlexConfig(rows=256, cols=256, supported_depths=(1, 3))
    # ...but it is legal on the 132x132 array of Fig. 5.
    config = ArrayFlexConfig.fig5_132x132()
    assert 3 in config.supported_depths
