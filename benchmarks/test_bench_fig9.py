"""Benchmark harness for Fig. 9: average power and energy-delay product.

Regenerates the power comparison of both designs over complete runs of the
three CNNs.  The paper's findings:

* ArrayFlex consumes *more* power than the conventional SA when both run in
  normal pipeline mode (extra switched capacitance), but
* it spends most of each CNN in shallow modes, where the lower clock and
  the clock-gated transparent registers win, giving 13%-15% savings on
  128x128 arrays and 17%-23% on 256x256 arrays;
* combined with the latency savings this yields a 1.4x-1.8x energy-delay
  product advantage.
"""

import pytest

from repro.eval import Fig9Experiment


@pytest.fixture(scope="module")
def fig9_result():
    return Fig9Experiment(sizes=(128, 256)).run()


def test_fig9_average_power(benchmark):
    experiment = Fig9Experiment(sizes=(128, 256))
    result = benchmark(experiment.run)

    print()
    print(experiment.render(result))

    # Power savings band: close to the paper's 13%-15% (128) and 17%-23% (256).
    low128, high128 = result.power_saving_range(128)
    low256, high256 = result.power_saving_range(256)
    assert 0.08 <= low128 and high128 <= 0.20
    assert 0.10 <= low256 and high256 <= 0.28
    # Larger arrays save more power (more time in deep collapse modes).
    assert high256 > high128

    # EDP advantage in (or near) the paper's 1.4x-1.8x window.
    edp_low, edp_high = result.edp_range()
    assert 1.25 <= edp_low
    assert edp_high <= 1.95


def test_fig9_normal_mode_costs_more_power(fig9_result):
    """In normal pipeline mode ArrayFlex pays for its extra hardware."""
    for entry in fig9_result.entries:
        k1_power = entry.mode_power_mw[1]
        assert k1_power > entry.conventional_power_mw * 0.98  # never cheaper
        # Shallow modes are cheaper than the conventional baseline.
        assert entry.mode_power_mw[4] < entry.conventional_power_mw


def test_fig9_shallow_modes_dominate_runtime(fig9_result):
    """ArrayFlex spends the majority of every run in shallow pipeline modes."""
    for entry in fig9_result.entries:
        shallow_share = sum(
            share for depth, share in entry.mode_time_share.items() if depth > 1
        )
        assert shallow_share > 0.5, entry.model_name
