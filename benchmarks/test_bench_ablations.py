"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three ablations:

* ``abl_csa`` -- Section III-B inserts a 3:2 carry-save adder per PE so a
  collapsed column accumulates in carry-save form; without it, every
  collapsed stage would contribute a full carry-propagate-adder delay.
  The benchmark quantifies how the clock and the end-to-end savings
  degrade without the CSAs.
* ``abl_dirs`` -- the paper collapses both the vertical (reduction) and the
  horizontal (broadcast) pipelines; the benchmark isolates each direction's
  contribution to the cycle reduction.
* ``ablation_sweep`` -- the declarative importance harness: the default
  three-component study (activity model, geometry, collapse-depth menu)
  fanned out through one ``SchedulingService.submit_many`` batch.  The
  qualitative assertions pin the facts the harness exists to surface:
  every run schedules, the ranking covers every component, and with an
  exact backend every nonzero delta is significant (zero-width bounds).
"""

from bench_scenarios import ablation_study

from repro.eval import CsaAblationExperiment, DirectionAblationExperiment


def test_csa_ablation(benchmark):
    experiment = CsaAblationExperiment(rows=128, cols=128)
    result = benchmark(experiment.run)

    print()
    print(experiment.render(result))

    by_depth = {entry.collapse_depth: entry for entry in result.entries}

    # Without CSAs the clock degrades strictly faster with k.
    assert (
        by_depth[4].period_without_csa_ps - by_depth[1].period_without_csa_ps
        > by_depth[4].period_with_csa_ps - by_depth[1].period_with_csa_ps
    )

    # With CSAs, fixed shallow modes still save time on this model; without
    # them the savings collapse (and turn negative for the deep mode).
    assert by_depth[2].model_saving_with_csa > by_depth[2].model_saving_without_csa
    assert by_depth[4].model_saving_with_csa > 0.0
    assert by_depth[4].model_saving_without_csa < 0.0


def test_direction_ablation(benchmark):
    experiment = DirectionAblationExperiment(rows=128, cols=128, depths=(2, 4))
    result = benchmark(experiment.run)

    print()
    print(experiment.render(result))

    for entry in result.entries:
        # Each single direction already helps...
        assert entry.cycles_vertical_only < entry.cycles_conventional
        assert entry.cycles_horizontal_only < entry.cycles_conventional
        # ...but collapsing both directions is strictly better than either.
        assert entry.cycles_both < entry.cycles_vertical_only
        assert entry.cycles_both < entry.cycles_horizontal_only
        # For a square array both single-direction variants save the same
        # number of cycles (symmetric R/k and C/k terms).
        assert entry.cycles_vertical_only == entry.cycles_horizontal_only


def test_ablation_sweep(benchmark):
    study = ablation_study()
    result = benchmark(study.run)

    print()
    print(result.render())

    assert all(run.ok for run in result.runs)
    assert {entry.component for entry in result.ranking} == {
        component.name for component in study.components
    }
    assert [entry.rank for entry in result.ranking] == [1, 2, 3]
    scores = [entry.score for entry in result.ranking]
    assert scores == sorted(scores, reverse=True)

    # Exact backend: every delta carries a zero-width bound, so any
    # component that moved the metric at all must rank as significant.
    for entry in result.ranking:
        if entry.score > 0.0:
            assert entry.significant(study.metric)
