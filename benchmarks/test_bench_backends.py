"""Benchmark: the three execution backends against each other.

Not a paper figure: this tracks the cost of the pluggable backend layer
and the speedup of the batched/cached fast path, on the two hot paths the
perf trajectory watches — whole-model scheduling (``resnet34``) and the
design-space exploration scenario of ``test_bench_design_space``.

Pinned conclusions:

* all three backends agree numerically on ResNet-34 (the batched backend
  bit-exactly, the cycle-accurate backend because the simulator is
  cycle-exact w.r.t. Eq. (3));
* the batched/cached backend runs the design-space scenario at least
  3x faster than the seed's per-layer analytical path;
* a *warm* rerun — a fresh backend whose decisions all come from the
  disk-persistent store, i.e. what a repeated CLI/CI invocation sees —
  runs the same scenario at least 5x faster than a cold analytical run,
  with bit-identical results.
"""

from bench_scenarios import DESIGN_POINTS, best_of as _best_of, speedup_floor

from repro.backends import (
    AnalyticalBackend,
    BatchedCachedBackend,
    CycleAccurateBackend,
    DecisionStore,
)
from repro.core.config import ArrayFlexConfig
from repro.core.design_space import DesignSpaceExplorer
from repro.nn.models import model_zoo, resnet34


# ---------------------------------------------------------------------- #
# Whole-model scheduling
# ---------------------------------------------------------------------- #
def test_backend_analytical_resnet34(benchmark):
    config = ArrayFlexConfig.paper_128x128()
    backend = AnalyticalBackend()
    model = resnet34()
    schedule = benchmark(backend.schedule_model, model, config)
    assert len(schedule.layers) == model.num_layers


def test_backend_batched_resnet34(benchmark):
    config = ArrayFlexConfig.paper_128x128()
    backend = BatchedCachedBackend()
    model = resnet34()
    schedule = benchmark(backend.schedule_model, model, config)
    assert schedule.layers == AnalyticalBackend().schedule_model(model, config).layers


def test_backend_cycle_accurate_resnet34(benchmark):
    """Measured scheduling on a 16x16 array (memoised steady state).

    The cycle backend simulates one tile per distinct (T, mode) pair and
    reuses the measurement afterwards; the benchmark therefore reports
    the memoised steady state, which is the regime any repeated-use
    deployment of this backend runs in.
    """
    config = ArrayFlexConfig(rows=16, cols=16)
    backend = CycleAccurateBackend()
    model = resnet34()
    schedule = benchmark(backend.schedule_model, model, config)
    reference = AnalyticalBackend().schedule_model(model, config)
    assert schedule.layers == reference.layers


# ---------------------------------------------------------------------- #
# Design-space sweep: the acceptance scenario
# ---------------------------------------------------------------------- #
def test_batched_backend_speeds_up_design_space_sweep(benchmark):
    """The batched/cached backend runs the design-space scenario >= 3x
    faster than the seed's per-layer analytical path."""
    models = list(model_zoo().values())
    analytical = DesignSpaceExplorer(models, backend="analytical")
    batched = DesignSpaceExplorer(models, backend="batched")

    reference = analytical.explore(DESIGN_POINTS)
    fast = batched.explore(DESIGN_POINTS)
    assert fast == reference  # numerically identical schedules and scores

    analytical_s = _best_of(lambda: analytical.explore(DESIGN_POINTS))
    batched_s = _best_of(lambda: batched.explore(DESIGN_POINTS))
    speedup = analytical_s / batched_s
    print(
        f"\nanalytical {analytical_s * 1e3:.1f} ms  "
        f"batched {batched_s * 1e3:.1f} ms  speedup {speedup:.1f}x"
    )
    floor = speedup_floor(3.0)
    assert speedup >= floor, f"expected >= {floor:.1f}x, measured {speedup:.2f}x"

    # Track the batched path in the perf trajectory.
    benchmark(batched.explore, DESIGN_POINTS)


def test_warm_cache_rerun_speeds_up_design_space_sweep(benchmark, tmp_path):
    """A disk-warm rerun of the sweep is >= 5x faster than cold analytical.

    "Rerun" means what CI sees: a brand-new process — so every round
    builds a fresh backend and a fresh store handle, and every decision
    comes off disk, not from the in-memory LRU of a previous round.
    """
    models = list(model_zoo().values())

    def cold_analytical():
        explorer = DesignSpaceExplorer(models, backend=AnalyticalBackend())
        return explorer.explore(DESIGN_POINTS)

    def warm_rerun():
        backend = BatchedCachedBackend(store=DecisionStore(tmp_path))
        return DesignSpaceExplorer(models, backend=backend).explore(DESIGN_POINTS)

    reference = cold_analytical()
    # Seed the store once (the "first ever" run), then rerun warm.
    seed_backend = BatchedCachedBackend(store=DecisionStore(tmp_path))
    DesignSpaceExplorer(models, backend=seed_backend).explore(DESIGN_POINTS)

    assert warm_rerun() == reference  # bit-identical decisions and scores
    probe = BatchedCachedBackend(store=DecisionStore(tmp_path))
    DesignSpaceExplorer(models, backend=probe).explore(DESIGN_POINTS)
    assert probe.cache_info()["misses"] == 0  # nothing re-derived

    analytical_s = _best_of(cold_analytical)
    warm_s = _best_of(warm_rerun)
    speedup = analytical_s / warm_s
    print(
        f"\ncold analytical {analytical_s * 1e3:.1f} ms  "
        f"warm rerun {warm_s * 1e3:.1f} ms  speedup {speedup:.1f}x"
    )
    floor = speedup_floor(5.0)
    assert speedup >= floor, f"expected >= {floor:.1f}x, measured {speedup:.2f}x"

    # Track the warm serving path in the perf trajectory.
    benchmark(warm_rerun)
