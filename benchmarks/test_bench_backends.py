"""Benchmark: the three execution backends against each other.

Not a paper figure: this tracks the cost of the pluggable backend layer
and the speedup of the batched/cached fast path, on the two hot paths the
perf trajectory watches — whole-model scheduling (``resnet34``) and the
design-space exploration scenario of ``test_bench_design_space``.

Pinned conclusions:

* all three backends agree numerically on ResNet-34 (the batched backend
  bit-exactly, the cycle-accurate backend because the simulator is
  cycle-exact w.r.t. Eq. (3));
* the batched/cached backend runs the design-space scenario at least
  3x faster than the seed's per-layer analytical path.
"""

import time

from repro.backends import AnalyticalBackend, BatchedCachedBackend, CycleAccurateBackend
from repro.core.config import ArrayFlexConfig
from repro.core.design_space import DesignPoint, DesignSpaceExplorer
from repro.nn.models import model_zoo, resnet34

#: The exact scenario of benchmarks/test_bench_design_space.py.
DESIGN_POINTS = [
    DesignPoint(rows=128, cols=128, supported_depths=(1, 2)),
    DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4)),
    DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4, 8)),
    DesignPoint(rows=256, cols=256, supported_depths=(1, 2, 4)),
]


def _best_of(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# ---------------------------------------------------------------------- #
# Whole-model scheduling
# ---------------------------------------------------------------------- #
def test_backend_analytical_resnet34(benchmark):
    config = ArrayFlexConfig.paper_128x128()
    backend = AnalyticalBackend()
    model = resnet34()
    schedule = benchmark(backend.schedule_model, model, config)
    assert len(schedule.layers) == model.num_layers


def test_backend_batched_resnet34(benchmark):
    config = ArrayFlexConfig.paper_128x128()
    backend = BatchedCachedBackend()
    model = resnet34()
    schedule = benchmark(backend.schedule_model, model, config)
    assert schedule.layers == AnalyticalBackend().schedule_model(model, config).layers


def test_backend_cycle_accurate_resnet34(benchmark):
    """Measured scheduling on a 16x16 array (memoised steady state).

    The cycle backend simulates one tile per distinct (T, mode) pair and
    reuses the measurement afterwards; the benchmark therefore reports
    the memoised steady state, which is the regime any repeated-use
    deployment of this backend runs in.
    """
    config = ArrayFlexConfig(rows=16, cols=16)
    backend = CycleAccurateBackend()
    model = resnet34()
    schedule = benchmark(backend.schedule_model, model, config)
    reference = AnalyticalBackend().schedule_model(model, config)
    assert schedule.layers == reference.layers


# ---------------------------------------------------------------------- #
# Design-space sweep: the acceptance scenario
# ---------------------------------------------------------------------- #
def test_batched_backend_speeds_up_design_space_sweep(benchmark):
    """The batched/cached backend runs the design-space scenario >= 3x
    faster than the seed's per-layer analytical path."""
    models = list(model_zoo().values())
    analytical = DesignSpaceExplorer(models, backend="analytical")
    batched = DesignSpaceExplorer(models, backend="batched")

    reference = analytical.explore(DESIGN_POINTS)
    fast = batched.explore(DESIGN_POINTS)
    assert fast == reference  # numerically identical schedules and scores

    analytical_s = _best_of(lambda: analytical.explore(DESIGN_POINTS))
    batched_s = _best_of(lambda: batched.explore(DESIGN_POINTS))
    speedup = analytical_s / batched_s
    print(
        f"\nanalytical {analytical_s * 1e3:.1f} ms  "
        f"batched {batched_s * 1e3:.1f} ms  speedup {speedup:.1f}x"
    )
    assert speedup >= 3.0, f"expected >= 3x, measured {speedup:.2f}x"

    # Track the batched path in the perf trajectory.
    benchmark(batched.explore, DESIGN_POINTS)
