"""Benchmark: transformer-suite scheduling, cold and store-warm.

Not a paper figure: the paper evaluates CNNs only.  This tracks the new
workload class through the same cold/warm serving trajectory the
design-space scenario pins down — the ``transformers`` registry suite
(BERT-Base and ViT-B/16 prefill, GPT-2-style decode) on the paper's two
array geometries, scheduled through the batched backend and the
disk-persistent decision store.

Pinned conclusions:

* the batched backend agrees bit-exactly with the analytical reference on
  every transformer workload (schedules and totals);
* a store-warm rerun — a fresh backend whose decisions all come off disk,
  i.e. what a repeated CLI/CI invocation sees — re-derives nothing
  (``misses == 0``) and stays bit-identical.
"""

from bench_scenarios import schedule_transformer_suite, transformer_workloads

from repro.backends import AnalyticalBackend, BatchedCachedBackend, DecisionStore
from repro.core.config import ArrayFlexConfig


def test_transformer_suite_batched_matches_analytical(benchmark):
    reference = schedule_transformer_suite(AnalyticalBackend())
    batched = BatchedCachedBackend()
    assert schedule_transformer_suite(batched) == reference

    config = ArrayFlexConfig.paper_128x128()
    analytical = AnalyticalBackend()
    for workload in transformer_workloads():
        assert (
            batched.schedule_model(workload, config).layers
            == analytical.schedule_model(workload, config).layers
        )

    # Track the (memoised steady-state) batched path in the trajectory.
    benchmark(schedule_transformer_suite, batched)


def test_transformer_suite_warm_store_rerun(benchmark, tmp_path):
    """A fresh process with a seeded store re-derives nothing."""
    reference = schedule_transformer_suite(AnalyticalBackend())

    seed = BatchedCachedBackend(store=DecisionStore(tmp_path))
    schedule_transformer_suite(seed)

    def warm_rerun():
        backend = BatchedCachedBackend(store=DecisionStore(tmp_path))
        return backend, schedule_transformer_suite(backend)

    probe, totals = warm_rerun()
    assert totals == reference  # bit-identical decisions off disk
    assert probe.cache_info()["misses"] == 0  # nothing re-derived

    # Track the warm serving path (what a rerun CLI/CI invocation costs).
    benchmark(lambda: warm_rerun()[1])
