"""Benchmark harness for Fig. 7: per-layer execution time of ConvNeXt.

Regenerates the per-layer comparison on 128x128 arrays.  The paper's
qualitative findings:

* the first ~11 layers run best in normal pipeline mode (the conventional
  SA, with its higher clock, is faster there);
* the middle layers prefer k = 2 and the last layers k = 4;
* per-layer savings reach up to ~26% and the total execution time drops by
  ~11%;
* the analytical optimum of Eq. (7) tracks the per-layer choice closely.
"""

from repro.eval import Fig7Experiment


def test_fig7_convnext_per_layer(benchmark):
    experiment = Fig7Experiment(rows=128, cols=128)
    result = benchmark(experiment.run)

    print()
    print(experiment.render(result))

    layers = result.arrayflex.layers
    depths = [layer.collapse_depth for layer in layers]

    # Early layers (large T): normal pipeline.
    assert all(depth == 1 for depth in depths[:10])
    # Late layers (small T): deepest supported collapse.
    assert all(depth == 4 for depth in depths[-9:])
    # The middle of the network uses the intermediate mode.
    assert 2 in depths

    # Depth is monotone along the network in the aggregate sense: the mean
    # depth of the last third exceeds the mean depth of the first third.
    third = len(depths) // 3
    assert sum(depths[-third:]) / third > sum(depths[:third]) / third

    # Total saving close to the paper's ~11%.
    assert 0.06 <= result.total_saving <= 0.16

    # Per-layer savings of shallow layers stay within a plausible band and
    # reach at least ~15% for the most favourable layers (paper: up to 26%).
    shallow = result.shallow_layer_savings()
    assert shallow, "some layers must run in shallow mode"
    assert max(shallow) >= 0.15
    assert max(shallow) <= 0.35

    # Eq. (7) tracks the discrete selection: for layers chosen at k = 4 the
    # analytical optimum is well above 2, for k = 1 layers it is near 1.
    for layer in layers:
        if layer.collapse_depth == 4:
            assert layer.analytical_depth > 2.0
        if layer.collapse_depth == 1:
            assert layer.analytical_depth < 1.6
