"""Benchmark: the HTTP daemon's overhead over direct library calls.

Not a paper figure: this pins the serving-layer claim of the daemon PR —
fronting ``SchedulingService`` with the stdlib HTTP/JSON daemon costs a
bounded multiplicative overhead on real scheduling work, measured on the
daemon-overhead scenario of ``bench_scenarios.py``.

Pinned conclusions:

* a batch of ``POST /v1/schedule`` round-trips over fresh GEMM
  workloads is at most 1.75x slower (CI-scaled) than the same calls
  made as direct ``service.submit()`` library calls on identical
  workloads — the round-trip (connection setup, JSON codec, dispatch)
  must stay in the same ballpark as the scheduling work itself, not
  dwarf it;
* the two paths agree bit-identically on a shared probe request — the
  wire payload equals the JSON round-trip of the direct response.
"""

import itertools
import json

import pytest

from bench_scenarios import (
    DAEMON_BENCH_CALLS,
    DAEMON_OVERHEAD_STRICT,
    best_of as _best_of,
    daemon_bench_requests,
    overhead_ceiling,
    run_direct_schedules,
    run_http_schedules,
)

from repro.serve import (
    DaemonClient,
    SchedulerDaemon,
    SchedulingService,
    response_to_wire,
)

#: One shared run counter: every timed round (on either path) draws a
#: fresh batch of shapes, so best-of repetition never turns into
#: dedup-cache hits.
_RUNS = itertools.count()


@pytest.fixture(scope="module")
def daemon():
    daemon = SchedulerDaemon(port=0)
    daemon.start()
    yield daemon
    assert daemon.drain(timeout=30.0)


@pytest.fixture(scope="module")
def client(daemon):
    host, port = daemon.address
    return DaemonClient(host, port)


def test_http_schedule_overhead_is_bounded(benchmark, daemon, client):
    """HTTP round-trips cost at most 1.75x the direct library calls."""
    with SchedulingService() as direct:
        # Parity spot-check riding the benchmark: both paths produce the
        # same wire payload for the same request (deduplicated is
        # daemon-side telemetry, not part of the schedule).
        probe = daemon_bench_requests(next(_RUNS))[0]
        wire = client.schedule(probe)
        wire.pop("deduplicated", None)
        expected = json.loads(json.dumps(response_to_wire(direct.submit(probe))))
        expected.pop("deduplicated", None)
        assert wire == expected

        direct_s = _best_of(
            lambda: run_direct_schedules(direct, daemon_bench_requests(next(_RUNS)))
        )
        http_s = _best_of(
            lambda: run_http_schedules(client, daemon_bench_requests(next(_RUNS)))
        )

    overhead = http_s / direct_s
    per_call_ms = 1e3 * (http_s - direct_s) / DAEMON_BENCH_CALLS
    print(
        f"\ndirect {direct_s * 1e3:.1f} ms  http {http_s * 1e3:.1f} ms  "
        f"overhead {overhead:.2f}x  (~{per_call_ms:.2f} ms per round-trip)"
    )
    ceiling = overhead_ceiling(DAEMON_OVERHEAD_STRICT)
    assert overhead <= ceiling, (
        f"HTTP overhead {overhead:.2f}x above the {ceiling:.2f}x ceiling"
    )

    # Track the HTTP serving path in the perf trajectory.
    benchmark(lambda: run_http_schedules(client, daemon_bench_requests(next(_RUNS))))
