"""Benchmark of the cycle-accurate simulator substrate itself.

Not a paper figure: this measures the SCALE-Sim-style simulator that backs
the reproduction, and re-asserts on every run that the measured cycle
counts equal the closed-form Eqs. (1)/(3)/(4) and that the computed product
is bit-exact -- the property the whole analytical evaluation rests on.
"""

import numpy as np
import pytest

from repro.core.config import ArrayFlexConfig
from repro.core.latency import LatencyModel
from repro.nn.gemm_mapping import GemmShape
from repro.nn.workloads import random_int_matrices
from repro.sim.tiling import run_tiled_gemm


@pytest.mark.parametrize("collapse_depth", [1, 2, 4], ids=["k1", "k2", "k4"])
def test_cycle_sim_tiled_gemm(benchmark, collapse_depth):
    rows = cols = 32
    t_rows, n_dim, m_dim = 48, 80, 72
    a_matrix, b_matrix = random_int_matrices(t_rows, n_dim, m_dim, seed=11)
    reference = a_matrix @ b_matrix

    result = benchmark(
        run_tiled_gemm,
        a_matrix,
        b_matrix,
        rows,
        cols,
        collapse_depth,
    )

    # Bit-exact output.
    assert np.array_equal(result.output, reference)

    # Measured cycles equal the closed-form model (Eq. 4).
    latency = LatencyModel(ArrayFlexConfig(rows=rows, cols=cols, supported_depths=(1, 2, 4)))
    gemm = GemmShape(m=m_dim, n=n_dim, t=t_rows)
    assert result.total_cycles == latency.total_cycles(gemm, collapse_depth)

    # Shallow modes gate the expected fraction of pipeline registers.
    expected_gated = (collapse_depth - 1) / collapse_depth
    assert result.stats.gated_register_fraction == pytest.approx(expected_gated, abs=1e-9)
