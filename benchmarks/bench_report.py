"""Produce the per-commit benchmark artifact (``BENCH_<sha>.json``).

Runs the perf-trajectory scenarios of ``test_bench_backends.py`` with a
plain ``time.perf_counter`` harness (no pytest-benchmark dependency, so
the same script works in any CI job) and writes one JSON summary that the
CI ``bench`` job uploads as a workflow artifact — giving the repository a
timing record per commit.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py [--output BENCH_abc.json]

With no ``--output`` the file name is derived from ``$GITHUB_SHA`` or, in
a local checkout, from ``git rev-parse HEAD``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
from pathlib import Path

# Make the script runnable without an installed package or PYTHONPATH, and
# make the shared scenario module importable from any working directory.
_HERE = Path(__file__).resolve().parent
for _path in (_HERE.parent / "src", _HERE):
    if str(_path) not in sys.path:
        sys.path.insert(0, str(_path))

from bench_scenarios import (  # noqa: E402
    DESIGN_POINTS,
    STORE_WARM_ROWS,
    best_of as _best_of,
    build_columnar_store,
    bypass_tracer,
    columnar_warm_load,
    daemon_bench_requests,
    design_space_sweep,
    engine_array,
    engine_tile_operands,
    json_v1_warm_load,
    run_ablation_sweep,
    run_batched_tiles,
    run_direct_schedules,
    run_http_schedules,
    run_scalar_tiles,
    schedule_cnn_suite,
    schedule_transformer_suite,
    sweep_under_tracer,
    write_json_v1_shard,
)

from repro import __version__  # noqa: E402
from repro.backends import (  # noqa: E402
    AnalyticalBackend,
    BatchedCachedBackend,
    CycleAccurateBackend,
    DecisionStore,
    SampledSimBackend,
)
from repro.core.config import ArrayFlexConfig  # noqa: E402
from repro.core.design_space import DesignSpaceExplorer  # noqa: E402
from repro.nn.models import model_zoo, resnet34  # noqa: E402
from repro.obs.trace import Tracer  # noqa: E402
from repro.serve import DaemonClient, SchedulerDaemon, SchedulingService  # noqa: E402


def _commit_sha() -> str:
    sha = os.environ.get("GITHUB_SHA")
    if sha:
        return sha
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            check=True,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def collect(rounds: int = 3) -> dict:
    """Time every tracked scenario and return the artifact payload."""
    models = list(model_zoo().values())
    resnet = resnet34()
    config_128 = ArrayFlexConfig.paper_128x128()
    config_16 = ArrayFlexConfig(rows=16, cols=16)

    timings_ms: dict[str, float] = {}

    analytical = AnalyticalBackend()
    timings_ms["schedule_resnet34_analytical"] = 1e3 * _best_of(
        lambda: analytical.schedule_model(resnet, config_128), rounds
    )
    batched = BatchedCachedBackend()
    timings_ms["schedule_resnet34_batched"] = 1e3 * _best_of(
        lambda: batched.schedule_model(resnet, config_128), rounds
    )
    cycle = CycleAccurateBackend()
    cycle.schedule_model(resnet, config_16)  # memoised steady state
    timings_ms["schedule_resnet34_cycle_16x16"] = 1e3 * _best_of(
        lambda: cycle.schedule_model(resnet, config_16), rounds
    )

    def cold_analytical():
        return DesignSpaceExplorer(models, backend=AnalyticalBackend()).explore(
            DESIGN_POINTS
        )

    timings_ms["design_space_analytical"] = 1e3 * _best_of(cold_analytical, rounds)

    batched_explorer = DesignSpaceExplorer(models, backend="batched")
    batched_explorer.explore(DESIGN_POINTS)
    timings_ms["design_space_batched"] = 1e3 * _best_of(
        lambda: batched_explorer.explore(DESIGN_POINTS), rounds
    )

    with tempfile.TemporaryDirectory() as cache_dir:
        seed = BatchedCachedBackend(store=DecisionStore(cache_dir))
        DesignSpaceExplorer(models, backend=seed).explore(DESIGN_POINTS)

        def warm_rerun():
            backend = BatchedCachedBackend(store=DecisionStore(cache_dir))
            return DesignSpaceExplorer(models, backend=backend).explore(DESIGN_POINTS)

        assert warm_rerun() == cold_analytical(), "warm rerun must be bit-identical"
        timings_ms["design_space_warm_store_rerun"] = 1e3 * _best_of(warm_rerun, rounds)

    # Transformer-suite serving: cold batched vs store-warm rerun (the new
    # workload class riding the same trajectory as the design-space sweep).
    timings_ms["transformer_suite_cold_batched"] = 1e3 * _best_of(
        lambda: schedule_transformer_suite(BatchedCachedBackend()), rounds
    )
    with tempfile.TemporaryDirectory() as cache_dir:
        schedule_transformer_suite(BatchedCachedBackend(store=DecisionStore(cache_dir)))

        def transformer_warm_rerun():
            return schedule_transformer_suite(
                BatchedCachedBackend(store=DecisionStore(cache_dir))
            )

        assert transformer_warm_rerun() == schedule_transformer_suite(
            AnalyticalBackend()
        ), "transformer warm rerun must be bit-identical"
        timings_ms["transformer_suite_warm_store_rerun"] = 1e3 * _best_of(
            transformer_warm_rerun, rounds
        )

    # Activity-aware sweep: the vectorised tiling-utilization power pass
    # must track the constant-activity batched sweep (<= 10% overhead —
    # asserted in test_bench_activity.py; recorded here per commit).
    from repro.core.activity import ConstantActivity, UtilizationActivity

    timings_ms["design_space_constant_activity"] = 1e3 * _best_of(
        lambda: design_space_sweep(activity_model=ConstantActivity()), rounds
    )
    timings_ms["design_space_utilization_activity"] = 1e3 * _best_of(
        lambda: design_space_sweep(activity_model=UtilizationActivity()), rounds
    )

    # Observability overhead: the same sweep under the bypass / disabled /
    # enabled tracer regimes (the test_bench_obs.py scenario).
    timings_ms["design_space_obs_bypass"] = 1e3 * _best_of(
        lambda: sweep_under_tracer(bypass_tracer()), rounds
    )
    timings_ms["design_space_obs_disabled"] = 1e3 * _best_of(
        lambda: sweep_under_tracer(Tracer(enabled=False)), rounds
    )
    timings_ms["design_space_obs_enabled"] = 1e3 * _best_of(
        lambda: sweep_under_tracer(Tracer(enabled=True)), rounds
    )

    # Sampled vs exact cycle backend on the batched CNN suite (the
    # test_bench_sampled.py scenario): cold runs, fresh backends per
    # round.  The timed rounds double as the accuracy inputs — the cycle
    # scenario is the slowest path of the whole bench job, so it runs
    # exactly the timed rounds and nothing more.
    cycle_runs: list = []
    sampled_runs: list = []
    timings_ms["cnn_suite_bs4_cycle"] = 1e3 * _best_of(
        lambda: cycle_runs.append(schedule_cnn_suite(CycleAccurateBackend())),
        rounds=min(rounds, 2),
    )
    timings_ms["cnn_suite_bs4_sampled"] = 1e3 * _best_of(
        lambda: sampled_runs.append(schedule_cnn_suite(SampledSimBackend())),
        rounds=min(rounds, 2),
    )
    for sampled_schedule, exact_schedule in zip(sampled_runs[0], cycle_runs[0]):
        drift = abs(sampled_schedule.total_cycles - exact_schedule.total_cycles)
        assert drift <= (
            sampled_schedule.max_error_bound() * exact_schedule.total_cycles + 1e-9
        ), "sampled estimate outside its error bound"

    # Ablation importance sweep: the default three-component study fanned
    # out through one SchedulingService.submit_many batch (the
    # test_bench_ablations.py ablation_sweep scenario).
    ablation_results: list = []
    timings_ms["ablation_sweep"] = 1e3 * _best_of(
        lambda: ablation_results.append(run_ablation_sweep()), rounds=min(rounds, 2)
    )
    assert ablation_results[0].ranking, "ablation sweep produced no ranking"
    assert all(run.ok for run in ablation_results[0].runs), "ablation run failed"

    # Batched tile engine vs the scalar stepping loop on the same tiles
    # (the test_bench_engine.py scenario).
    engine = engine_array()
    a_tiles, b_tiles = engine_tile_operands()
    timings_ms["engine_tiles_scalar"] = 1e3 * _best_of(
        lambda: run_scalar_tiles(engine, a_tiles, b_tiles), rounds
    )
    timings_ms["engine_tiles_batched"] = 1e3 * _best_of(
        lambda: run_batched_tiles(engine, a_tiles, b_tiles), rounds
    )

    # Store warm load: a fresh handle mmap-loading one >= 10k-decision
    # columnar shard vs parsing the same decisions from the v1 JSON
    # format (the test_bench_store.py scenario).
    with tempfile.TemporaryDirectory() as store_dir:
        store_root = Path(store_dir)
        columnar_dir = store_root / "columnar"
        columnar_dir.mkdir()
        build_columnar_store(columnar_dir)
        json_path = write_json_v1_shard(store_root / "decisions-v1.json")
        assert len(columnar_warm_load(columnar_dir)) == STORE_WARM_ROWS
        timings_ms["store_warm_load_columnar"] = 1e3 * _best_of(
            lambda: columnar_warm_load(columnar_dir), rounds
        )
        timings_ms["store_warm_load_json_v1"] = 1e3 * _best_of(
            lambda: json_v1_warm_load(json_path), rounds
        )

    # Daemon HTTP serving: POST /v1/schedule round-trips against a local
    # daemon vs the same calls as direct submit() library calls (the
    # test_bench_daemon.py scenario).  Every timed round draws fresh GEMM
    # shapes, so neither path degenerates into dedup-cache hits.
    import itertools

    daemon_runs = itertools.count()
    daemon = SchedulerDaemon(port=0)
    daemon.start()
    try:
        client = DaemonClient(*daemon.address)
        with SchedulingService() as direct_service:
            timings_ms["daemon_direct_schedule"] = 1e3 * _best_of(
                lambda: run_direct_schedules(
                    direct_service, daemon_bench_requests(next(daemon_runs))
                ),
                rounds,
            )
        timings_ms["daemon_http_schedule"] = 1e3 * _best_of(
            lambda: run_http_schedules(
                client, daemon_bench_requests(next(daemon_runs))
            ),
            rounds,
        )
    finally:
        assert daemon.drain(timeout=30.0), "daemon failed to drain"

    speedups = {
        "daemon_http_overhead": (
            timings_ms["daemon_http_schedule"] / timings_ms["daemon_direct_schedule"]
        ),
        "store_warm_vs_json_v1": (
            timings_ms["store_warm_load_json_v1"]
            / timings_ms["store_warm_load_columnar"]
        ),
        "sampled_vs_cycle": (
            timings_ms["cnn_suite_bs4_cycle"] / timings_ms["cnn_suite_bs4_sampled"]
        ),
        "engine_batched_speedup": (
            timings_ms["engine_tiles_scalar"] / timings_ms["engine_tiles_batched"]
        ),
        "utilization_activity_overhead": (
            timings_ms["design_space_utilization_activity"]
            / timings_ms["design_space_constant_activity"]
        ),
        "obs_disabled_overhead": (
            timings_ms["design_space_obs_disabled"]
            / timings_ms["design_space_obs_bypass"]
        ),
        "obs_tracing_overhead": (
            timings_ms["design_space_obs_enabled"]
            / timings_ms["design_space_obs_disabled"]
        ),
        "batched_vs_analytical": (
            timings_ms["design_space_analytical"] / timings_ms["design_space_batched"]
        ),
        "warm_rerun_vs_analytical": (
            timings_ms["design_space_analytical"]
            / timings_ms["design_space_warm_store_rerun"]
        ),
    }

    return {
        "schema": 1,
        "sha": _commit_sha(),
        "repro_version": __version__,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "rounds": rounds,
        "timings_ms": {name: round(value, 4) for name, value in timings_ms.items()},
        "speedups": {name: round(value, 3) for name, value in speedups.items()},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=None,
        help="output path (default: BENCH_<sha12>.json in the working directory)",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="best-of rounds per scenario (default: 3)"
    )
    args = parser.parse_args(argv)

    payload = collect(rounds=args.rounds)
    output = Path(args.output or f"BENCH_{payload['sha'][:12]}.json")
    output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    for name, value in payload["timings_ms"].items():
        print(f"  {name:36s} {value:10.3f} ms")
    for name, value in payload["speedups"].items():
        print(f"  {name:36s} {value:9.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
