"""Benchmark harness for the Eq. (7) validation experiment.

Section III-C derives a closed-form optimal collapse depth,

    k_hat = sqrt( (R + C) / (R + T - 2) * (d_FF + d_mul + d_add) / (d_CSA + 2 d_mux) ),

and the paper notes that it approximates the per-layer discrete optimum
"fairly accurately".  This benchmark quantifies the agreement over every
layer of the three CNNs plus a synthetic T sweep, at both array sizes.
"""

import pytest

from repro.eval import Eq7ValidationExperiment
from repro.nn.workloads import synthetic_gemm_sweep


@pytest.mark.parametrize("size", [128, 256], ids=["128x128", "256x256"])
def test_eq7_analytical_vs_discrete(benchmark, size):
    extra = synthetic_gemm_sweep(
        t_values=[16, 49, 196, 784, 3136],
        n_values=[512, 2304],
        m_values=[256, 1024],
    )
    experiment = Eq7ValidationExperiment(rows=size, cols=size, extra_gemms=extra)
    result = benchmark(experiment.run)

    print()
    print(experiment.render(result))

    # "Fairly accurately": at least 80% of the layers agree exactly.
    assert result.agreement_rate >= 0.80

    # Directional sanity: whenever the analytical optimum clearly exceeds 3,
    # the discrete choice is the deepest mode, and whenever it is below ~1.2
    # the discrete choice is the normal pipeline.
    for entry in result.entries:
        if entry.analytical_depth > 3.0:
            assert entry.discrete_best == 4, entry.gemm.name
        if entry.analytical_depth < 1.2:
            assert entry.discrete_best == 1, entry.gemm.name


def test_eq7_monotone_in_t():
    """k_hat decreases as the streamed dimension T grows (paper's intuition)."""
    from repro.core.config import ArrayFlexConfig
    from repro.core.optimizer import PipelineOptimizer
    from repro.nn.gemm_mapping import GemmShape

    optimizer = PipelineOptimizer(ArrayFlexConfig(rows=128, cols=128))
    k_hats = [
        optimizer.analytical_optimal_depth(GemmShape(m=256, n=2304, t=t))
        for t in (16, 64, 256, 1024, 4096)
    ]
    assert all(a > b for a, b in zip(k_hats, k_hats[1:]))
