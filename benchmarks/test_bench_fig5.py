"""Benchmark harness for Fig. 5: execution time vs pipeline collapse depth.

Regenerates the motivation experiment of Section III-C: ResNet-34 layers 20
and 28 as matrix multiplications on a 132x132 configurable array, sweeping
k in {1, 2, 3, 4} with the clock scaled per mode, against the conventional
fixed-pipeline SA reference line.

Paper findings reproduced here:
* layer 20 (T = 196): execution-time minimum at k = 2; deeper collapsing
  still beats the conventional SA but by less;
* layer 28 (T = 49): the deepest collapse (k = 4) is best.
"""

import pytest

from repro.eval import Fig5Experiment


@pytest.mark.parametrize(
    "layer_index, expected_best_depth",
    [(20, 2), (28, 4)],
    ids=["layer20", "layer28"],
)
def test_fig5_execution_time_vs_depth(benchmark, layer_index, expected_best_depth):
    experiment = Fig5Experiment(layer_index=layer_index)
    result = benchmark(experiment.run)

    print()
    print(experiment.render(result))

    # The sweep covers exactly the paper's depths.
    assert [p.collapse_depth for p in result.points] == [1, 2, 3, 4]

    # The paper's qualitative finding: where the minimum falls.
    assert result.best_depth == expected_best_depth

    # The best shallow configuration beats the conventional SA...
    assert result.best_time_us < result.conventional_time_us
    # ...while ArrayFlex in normal mode is slower than the conventional SA
    # (it pays the CSA/mux delay overhead without any cycle savings).
    k1_point = result.points[0]
    assert k1_point.execution_time_us > result.conventional_time_us


def test_fig5_layer_shapes_match_paper():
    """The GEMM dimensions quoted in Section III-C fall out of the model zoo."""
    result20 = Fig5Experiment(layer_index=20).run()
    result28 = Fig5Experiment(layer_index=28).run()
    assert result20.gemm.as_tuple() == (256, 2304, 196)
    assert result28.gemm.as_tuple() == (512, 2304, 49)
