"""Benchmark: the activity-aware design-space sweep.

Not a paper figure: this pins down the cost of the activity-model layer
introduced by the LayerMetrics refactor.  The batched backend's NumPy
mode search now runs a vectorised per-layer activity/power pass instead
of one power lookup per depth; pricing the sweep under
``UtilizationActivity`` (per-layer tiling-utilization derating) must stay
within 10% of the constant-activity batched sweep — the utilization
computation is two integer ceil-divisions and one division per layer, so
anything above that indicates the vectorised path regressed.

Also pinned: the constant-activity default is *exactly* the pre-refactor
sweep (same `DesignPointResult`s), and the utilization-priced sweep
matches the analytical reference bit for bit — the vectorised
utilization path has no approximation license.
"""

import time

from bench_scenarios import design_space_sweep, overhead_ceiling

from repro.core.activity import ConstantActivity, UtilizationActivity


def test_utilization_activity_sweep_overhead(benchmark):
    """Utilization-priced sweeps cost <= 10% over constant-activity ones."""
    reference = design_space_sweep(backend="analytical", activity_model=UtilizationActivity())
    fast = design_space_sweep(activity_model=UtilizationActivity())
    assert fast == reference  # vectorised utilization path is bit-identical

    # Interleaved best-of-N: machine-load drift hits both scenarios
    # symmetrically instead of biasing whichever ran second.
    constant_s = utilization_s = float("inf")
    for _ in range(7):
        start = time.perf_counter()
        design_space_sweep(activity_model=ConstantActivity())
        constant_s = min(constant_s, time.perf_counter() - start)
        start = time.perf_counter()
        design_space_sweep(activity_model=UtilizationActivity())
        utilization_s = min(utilization_s, time.perf_counter() - start)
    ratio = utilization_s / constant_s
    print(
        f"\nconstant {constant_s * 1e3:.1f} ms  "
        f"utilization {utilization_s * 1e3:.1f} ms  overhead {ratio:.2f}x"
    )
    ceiling = overhead_ceiling(1.10)
    assert ratio <= ceiling, f"expected <= {ceiling:.2f}x, measured {ratio:.2f}x"

    # Track the activity-aware sweep in the perf trajectory.
    benchmark(design_space_sweep, UtilizationActivity())


def test_constant_activity_sweep_matches_default(benchmark):
    """ConstantActivity(1.0) is the default — same results object for object."""
    default = design_space_sweep()
    constant = design_space_sweep(activity_model=ConstantActivity())
    assert constant == default
    benchmark(design_space_sweep, ConstantActivity())
