"""Benchmark harness for Fig. 8: total execution time of the CNN suite.

Regenerates the end-to-end latency comparison of ResNet-34, MobileNetV1 and
ConvNeXt-T on 128x128 and 256x256 arrays.  The paper reports 9%-11% lower
execution latency for ArrayFlex, with the savings growing on the larger
array because more layers prefer the deepest collapse mode.
"""

import pytest

from repro.eval import Fig8Experiment


@pytest.fixture(scope="module")
def fig8_result():
    return Fig8Experiment(sizes=(128, 256)).run()


def test_fig8_total_execution_time(benchmark):
    experiment = Fig8Experiment(sizes=(128, 256))
    result = benchmark(experiment.run)

    print()
    print(experiment.render(result))

    # ArrayFlex wins end-to-end for every model at every size.
    for entry in result.entries:
        assert entry.arrayflex_time_ms < entry.conventional_time_ms, entry.model_name

    # Savings land in a band around the paper's 9%-11%.
    low, high = result.savings_range()
    assert 0.05 <= low
    assert high <= 0.20


def test_fig8_savings_grow_with_array_size(fig8_result):
    """Bigger arrays push more layers to k = 4 and increase the savings."""
    for model_name in {entry.model_name for entry in fig8_result.entries}:
        small = next(
            e for e in fig8_result.by_size(128) if e.model_name == model_name
        )
        large = next(
            e for e in fig8_result.by_size(256) if e.model_name == model_name
        )
        k4_small = small.depth_histogram.get(4, 0) / sum(small.depth_histogram.values())
        k4_large = large.depth_histogram.get(4, 0) / sum(large.depth_histogram.values())
        assert k4_large >= k4_small, model_name


def test_fig8_convnext_dominates_runtime(fig8_result):
    """The paper normalizes Fig. 8 because ConvNeXt's runtime dwarfs the others."""
    entries = fig8_result.by_size(128)
    convnext = next(e for e in entries if e.model_name == "ConvNeXt-T")
    for entry in entries:
        assert convnext.conventional_time_ms >= entry.conventional_time_ms
