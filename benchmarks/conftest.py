"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure/table of the paper (see DESIGN.md's
experiment index) and asserts the qualitative findings -- who wins, by
roughly what factor, where the crossovers fall -- rather than absolute
numbers, since the substrate is an analytical/cycle model instead of the
authors' 28 nm silicon flow.
"""

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


@pytest.fixture(scope="session")
def paper_models():
    """The three CNNs of the paper's evaluation, built once per session."""
    from repro.nn.models import model_zoo

    return model_zoo()
