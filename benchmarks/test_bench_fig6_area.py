"""Benchmark harness for Fig. 6: area cost of pipeline-depth reconfigurability.

The paper compares the physical layouts of two 8x8 arrays and reports an
ArrayFlex per-PE area overhead of approximately 16%, consumed by the
carry-save adder, the bypass multiplexers and the two configuration bits.
"""

from repro.eval import Fig6Experiment


def test_fig6_pe_area_overhead(benchmark):
    experiment = Fig6Experiment(rows=8, cols=8)
    result = benchmark(experiment.run)

    print()
    print(experiment.render(result))

    # ArrayFlex PEs are strictly larger than conventional PEs.
    assert result.arrayflex_pe_um2 > result.conventional_pe_um2

    # The overhead lands at the paper's ~16% (10%-22% band allowed for the
    # analytical substitute of the place-and-route flow).
    assert 0.10 <= result.pe_overhead <= 0.22

    # The structural (gate-count-only) overhead is a strict lower bound of
    # the layout overhead.
    assert 0.0 < result.structural_overhead < result.pe_overhead

    # Array-level area scales linearly with the PE count for both designs.
    assert result.conventional_array_um2 == 64 * result.conventional_pe_um2
    assert result.arrayflex_array_um2 == 64 * result.arrayflex_pe_um2
