"""Benchmark: the sampled-simulation backend against the exact cycle backend.

Not a paper figure: this pins the accuracy-for-cost trade of
:class:`~repro.backends.SampledSimBackend` on the CNN suite under batched
inference (``bench_scenarios.schedule_cnn_suite`` — the big-model regime
the backend exists for, where the cycle backend's full-T tile
simulations dominate).

Pinned conclusions:

* a cold sampled run of the scenario is at least 10x faster than a cold
  cycle-accurate run (both backends start with empty measurement memos —
  what a fresh process, CI job or pool worker sees), even though the
  cycle backend itself now rides the batched ``simulate_tiles`` engine;
* every per-layer cycle estimate is within its self-reported
  ``error_bound`` of the exact cycle result, and within 10% absolutely;
* the whole-suite totals agree with the exact backend within the worst
  per-layer bound.
"""

from bench_scenarios import best_of as _best_of, schedule_cnn_suite, speedup_floor

from repro.backends import CycleAccurateBackend, SampledSimBackend


def test_sampled_backend_speeds_up_cnn_suite_within_error_bounds(benchmark):
    """>=10x over the cycle backend; every layer inside its error bound."""
    exact_schedules = schedule_cnn_suite(CycleAccurateBackend())
    sampled_schedules = schedule_cnn_suite(SampledSimBackend())

    checked = 0
    for sampled, exact in zip(sampled_schedules, exact_schedules):
        assert sampled.model_name == exact.model_name
        for sampled_layer, exact_layer in zip(sampled.layers, exact.layers):
            bound = sampled_layer.error_bound
            assert bound is not None and bound >= 0.0
            error = abs(sampled_layer.cycles - exact_layer.cycles)
            assert error <= bound * exact_layer.cycles + 1e-9, (
                f"{sampled.model_name} layer {sampled_layer.index}: "
                f"estimate {sampled_layer.cycles} vs exact "
                f"{exact_layer.cycles}, bound {bound}"
            )
            assert error <= 0.10 * exact_layer.cycles  # 10% absolute cap
            checked += 1
        assert abs(sampled.total_cycles - exact.total_cycles) <= (
            sampled.max_error_bound() * exact.total_cycles + 1e-9
        )
    assert checked > 100  # the whole suite, not a truncated run

    # Cold-vs-cold timing: fresh backends each round, so the cycle
    # backend's per-(T, k) memo and the sampled backend's measurement
    # memo both start empty — the fresh-process regime.
    cycle_s = _best_of(lambda: schedule_cnn_suite(CycleAccurateBackend()), rounds=2)
    sampled_s = _best_of(lambda: schedule_cnn_suite(SampledSimBackend()), rounds=2)
    speedup = cycle_s / sampled_s
    print(
        f"\ncycle {cycle_s * 1e3:.0f} ms  sampled {sampled_s * 1e3:.0f} ms  "
        f"speedup {speedup:.1f}x"
    )
    floor = speedup_floor(10.0)
    assert speedup >= floor, f"expected >= {floor:.1f}x, measured {speedup:.2f}x"

    # Track the sampled path in the perf trajectory.
    benchmark(lambda: schedule_cnn_suite(SampledSimBackend()))
