"""Benchmark: the v2 columnar DecisionStore warm-load path.

Not a paper figure: this pins the perf claims of the columnar shard
rewrite on the store-warm-load scenario of ``bench_scenarios.py`` — one
shard holding >= 10k decisions, loaded warm by fresh store handles the
way every pool worker of a design-space sweep does.

Pinned conclusions:

* a warm columnar load (``np.load(..., mmap_mode="r")`` + index build)
  is at least 5x faster than parsing the same decisions from the v1
  JSON shard format;
* the loads are equivalent: every probed key decodes to the exact row
  the JSON payload holds;
* across a 4-worker process pool, the per-worker RSS growth of the
  columnar path is measurably below the JSON path's — the memmap keeps
  row storage in shared page-cache pages instead of per-process heaps.
"""

from concurrent.futures import ProcessPoolExecutor

import pytest

from bench_scenarios import (
    STORE_WARM_PROBES,
    STORE_WARM_ROWS,
    best_of as _best_of,
    build_columnar_store,
    columnar_warm_load,
    json_v1_warm_load,
    rss_delta_columnar_worker,
    rss_delta_json_worker,
    speedup_floor,
    store_warm_rows,
    write_json_v1_shard,
    _vm_rss_kb,
)

POOL_WORKERS = 4


@pytest.fixture(scope="module")
def warm_stores(tmp_path_factory):
    """The scenario's two on-disk stores: columnar v2 and JSON v1."""
    root = tmp_path_factory.mktemp("store-warm")
    columnar_dir = root / "columnar"
    columnar_dir.mkdir()
    build_columnar_store(columnar_dir)
    json_path = write_json_v1_shard(root / "decisions-v1.json")
    return columnar_dir, json_path


def test_warm_columnar_load_beats_json_v1(benchmark, warm_stores):
    """A warm columnar load is >= 5x faster than the v1 JSON parse."""
    columnar_dir, json_path = warm_stores

    view = columnar_warm_load(columnar_dir)
    table = json_v1_warm_load(json_path)
    assert len(view) == STORE_WARM_ROWS == len(table)

    # Equivalent contents: every probed key decodes to the JSON row.
    for key in list(view.keys())[:STORE_WARM_PROBES]:
        assert view.get(key) == table[",".join(map(str, key))]

    columnar_s = _best_of(lambda: columnar_warm_load(columnar_dir))
    json_s = _best_of(lambda: json_v1_warm_load(json_path))
    speedup = json_s / columnar_s
    print(
        f"\njson v1 {json_s * 1e3:.1f} ms  "
        f"columnar {columnar_s * 1e3:.1f} ms  speedup {speedup:.1f}x"
    )
    floor = speedup_floor(5.0)
    assert speedup >= floor, f"expected >= {floor:.1f}x, measured {speedup:.2f}x"

    # Track the warm-load path in the perf trajectory.
    benchmark(columnar_warm_load, columnar_dir)


def test_pool_workers_share_columnar_pages(warm_stores):
    """4 pool workers grow less RSS on columnar shards than on JSON.

    Each worker measures its own VmRSS before and after one warm load
    plus row probes.  The JSON path materialises every row as Python
    lists on the worker's private heap; the columnar path touches
    memmap pages (shared, reclaimable) plus one small key index — so
    its per-worker growth must land clearly below the JSON path's.
    """
    if _vm_rss_kb() == 0:
        pytest.skip("VmRSS not readable on this platform")
    columnar_dir, json_path = warm_stores

    with ProcessPoolExecutor(max_workers=POOL_WORKERS) as pool:
        json_kb = list(pool.map(rss_delta_json_worker, [json_path] * POOL_WORKERS))
    with ProcessPoolExecutor(max_workers=POOL_WORKERS) as pool:
        columnar_kb = list(
            pool.map(rss_delta_columnar_worker, [columnar_dir] * POOL_WORKERS)
        )

    mean_json = sum(json_kb) / len(json_kb)
    mean_columnar = sum(columnar_kb) / len(columnar_kb)
    print(
        f"\nper-worker RSS growth: json v1 {mean_json:.0f} KiB  "
        f"columnar {mean_columnar:.0f} KiB  ({json_kb} vs {columnar_kb})"
    )
    assert mean_json > 0, "JSON baseline measured no RSS growth"
    assert mean_columnar < 0.8 * mean_json, (
        f"columnar per-worker RSS {mean_columnar:.0f} KiB not below "
        f"0.8x the JSON baseline {mean_json:.0f} KiB"
    )
