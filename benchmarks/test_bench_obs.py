"""Benchmark: the observability layer's overhead on the design-space sweep.

Not a paper figure: this pins the cost of the tracing instrumentation
threaded through the service, backends, store and engine.  Three tracer
regimes run the same sweep: a *bypass* stub whose ``span()`` returns the
shared null span unconditionally (the stand-in for code with no
instrumentation at all), the real tracer *disabled* (the production
default — one ``enabled`` attribute check per site, no allocation), and
the real tracer *enabled* (every span allocated, timed and recorded).

Pinned: disabled <= 5% over bypass — the fast path must never grow an
allocation, a lock, or an ambient-context read — and enabled <= 15%
over disabled.  Also pinned: tracing never changes results (the traced
sweep is object-identical to the untraced one), and the enabled run
actually records the sweep's span hierarchy.
"""

import time

from bench_scenarios import (
    OBS_DISABLED_STRICT,
    OBS_ENABLED_STRICT,
    bypass_tracer,
    overhead_ceiling,
    sweep_under_tracer,
)

from repro.obs.trace import Tracer


def test_obs_overhead(benchmark):
    """Tracing costs <= 5% disabled and <= 15% enabled on the sweep."""
    bypass = bypass_tracer()
    disabled = Tracer(enabled=False)
    enabled = Tracer(enabled=True)

    reference = sweep_under_tracer(bypass)
    assert sweep_under_tracer(disabled) == reference
    assert sweep_under_tracer(enabled) == reference  # tracing never changes results
    names = {span.name for span in enabled.drain()}
    assert "explorer.explore" in names and "backend.model_totals" in names, names

    # Interleaved best-of-N: machine-load drift hits every regime
    # symmetrically instead of biasing whichever ran last.
    bypass_s = disabled_s = enabled_s = float("inf")
    for _ in range(7):
        start = time.perf_counter()
        sweep_under_tracer(bypass)
        bypass_s = min(bypass_s, time.perf_counter() - start)
        start = time.perf_counter()
        sweep_under_tracer(disabled)
        disabled_s = min(disabled_s, time.perf_counter() - start)
        start = time.perf_counter()
        sweep_under_tracer(enabled)
        enabled_s = min(enabled_s, time.perf_counter() - start)
        enabled.clear()
    disabled_ratio = disabled_s / bypass_s
    enabled_ratio = enabled_s / disabled_s
    print(
        f"\nbypass {bypass_s * 1e3:.1f} ms  disabled {disabled_s * 1e3:.1f} ms "
        f"({disabled_ratio:.2f}x)  enabled {enabled_s * 1e3:.1f} ms "
        f"({enabled_ratio:.2f}x)"
    )
    disabled_ceiling = overhead_ceiling(OBS_DISABLED_STRICT)
    assert disabled_ratio <= disabled_ceiling, (
        f"disabled tracer: expected <= {disabled_ceiling:.2f}x over the bypass "
        f"stub, measured {disabled_ratio:.2f}x"
    )
    enabled_ceiling = overhead_ceiling(OBS_ENABLED_STRICT)
    assert enabled_ratio <= enabled_ceiling, (
        f"enabled tracer: expected <= {enabled_ceiling:.2f}x over disabled, "
        f"measured {enabled_ratio:.2f}x"
    )

    # Track the production posture (tracer disabled) in the trajectory.
    benchmark(sweep_under_tracer, Tracer(enabled=False))
