"""Benchmark: the batched tile engine against the scalar stepping loop.

Not a paper figure: this pins the payoff of
``CycleAccurateSystolicArray.simulate_tiles`` — the closed-form batched
path every backend probe and calibration now routes through — against a
scalar ``simulate_tile`` loop over the same tiles
(``bench_scenarios.engine_tile_operands``: one small-array, many-tile
batch with mixed full/edge shapes).

Pinned conclusions:

* the batched call is bit-identical to the scalar loop — same outputs,
  same per-tile ``SimulationStats``, same collapse depth (the exhaustive
  property grid lives in ``tests/test_sim_batched.py``; this re-checks
  it on the timed batch so the speedup below is never measured against
  diverged results);
* the batched call is at least 3x faster than the scalar loop.
"""

import numpy as np

from bench_scenarios import (
    best_of as _best_of,
    engine_array,
    engine_tile_operands,
    run_batched_tiles,
    run_scalar_tiles,
    speedup_floor,
)


def test_batched_tiles_match_scalar_loop_and_speed_it_up(benchmark):
    """Bit-identical to the scalar loop; >=3x faster on the batch."""
    array = engine_array()
    a_tiles, b_tiles = engine_tile_operands()

    scalar = run_scalar_tiles(array, a_tiles, b_tiles)
    batched = run_batched_tiles(array, a_tiles, b_tiles)
    assert len(batched) == len(scalar)
    for got, want in zip(batched, scalar):
        assert np.array_equal(got.output, want.output)
        assert got.stats.as_dict() == want.stats.as_dict()
        assert got.collapse_depth == want.collapse_depth

    scalar_s = _best_of(lambda: run_scalar_tiles(array, a_tiles, b_tiles), rounds=3)
    batched_s = _best_of(lambda: run_batched_tiles(array, a_tiles, b_tiles), rounds=3)
    speedup = scalar_s / batched_s
    print(
        f"\nscalar {scalar_s * 1e3:.0f} ms  batched {batched_s * 1e3:.1f} ms  "
        f"speedup {speedup:.1f}x"
    )
    floor = speedup_floor(3.0)
    assert speedup >= floor, f"expected >= {floor:.1f}x, measured {speedup:.2f}x"

    # Track the batched engine in the perf trajectory.
    benchmark(lambda: run_batched_tiles(array, a_tiles, b_tiles))
