"""Benchmark: design-space exploration around the paper's design points.

Not a paper figure: this extends the evaluation with the obvious follow-up
questions (is k = 8 worth supporting? how do savings scale with array
size?), using exactly the same models that back Figs. 7-9.  The assertions
pin down the conclusions the exploration reaches with the default
calibration:

* the paper's {1, 2, 4} mode set is sufficient -- adding k = 8 changes
  nothing at 128x128/256x256 because the slower clock never pays off;
* dropping k = 4 (mode set {1, 2}) gives up a substantial part of the win;
* the 256x256 array yields the best EDP gain, consistent with the paper's
  observation that savings grow with the array size.
"""

from repro.core.design_space import DesignPoint, DesignSpaceExplorer
from repro.nn.models import model_zoo


def test_design_space_exploration(benchmark):
    explorer = DesignSpaceExplorer(list(model_zoo().values()))
    points = [
        DesignPoint(rows=128, cols=128, supported_depths=(1, 2)),
        DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4)),
        DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4, 8)),
        DesignPoint(rows=256, cols=256, supported_depths=(1, 2, 4)),
    ]
    results = benchmark(explorer.explore, points)
    by_label = {result.label: result for result in results}

    print()
    for result in results:
        print(
            f"{result.label:24s} latency {result.latency_saving:6.1%}  "
            f"power {result.power_saving:6.1%}  EDP {result.edp_gain:.2f}x"
        )

    paper_point = by_label["128x128 k={1,2,4}"]
    no_k4 = by_label["128x128 k={1,2}"]
    with_k8 = by_label["128x128 k={1,2,4,8}"]
    large = by_label["256x256 k={1,2,4}"]

    # Dropping k = 4 costs a meaningful share of the benefit.
    assert paper_point.edp_gain > no_k4.edp_gain
    assert paper_point.latency_saving > no_k4.latency_saving

    # Adding k = 8 buys (essentially) nothing at these array sizes.
    assert abs(with_k8.latency_saving - paper_point.latency_saving) < 0.01

    # The larger array achieves the larger EDP gain (paper Section IV-B).
    assert large.edp_gain > paper_point.edp_gain

    # Every explored configurable design beats its conventional counterpart.
    for result in results:
        assert result.latency_saving > 0.0
        assert result.edp_gain > 1.0
