"""Benchmark: activity-driven power estimation from cycle-accurate traces.

Not a paper figure: this cross-validates the analytical power model behind
Fig. 9 against an independent estimate derived from the register-level
activity the cycle-accurate simulator measures (MACs performed, registers
clocked vs clock-gated, SRAM words moved).  The two models are built from
the same 28 nm energy parameters but make different utilisation
assumptions, so agreement on long tiles is a meaningful consistency check.
"""

import pytest

from repro.nn.workloads import random_int_matrices
from repro.sim.systolic_sim import CycleAccurateSystolicArray
from repro.timing.activity_power import ActivityBasedPowerEstimator
from repro.timing.power_model import PowerModel


@pytest.mark.parametrize(
    "collapse_depth, frequency_ghz", [(1, 1.8), (2, 1.7), (4, 1.4)], ids=["k1", "k2", "k4"]
)
def test_activity_power_cross_validation(benchmark, collapse_depth, frequency_ghz):
    rows = cols = 16
    t_rows = 512
    array = CycleAccurateSystolicArray(rows, cols, collapse_depth=collapse_depth)
    a_tile, b_tile = random_int_matrices(t_rows, rows, cols, seed=collapse_depth)

    result = benchmark(array.simulate_tile, a_tile, b_tile)

    period_ns = 1.0 / frequency_ghz
    estimator = ActivityBasedPowerEstimator(rows, cols, collapse_depth)
    measured_mw = estimator.average_power_mw(result.stats, period_ns)
    analytical_mw = PowerModel().arrayflex_array_power_mw(
        rows, cols, collapse_depth, frequency_ghz
    )

    print(
        f"\nk={collapse_depth}: activity-based {measured_mw:.0f} mW, "
        f"analytical {analytical_mw:.0f} mW "
        f"({measured_mw / analytical_mw:.2f}x)"
    )

    # The two independent estimates agree within 30% for a long tile, and the
    # activity-based one is lower (it sees the fill/drain bubbles).
    assert measured_mw == pytest.approx(analytical_mw, rel=0.30)
    assert measured_mw < analytical_mw * 1.05

    # Deep collapse reduces the activity-based estimate too (clock gating is
    # visible in the measured register counters, not just assumed).
    if collapse_depth > 1:
        stats_k1 = CycleAccurateSystolicArray(rows, cols, collapse_depth=1).simulate_tile(
            a_tile, b_tile
        ).stats
        power_k1 = ActivityBasedPowerEstimator(rows, cols, 1).average_power_mw(
            stats_k1, 1.0 / 1.8
        )
        assert measured_mw < power_k1
