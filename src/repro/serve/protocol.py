"""The versioned request/response protocol of the serving layer.

One typed surface for every way of reaching the scheduler: library
callers construct :class:`Request` objects and hand them to
:meth:`~repro.serve.service.SchedulingService.submit`, the CLI builds
the same objects from flags, and the HTTP daemon decodes them from JSON
with :func:`request_from_wire` — so a wire client, a script, and the
``batch`` subcommand can never disagree about what a scheduling request
*is*.  :class:`Response` is the single result shape on the way back
(result, or a timeout marker, with the request's identity attached).

All constructors are keyword-only: the protocol is versioned
(``PROTOCOL_VERSION``, the ``"v"`` field of every wire body), and
keyword-only fields can be added without silently re-meaning positional
call sites.

Wire format (JSON), version 1::

    request  = {"v": 1, "model": "resnet34" | [[m, n, t], ...],
                "config": {"rows": 128, "cols": 128,
                           "depths": [1, 2, 4],
                           "activity_model": "constant"},
                "conventional": false, "totals_only": false,
                "model_name": null | "label",
                "timeout": null | seconds}
    response = {"v": 1, "status": "ok" | "timeout",
                "model_name": ..., "conventional": ...,
                "totals_only": ..., "result": {...} | null,
                "timeout_s": ..., "cancelled": ...}

``model`` is deliberately *narrower* on the wire than in process: a
registry name or an explicit GEMM list — arbitrary workload objects
don't cross a process boundary.  Result payloads carry the aggregate
figures (``time_ns``/``energy_nj`` serialize through JSON bit-exactly,
so a wire client sees the same floats a library caller does); schedule
results add cycle counts, the depth histogram and activity aggregates.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.backends import ModelTotals
from repro.core.config import ArrayFlexConfig
from repro.core.metrics import ModelSchedule
from repro.core.scheduler import WorkloadArgument, resolve_workload
from repro.nn.gemm_mapping import GemmShape
from repro.serve.errors import InvalidRequest, RequestTimeout

__all__ = [
    "PROTOCOL_VERSION",
    "Request",
    "Response",
    "config_from_wire",
    "config_to_wire",
    "request_from_wire",
    "request_to_wire",
    "response_to_wire",
    "result_to_wire",
    "suite_requests",
]

#: Version stamp of the wire protocol (the ``"v"`` field of every JSON
#: request and response body).  Bumped on any incompatible change to the
#: shapes documented above.
PROTOCOL_VERSION = 1


@dataclass(frozen=True, kw_only=True)
class Request:
    """One unit of serving work: schedule ``model`` on ``config``.

    ``model`` accepts everything :func:`~repro.core.metrics.
    resolve_workload` does: a CNN layer table, any
    :class:`~repro.workloads.base.Workload` object (transformer traces,
    batch-scaled workloads), a :mod:`repro.workloads` registry name
    (``"bert_base"``, ``"resnet34@bs8"``) or an explicit GEMM list.  On
    the wire only the last two travel (see :func:`request_to_wire`).

    ``conventional`` selects the fixed-pipeline baseline schedule instead
    of the per-layer optimised ArrayFlex one (a comparison front-end
    submits both and pairs the responses).  ``totals_only`` asks for a
    :class:`~repro.backends.ModelTotals` instead of a full per-layer
    :class:`~repro.core.scheduler.ModelSchedule` — same numbers, but
    sweep-style aggregators skip materialising (and, on the process
    executor, pickling) hundreds of layer objects they would immediately
    collapse to two floats.

    ``timeout`` bounds, in seconds, how long :meth:`SchedulingService.
    submit` (and the blocking collection helpers) waits for this
    request's result; expiry yields a ``status="timeout"``
    :class:`Response` instead of hanging the caller.  It is *not* part of
    the request's dedup identity — the same workload with a different
    deadline is still the same computation.  The configured activity
    model, by contrast, *is* part of the identity (via
    ``config.cache_key()``): schedules priced under different activity
    models are different numbers.
    """

    model: WorkloadArgument | tuple[GemmShape, ...]
    config: ArrayFlexConfig
    conventional: bool = False
    totals_only: bool = False
    model_name: str | None = None
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise InvalidRequest("timeout must be positive (or None for no deadline)")
        if not isinstance(self.config, ArrayFlexConfig):
            raise InvalidRequest(
                f"config must be an ArrayFlexConfig, got {type(self.config).__name__}"
            )

    def resolve(self) -> tuple[list[GemmShape], str]:
        """Normalise ``model`` into ``(gemms, name)`` (see resolve_workload)."""
        model = self.model
        if isinstance(model, tuple):
            model = list(model)
        return resolve_workload(model, self.model_name)

    def paired(self) -> tuple["Request", "Request"]:
        """This request as an (ArrayFlex, conventional) comparison pair."""
        return (
            replace(self, conventional=False),
            replace(self, conventional=True),
        )


@dataclass(frozen=True, kw_only=True)
class Response:
    """The result of one :class:`Request`, with its identity attached.

    ``status`` is ``"ok"`` (``result`` holds the schedule or totals) or
    ``"timeout"`` (the request's deadline expired; ``timeout_s`` records
    the deadline, ``cancelled`` whether the underlying computation was
    still queued and was cancelled outright — ``False`` means it kept
    running in the background and only the wait was abandoned).

    ``deduplicated`` records whether this request shared an in-flight or
    memoised computation instead of submitting a new one — serving
    telemetry, deliberately excluded from equality (``compare=False``):
    two responses carrying the same result are the same answer no matter
    which cache produced them.
    """

    status: str
    model_name: str
    conventional: bool = False
    totals_only: bool = False
    result: ModelSchedule | ModelTotals | None = None
    timeout_s: float | None = None
    cancelled: bool = False
    deduplicated: bool = field(default=False, compare=False)

    #: Statuses a response can carry.
    STATUSES = ("ok", "timeout")

    def __post_init__(self) -> None:
        if self.status not in self.STATUSES:
            raise InvalidRequest(
                f"response status must be one of {self.STATUSES}, got {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def unwrap(self) -> ModelSchedule | ModelTotals:
        """The result, or a typed :class:`RequestTimeout` on expiry."""
        if self.status == "timeout":
            raise RequestTimeout(
                f"request {self.model_name!r} missed its {self.timeout_s}s deadline"
                + (" (cancelled)" if self.cancelled else " (still running)")
            )
        assert self.result is not None
        return self.result


# ---------------------------------------------------------------------- #
# Wire codecs
# ---------------------------------------------------------------------- #
def config_to_wire(config: ArrayFlexConfig) -> dict:
    """The wire shape of one accelerator configuration."""
    return {
        "rows": config.rows,
        "cols": config.cols,
        "depths": sorted(config.supported_depths),
        "activity_model": getattr(config.activity_model, "name", "constant"),
    }


def config_from_wire(payload: object) -> ArrayFlexConfig:
    """Decode a configuration dict; every malformation is an InvalidRequest."""
    if not isinstance(payload, dict):
        raise InvalidRequest("config must be an object with rows/cols fields")
    unknown = set(payload) - {"rows", "cols", "depths", "activity_model"}
    if unknown:
        raise InvalidRequest(f"unknown config fields: {sorted(unknown)}")
    try:
        return ArrayFlexConfig(
            rows=int(payload.get("rows", 128)),
            cols=int(payload.get("cols", 128)),
            supported_depths=tuple(
                int(depth) for depth in payload.get("depths", (1, 2, 4))
            ),
            activity_model=payload.get("activity_model", "constant"),
        )
    except (TypeError, ValueError) as exc:
        raise InvalidRequest(f"invalid config: {exc}") from exc


def _model_from_wire(payload: object) -> str | tuple[GemmShape, ...]:
    if isinstance(payload, str):
        if not payload:
            raise InvalidRequest("model name must be non-empty")
        return payload
    if isinstance(payload, list) and payload:
        gemms = []
        for index, item in enumerate(payload):
            if not isinstance(item, (list, tuple)) or len(item) not in (3, 4):
                raise InvalidRequest(
                    f"model entry {index} must be [m, n, t] or [m, n, t, name]"
                )
            try:
                m, n, t = (int(value) for value in item[:3])
            except (TypeError, ValueError) as exc:
                raise InvalidRequest(
                    f"model entry {index} has non-integer dimensions"
                ) from exc
            name = str(item[3]) if len(item) == 4 else f"gemm{index}"
            try:
                gemms.append(GemmShape(m=m, n=n, t=t, name=name))
            except ValueError as exc:
                raise InvalidRequest(f"model entry {index}: {exc}") from exc
        return tuple(gemms)
    raise InvalidRequest(
        "model must be a registry workload name or a non-empty list of "
        "[m, n, t] GEMM shapes"
    )


#: Fields a wire request may carry (anything else is an error, so typos
#: like "converntional" fail loudly instead of silently defaulting).
_REQUEST_FIELDS = {
    "v",
    "model",
    "config",
    "conventional",
    "totals_only",
    "model_name",
    "timeout",
}


def request_from_wire(payload: object) -> Request:
    """Decode one JSON request body into a typed :class:`Request`."""
    if not isinstance(payload, dict):
        raise InvalidRequest("request body must be a JSON object")
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise InvalidRequest(
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION}; send \"v\": {PROTOCOL_VERSION})"
        )
    unknown = set(payload) - _REQUEST_FIELDS
    if unknown:
        raise InvalidRequest(f"unknown request fields: {sorted(unknown)}")
    if "model" not in payload:
        raise InvalidRequest("request is missing the 'model' field")
    timeout = payload.get("timeout")
    if timeout is not None and not isinstance(timeout, (int, float)):
        raise InvalidRequest("timeout must be a number of seconds or null")
    for flag in ("conventional", "totals_only"):
        if not isinstance(payload.get(flag, False), bool):
            raise InvalidRequest(f"{flag} must be a boolean")
    model_name = payload.get("model_name")
    if model_name is not None and not isinstance(model_name, str):
        raise InvalidRequest("model_name must be a string or null")
    return Request(
        model=_model_from_wire(payload["model"]),
        config=config_from_wire(payload.get("config", {})),
        conventional=payload.get("conventional", False),
        totals_only=payload.get("totals_only", False),
        model_name=model_name,
        timeout=float(timeout) if timeout is not None else None,
    )


def request_to_wire(request: Request) -> dict:
    """Encode a :class:`Request` for transmission.

    Only registry names and explicit GEMM lists travel — an in-process
    workload *object* has no wire identity, and sending one is a caller
    bug surfaced as :class:`InvalidRequest` (resolve it to a registry
    name, or lower it to its GEMM list, first).
    """
    model = request.model
    if isinstance(model, str):
        wire_model: object = model
    elif isinstance(model, (tuple, list)) and all(
        isinstance(gemm, GemmShape) for gemm in model
    ):
        wire_model = [[gemm.m, gemm.n, gemm.t, gemm.name] for gemm in model]
    else:
        raise InvalidRequest(
            f"model of type {type(model).__name__} cannot travel on the wire: "
            "use a repro.workloads registry name or an explicit GEMM list"
        )
    payload: dict = {
        "v": PROTOCOL_VERSION,
        "model": wire_model,
        "config": config_to_wire(request.config),
    }
    if request.conventional:
        payload["conventional"] = True
    if request.totals_only:
        payload["totals_only"] = True
    if request.model_name is not None:
        payload["model_name"] = request.model_name
    if request.timeout is not None:
        payload["timeout"] = request.timeout
    return payload


def result_to_wire(result: ModelSchedule | ModelTotals) -> dict:
    """The JSON shape of one scheduling result.

    The aggregate figures (``time_ns``, ``energy_nj``, and everything
    derived from them) are the same Python floats a library caller gets
    — JSON round-trips them bit-exactly — so wire parity with direct
    :class:`SchedulingService` calls is exact, not approximate.
    """
    if isinstance(result, ModelTotals):
        payload = {
            "kind": "totals",
            "time_ns": result.time_ns,
            "energy_nj": result.energy_nj,
            "average_power_mw": result.average_power_mw,
            "energy_delay_product": result.energy_delay_product,
        }
        # Same convention as the schedule payload's max_error_bound: an
        # exact result (None or 0.0) keeps the legacy shape.
        if result.error_bound:
            payload["error_bound"] = result.error_bound
        return payload
    payload = {
        "kind": "schedule",
        "model_name": result.model_name,
        "accelerator": result.accelerator,
        "rows": result.rows,
        "cols": result.cols,
        "layers": len(result.layers),
        "total_cycles": result.total_cycles,
        "time_ns": result.total_time_ns,
        "energy_nj": result.total_energy_nj,
        "average_power_mw": result.average_power_mw,
        "energy_delay_product": result.energy_delay_product,
        "depth_histogram": {
            str(depth): count for depth, count in sorted(result.depth_histogram().items())
        },
        "average_utilization": result.average_utilization(),
        "average_activity": result.average_activity(),
    }
    bound = result.max_error_bound()
    if bound:
        payload["max_error_bound"] = bound
    return payload


def response_to_wire(response: Response) -> dict:
    """Encode one :class:`Response` as a JSON body."""
    return {
        "v": PROTOCOL_VERSION,
        "status": response.status,
        "model_name": response.model_name,
        "conventional": response.conventional,
        "totals_only": response.totals_only,
        "result": result_to_wire(response.result) if response.result is not None else None,
        "timeout_s": response.timeout_s,
        "cancelled": response.cancelled,
        "deduplicated": response.deduplicated,
    }


# ---------------------------------------------------------------------- #
# Request-building sugar
# ---------------------------------------------------------------------- #
def suite_requests(
    suite: str,
    config: ArrayFlexConfig,
    *,
    batch: int = 1,
    conventional: bool = False,
    totals_only: bool = False,
    timeout: float | None = None,
) -> list[Request]:
    """One :class:`Request` per workload of a registry suite, in suite order."""
    from repro.workloads import get_suite

    return [
        Request(
            model=workload,
            config=config,
            conventional=conventional,
            totals_only=totals_only,
            timeout=timeout,
        )
        for workload in get_suite(suite, batch=batch)
    ]


def coerce_request(
    request: Request | tuple[WorkloadArgument, ArrayFlexConfig],
) -> Request:
    """Accept ``(model, config)`` shorthand everywhere a Request is taken."""
    if isinstance(request, Request):
        return request
    if isinstance(request, tuple) and len(request) == 2:
        model, config = request
        return Request(model=model, config=config)
    raise InvalidRequest(
        "requests must be Request objects or (model, config) tuples, "
        f"got {type(request).__name__}"
    )


def as_requests(
    requests: Iterable[Request | tuple[WorkloadArgument, ArrayFlexConfig]],
) -> list[Request]:
    """Coerce a request stream (see :func:`coerce_request`)."""
    return [coerce_request(request) for request in requests]
