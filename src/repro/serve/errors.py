"""Typed error hierarchy of the serving layer.

Every failure the serving stack can hand a caller — whether that caller
is an in-process library user, the CLI, or an HTTP client of the daemon
— is a :class:`ServeError` subclass carrying three stable identities:

* ``code`` — a machine-readable snake_case string, the *wire* identity
  (the daemon puts it in every JSON error body, so clients never parse
  prose);
* ``http_status`` — the HTTP status the daemon maps the error to;
* ``exit_code`` — the process exit code the CLI maps the error to.

The mapping, in one place so the CLI, the daemon, and the tests can
never disagree:

===================  ====  =================  =========
error                HTTP  code               CLI exit
===================  ====  =================  =========
InvalidRequest        400  invalid_request        2
AdmissionRejected     429  admission_rejected     3
RateLimited           503  rate_limited           4
RequestTimeout        504  request_timeout        5
===================  ====  =================  =========

:class:`AdmissionRejected` is queue-depth backpressure: the daemon's
bounded admission queue is full, and *every* client should slow down —
HTTP 429 with a ``Retry-After`` hint.  :class:`RateLimited` is the
per-client token bucket: the daemon is healthy but declines further work
from *this* client until its bucket refills — HTTP 503 with the exact
``Retry-After`` the bucket computed.  The two are deliberately distinct
statuses (and exit codes): a load balancer spreads 429s by adding
capacity, but a 503-throttled client must fix its own request rate.

:class:`InvalidRequest` subclasses :class:`ValueError` so historical
``except ValueError`` call sites (and tests) around the serving layer
keep working; the service raises it for every malformed request or
construction argument where it previously raised a bare ``ValueError``.
"""

from __future__ import annotations

__all__ = [
    "AdmissionRejected",
    "InvalidRequest",
    "RateLimited",
    "RequestTimeout",
    "ServeError",
]


class ServeError(Exception):
    """Base of every serving-layer failure.

    ``retry_after_s`` is the server's hint (seconds) for when a retry
    might succeed; ``None`` means retrying is pointless (or immediate).
    """

    #: Machine-readable wire identity (JSON ``error.code``).
    code: str = "serve_error"
    #: HTTP status the daemon responds with.
    http_status: int = 500
    #: Process exit code the CLI returns.
    exit_code: int = 1

    def __init__(self, message: str, retry_after_s: float | None = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class InvalidRequest(ServeError, ValueError):
    """A request (or service/daemon argument) that can never succeed.

    Malformed JSON, an unknown workload name, an illegal configuration,
    a bad executor kind — retrying without changing the request is
    pointless.  Subclasses :class:`ValueError` for compatibility with the
    pre-daemon serving API, which raised bare ``ValueError`` here.
    """

    code = "invalid_request"
    http_status = 400
    exit_code = 2


class AdmissionRejected(ServeError):
    """Queue-depth backpressure: the bounded admission queue is full.

    The daemon sheds load instead of queueing without bound — HTTP 429
    plus a ``Retry-After`` estimate, so a well-behaved client backs off
    rather than piling on.
    """

    code = "admission_rejected"
    http_status = 429
    exit_code = 3

    def __init__(
        self,
        message: str = "admission queue is full",
        retry_after_s: float | None = 1.0,
    ) -> None:
        super().__init__(message, retry_after_s=retry_after_s)


class RateLimited(ServeError):
    """Per-client token-bucket limit: *this* client must slow down.

    ``retry_after_s`` is exact — the seconds until the client's bucket
    holds a whole token again.
    """

    code = "rate_limited"
    http_status = 503
    exit_code = 4

    def __init__(
        self,
        message: str = "per-client rate limit exceeded",
        retry_after_s: float | None = 1.0,
    ) -> None:
        super().__init__(message, retry_after_s=retry_after_s)


class RequestTimeout(ServeError):
    """A request's result deadline expired before the computation did.

    Raised by :meth:`Response.unwrap` (and mapped to HTTP 504 by the
    daemon) when a request carried a ``timeout`` and missed it.  The
    computation may still complete in the background; an immediate retry
    of the same request recomputes (the service drops the timed-out
    dedup entry) rather than re-awaiting a stale future.
    """

    code = "request_timeout"
    http_status = 504
    exit_code = 5
