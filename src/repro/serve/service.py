"""Batch-serving front-end over the execution backends.

:class:`SchedulingService` is the building block for serving scheduling
decisions at scale: it accepts a *stream* of ``(model, configuration)``
requests, deduplicates them, batches them through one shared
:class:`~repro.backends.batched.BatchedCachedBackend` and returns
:class:`concurrent.futures.Future` objects, so callers can submit work
incrementally and collect results as they complete.

Three layers of work elimination stack up:

* **request dedup** — identical requests (same workload, same
  configuration identity per :meth:`ArrayFlexConfig.cache_key`, which
  folds in the configured :mod:`repro.core.activity` model — the same
  workload priced under ``constant`` and ``utilization`` activity is two
  distinct computations, never one shared future; the backend's
  ``decision_identity()`` is folded in too, so a sampled-simulation
  result under one seed/fraction is never deduplicated against another)
  are submitted once and share one future, across ``schedule_many``
  calls;
* **decision cache** — distinct requests still share per-layer mode
  decisions through the backend's LRU (CNN suites repeat GEMM shapes
  heavily);
* **disk persistence** — with a ``cache_dir`` the LRU is spilled to a
  :class:`~repro.backends.store.DecisionStore`, so a new process starts
  warm.

Execution fans out over a thread pool (default: cheap, shares one warm
backend; the backend's cache bookkeeping is lock-serialised but the NumPy
solve and schedule construction run concurrently) or a process pool
(``executor="process"``: true parallelism for very large sweeps; workers
share warmth through the disk store).  ``max_workers`` is auto-sized from
:func:`os.cpu_count`.
"""

from __future__ import annotations

import os
from collections.abc import Iterable
from concurrent.futures import (
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from threading import RLock

from repro.backends import (
    BatchedCachedBackend,
    ExecutionBackend,
    ExecutionBackendProtocol,
    ModelTotals,
    attach_store,
    create_backend,
    model_totals,
)
from repro.core.config import ArrayFlexConfig
from repro.core.scheduler import ModelSchedule, WorkloadArgument, resolve_workload
from repro.nn.gemm_mapping import GemmShape

#: Executor kinds accepted by :class:`SchedulingService`.
EXECUTORS = ("thread", "process")


def default_max_workers(executor: str = "thread") -> int:
    """Worker-count default, auto-sized from the machine's CPU count."""
    cpus = os.cpu_count() or 1
    if executor == "process":
        return max(1, cpus)
    # Threads mostly overlap object construction and (NumPy) solves; the
    # stdlib's own heuristic works well here.
    return min(32, cpus + 4)


@dataclass(frozen=True)
class ScheduleRequest:
    """One unit of serving work: schedule ``model`` on ``config``.

    ``model`` accepts everything :func:`~repro.core.scheduler.
    resolve_workload` does: a CNN layer table, any
    :class:`~repro.workloads.base.Workload` object (transformer traces,
    batch-scaled workloads), a :mod:`repro.workloads` registry name
    (``"bert_base"``, ``"resnet34@bs8"``) or an explicit GEMM list.

    ``conventional`` selects the fixed-pipeline baseline schedule instead
    of the per-layer optimised ArrayFlex one (a comparison front-end
    submits both and pairs the futures).  ``totals_only`` asks for a
    :class:`~repro.backends.ModelTotals` instead of a full per-layer
    :class:`~repro.core.scheduler.ModelSchedule` — same numbers, but
    sweep-style aggregators skip materialising (and, on the process
    executor, pickling) hundreds of layer objects they would immediately
    collapse to two floats.

    ``timeout`` bounds, in seconds, how long the blocking collection
    helpers (:meth:`SchedulingService.schedule_all`,
    :meth:`SchedulingService.compare_many`) wait for this request's
    result; expiry yields a :class:`TimedOutRequest` marker instead of
    hanging the caller.  It is *not* part of the request's dedup
    identity — the same workload with a different deadline is still the
    same computation.  The configured activity model, by contrast, *is*
    part of the identity (via ``config.cache_key()``): schedules priced
    under different activity models are different numbers.
    """

    model: WorkloadArgument | tuple[GemmShape, ...]
    config: ArrayFlexConfig
    conventional: bool = False
    totals_only: bool = False
    model_name: str | None = None
    timeout: float | None = None

    def resolve(self) -> tuple[list[GemmShape], str]:
        model = self.model
        if isinstance(model, tuple):
            model = list(model)
        return resolve_workload(model, self.model_name)


@dataclass(frozen=True)
class TimedOutRequest:
    """Result marker for a request whose future missed its deadline.

    Returned (in place of a schedule / totals object) by the blocking
    collection helpers so one stuck request degrades into a reportable
    row instead of hanging the whole batch.  ``cancelled`` records
    whether the underlying computation was still queued and could be
    cancelled outright; when False it kept running in the background and
    only this *wait* was abandoned.
    """

    model_name: str
    conventional: bool
    totals_only: bool
    timeout_s: float
    cancelled: bool


#: Per-worker backend for process-pool execution, installed by the pool
#: initializer so each worker schedules on its own warm(ing) backend.
_WORKER_BACKEND: ExecutionBackend | ExecutionBackendProtocol | None = None


def _init_worker(backend: ExecutionBackend | ExecutionBackendProtocol) -> None:
    global _WORKER_BACKEND
    _WORKER_BACKEND = backend


def _compute_totals(
    backend: ExecutionBackend | ExecutionBackendProtocol,
    gemms: tuple[GemmShape, ...] | list[GemmShape],
    name: str,
    config: ArrayFlexConfig,
    conventional: bool,
) -> ModelTotals:
    return model_totals(
        backend, list(gemms), config, conventional=conventional, model_name=name
    )


def _worker_schedule(
    gemms: tuple[GemmShape, ...],
    name: str,
    config: ArrayFlexConfig,
    conventional: bool,
    totals_only: bool,
) -> ModelSchedule | ModelTotals:
    assert _WORKER_BACKEND is not None, "process-pool initializer did not run"
    if totals_only:
        return _compute_totals(_WORKER_BACKEND, gemms, name, config, conventional)
    scheduler = (
        _WORKER_BACKEND.schedule_model_conventional
        if conventional
        else _WORKER_BACKEND.schedule_model
    )
    return scheduler(list(gemms), config, model_name=name)


@dataclass
class ServiceStats:
    """Serving counters (dedup effectiveness and submission volume)."""

    requests: int = 0
    submitted: int = 0
    deduplicated: int = 0
    timed_out: int = 0


class SchedulingService:
    """Deduplicating, batching, future-returning scheduling front-end."""

    def __init__(
        self,
        backend: ExecutionBackend | ExecutionBackendProtocol | str | None = None,
        cache_dir: str | os.PathLike[str] | None = None,
        executor: str = "thread",
        max_workers: int | None = None,
        cache_size: int = 65536,
        dedup_size: int = 4096,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}, got {executor!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if dedup_size < 1:
            raise ValueError("dedup_size must be at least 1")
        if backend is None:
            backend = BatchedCachedBackend(cache_size=cache_size)
        self.backend = attach_store(create_backend(backend, default="batched"), cache_dir)
        #: The backend's numeric identity, folded into every dedup key.
        #: Empty for the exact (numerically interchangeable) backends; the
        #: sampled backend contributes its seed/fraction/probe parameters,
        #: so results it estimated under one calibration are never served
        #: for a request expecting another (e.g. after a long-lived caller
        #: swaps the service, or when keys are compared across services).
        self._backend_identity = getattr(
            self.backend, "decision_identity", lambda: ()
        )()
        self.executor_kind = executor
        self.max_workers = max_workers or default_max_workers(executor)
        #: Bound on the dedup map: completed futures (and their results)
        #: beyond this are dropped oldest-first, so a long-lived service
        #: over a stream of distinct requests cannot grow without limit.
        #: Evicted entries only cost a duplicate recomputation on
        #: re-encounter — the backend's decision cache still absorbs it.
        self.dedup_size = dedup_size
        # Re-entrant: a future that completes instantly runs its
        # done-callback inline on the submitting thread, inside submit()'s
        # critical section.
        self._lock = RLock()
        self._futures: dict[tuple, Future[ModelSchedule | ModelTotals]] = {}
        #: Issued-handle counts per live future (by id), so a timed-out
        #: waiter never cancels a computation other callers still await.
        #: Entries are dropped by the future's done-callback.
        self._waiters: dict[int, int] = {}
        self._stats = ServiceStats()
        if executor == "process":
            self._pool: ThreadPoolExecutor | ProcessPoolExecutor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker,
                initargs=(self.backend,),
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-serve",
            )

    # ------------------------------------------------------------------ #
    # The serving API
    # ------------------------------------------------------------------ #
    def schedule_many(
        self,
        requests: Iterable[
            ScheduleRequest | tuple[WorkloadArgument, ArrayFlexConfig]
        ],
    ) -> list[Future[ModelSchedule | ModelTotals]]:
        """Submit a stream of requests; one future per request, in order.

        Duplicate requests (also across earlier ``schedule_many`` calls on
        this service) share a single underlying computation and therefore
        the same future object.
        """
        return [self.submit(request) for request in requests]

    def submit(self, request: ScheduleRequest) -> Future[ModelSchedule | ModelTotals]:
        """Submit one request (deduplicated against everything in flight)."""
        return self._submit_keyed(request)[1]

    def _submit_keyed(
        self, request: ScheduleRequest
    ) -> tuple[tuple, Future[ModelSchedule | ModelTotals]]:
        """Submit and also return the dedup key (for deadline bookkeeping)."""
        request = self._coerce(request)
        gemms, name = request.resolve()
        dims = tuple((g.m, g.n, g.t) for g in gemms)
        key = (
            name,
            dims,
            request.conventional,
            request.totals_only,
            request.config.cache_key(),
            self._backend_identity,
        )
        with self._lock:
            self._stats.requests += 1
            future = self._futures.get(key)
            if future is not None:
                self._stats.deduplicated += 1
                if not future.done():
                    # Completed futures need no waiter bookkeeping (their
                    # done-callback already dropped it, and cancel() is a
                    # no-op) — re-inserting would leak an orphan entry.
                    self._waiters[id(future)] = self._waiters.get(id(future), 1) + 1
                return key, future
            self._stats.submitted += 1
            if self.executor_kind == "process":
                future = self._pool.submit(
                    _worker_schedule, tuple(gemms), name, request.config,
                    request.conventional, request.totals_only,
                )
            elif request.totals_only:
                future = self._pool.submit(
                    _compute_totals, self.backend, gemms, name, request.config,
                    request.conventional,
                )
            else:
                scheduler = (
                    self.backend.schedule_model_conventional
                    if request.conventional
                    else self.backend.schedule_model
                )
                future = self._pool.submit(
                    scheduler, gemms, request.config, model_name=name
                )
            self._futures[key] = future
            # Registered before the done-callback: an already-completed
            # future runs the callback inline right here, and it must find
            # (and drop) this entry rather than leave an orphan behind.
            self._waiters[id(future)] = 1
            future.add_done_callback(
                lambda done, key=key: self._forget_failed(key, done)
            )
            if len(self._futures) > self.dedup_size:
                self._evict_completed_locked()
            return key, future

    def _forget_failed(self, key: tuple, future: Future) -> None:
        """Drop a failed/cancelled future from the dedup map.

        A transient error (disk full during a store flush, a killed pool
        worker) must not poison its request key for the service's
        lifetime — the next identical request recomputes instead of
        re-raising the stale exception.
        """
        try:
            failed = future.cancelled() or future.exception() is not None
        except BaseException:  # pragma: no cover - defensive
            failed = True
        with self._lock:
            # The future is done: cancel() is a no-op from here on, so its
            # waiter count is dead weight (and id() values may be reused).
            self._waiters.pop(id(future), None)
            if failed and self._futures.get(key) is future:
                del self._futures[key]

    def _evict_completed_locked(self) -> None:
        """Drop oldest *completed* futures until the dedup map fits.

        Pending futures are kept regardless: evicting them would submit
        genuinely duplicate in-flight work, which is the one thing the
        dedup map exists to prevent.
        """
        for key in list(self._futures):
            if len(self._futures) <= self.dedup_size:
                break
            if self._futures[key].done():
                del self._futures[key]

    def schedule_all(
        self,
        requests: Iterable[ScheduleRequest | tuple[WorkloadArgument, ArrayFlexConfig]],
        timeout: float | None = None,
    ) -> list[ModelSchedule | ModelTotals | TimedOutRequest]:
        """Submit a stream of requests and block for all results (in order).

        ``timeout`` (seconds) bounds the wait per request; a request's own
        ``timeout`` field takes precedence over this call-level default.
        Requests that miss their deadline come back as
        :class:`TimedOutRequest` markers — the batch never hangs on one
        stuck computation — and their dedup entry is dropped so a retry
        resubmits instead of re-awaiting the stale future.
        """
        requests = [self._coerce(request) for request in requests]
        keyed = [self._submit_keyed(request) for request in requests]
        return [
            self._collect(request, key, future, timeout)
            for request, (key, future) in zip(requests, keyed)
        ]

    def _collect(
        self,
        request: ScheduleRequest,
        key: tuple,
        future: Future[ModelSchedule | ModelTotals],
        default_timeout: float | None,
    ) -> ModelSchedule | ModelTotals | TimedOutRequest:
        """One result, bounded by the request's deadline when it has one."""
        timeout = request.timeout if request.timeout is not None else default_timeout
        try:
            if timeout is None:
                return future.result()
            return future.result(timeout=timeout)
        except (FutureTimeoutError, CancelledError) as exc:
            # Queued-but-not-started work is cancelled outright — but only
            # when this waiter holds the future's sole issued handle, so a
            # deadline never destroys a computation a deduplicated caller
            # still awaits; running or shared work is merely abandoned by
            # this waiter.  Either way the key is forgotten so the next
            # identical request recomputes.
            with self._lock:
                if isinstance(exc, CancelledError):
                    cancelled = True
                else:
                    handle = id(future)
                    sole_waiter = self._waiters.get(handle, 1) <= 1
                    cancelled = future.cancel() if sole_waiter else False
                    if not cancelled and self._waiters.get(handle, 0) > 1:
                        # This waiter walks away; a later sole survivor's
                        # deadline may still cancel the queued work.
                        self._waiters[handle] -= 1
                self._stats.timed_out += 1
                if self._futures.get(key) is future:
                    del self._futures[key]
            return TimedOutRequest(
                # The resolved name is the dedup key's first component; a
                # failure path must not re-lower the whole workload.
                model_name=key[0],
                conventional=request.conventional,
                totals_only=request.totals_only,
                timeout_s=timeout if timeout is not None else 0.0,
                cancelled=cancelled,
            )

    def schedule_suite(
        self,
        suite: str,
        config: ArrayFlexConfig,
        batch: int = 1,
        conventional: bool = False,
        totals_only: bool = False,
    ) -> list[Future[ModelSchedule | ModelTotals]]:
        """Submit every workload of a registry suite on one configuration.

        Suite-level serving sugar over :func:`repro.workloads.get_suite`:
        one future per workload, in the suite's (sorted-key) order.
        """
        from repro.workloads import get_suite

        return self.schedule_many(
            ScheduleRequest(
                model=workload,
                config=config,
                conventional=conventional,
                totals_only=totals_only,
            )
            for workload in get_suite(suite, batch=batch)
        )

    def compare_many(
        self,
        workloads: Iterable[tuple[WorkloadArgument, ArrayFlexConfig]],
        totals_only: bool = False,
        timeout: float | None = None,
    ) -> list[
        tuple[
            ModelSchedule | ModelTotals | TimedOutRequest,
            ModelSchedule | ModelTotals | TimedOutRequest,
        ]
    ]:
        """(ArrayFlex, conventional) result pairs, one per workload.

        The comparison front-ends (CLI ``batch``, size sweeps, the
        design-space explorer) all need both runs of every workload; this
        encodes the submit/pair bookkeeping once so no caller hand-walks
        an interleaved future list.  ``timeout`` bounds the wait per
        request (see :meth:`schedule_all`); a timed-out side of a pair is
        a :class:`TimedOutRequest` marker.
        """
        workloads = list(workloads)
        results = self.schedule_all(
            (
                ScheduleRequest(
                    model=model, config=config, conventional=conv, totals_only=totals_only
                )
                for model, config in workloads
                for conv in (False, True)
            ),
            timeout=timeout,
        )
        return [
            (results[2 * i], results[2 * i + 1]) for i in range(len(workloads))
        ]

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int | str]:
        """Serving and (thread-mode) backend cache counters."""
        with self._lock:
            counters: dict[str, int | str] = {
                "executor": self.executor_kind,
                "max_workers": self.max_workers,
                "requests": self._stats.requests,
                "submitted": self._stats.submitted,
                "deduplicated": self._stats.deduplicated,
                "timed_out": self._stats.timed_out,
            }
        cache_info = getattr(self.backend, "cache_info", None)
        if cache_info is not None and self.executor_kind == "thread":
            # Process workers hold their own backend copies; the parent's
            # counters would be misleading there.
            counters.update(cache_info())
        store = getattr(self.backend, "store", None)
        if store is not None:
            # The disk store is shared across executors of any kind (one
            # directory, atomic merge-on-write), so its counters are
            # meaningful even in process mode.  ``disk_``-prefixed to keep
            # them apart from cache_info()'s in-memory ``store_hits``.
            counters.update(
                {f"disk_{key}": value for key, value in store.stats().items()}
            )
        return counters

    def close(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Shut the executor down.

        After timeouts, pass ``wait=False, cancel_futures=True``:
        ``wait=True`` (the context-manager default) would block on the
        very computations a deadline just abandoned.  Note that a
        *running* thread-pool task cannot be interrupted — Python still
        joins non-daemon workers at interpreter exit — so a truly
        unbounded computation delays process exit either way; queued
        work, however, is cancelled outright.
        """
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)
        flush = getattr(self.backend, "flush_store", None)
        if flush is not None:
            # Drain buffered decision-store rows: a closed service leaves
            # everything it derived on disk for the next process.
            flush()

    def __enter__(self) -> "SchedulingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(
        request: ScheduleRequest | tuple[WorkloadArgument, ArrayFlexConfig],
    ) -> ScheduleRequest:
        if isinstance(request, ScheduleRequest):
            return request
        if isinstance(request, tuple) and len(request) == 2:
            model, config = request
            return ScheduleRequest(model=model, config=config)
        raise TypeError(
            "requests must be ScheduleRequest objects or (model, config) tuples"
        )
