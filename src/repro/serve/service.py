"""Batch-serving front-end over the execution backends.

:class:`SchedulingService` is the building block for serving scheduling
decisions at scale: it accepts a *stream* of typed
:class:`~repro.serve.protocol.Request` objects, deduplicates them,
batches them through one shared
:class:`~repro.backends.batched.BatchedCachedBackend` and returns typed
:class:`~repro.serve.protocol.Response` objects (or raw
:class:`concurrent.futures.Future` handles via :meth:`submit_future`,
for callers that overlap their own work with collection).

The public API is **one core**: :meth:`SchedulingService.submit` takes a
:class:`Request` and returns a :class:`Response`; everything else —
:meth:`submit_many`, :meth:`compare`, the HTTP daemon
(:mod:`repro.serve.daemon`), the CLI ``batch`` command, and the four
deprecated pre-protocol aliases (``schedule_many``/``schedule_all``/
``schedule_suite``/``compare_many``) — is a thin adapter over it, so
library callers, the CLI and wire clients all speak the same typed
surface.

Three layers of work elimination stack up:

* **request dedup** — identical requests (same workload, same
  configuration identity per :meth:`ArrayFlexConfig.cache_key`, which
  folds in the configured :mod:`repro.core.activity` model — the same
  workload priced under ``constant`` and ``utilization`` activity is two
  distinct computations, never one shared future; the backend's
  ``decision_identity()`` is folded in too, so a sampled-simulation
  result under one seed/fraction is never deduplicated against another)
  are submitted once and share one future, across ``submit`` calls;
* **decision cache** — distinct requests still share per-layer mode
  decisions through the backend's LRU (CNN suites repeat GEMM shapes
  heavily);
* **disk persistence** — with a ``cache_dir`` the LRU is spilled to a
  :class:`~repro.backends.store.DecisionStore`, so a new process starts
  warm.

Execution fans out over a thread pool (default: cheap, shares one warm
backend; the backend's cache bookkeeping is lock-serialised but the NumPy
solve and schedule construction run concurrently) or a process pool
(``executor="process"``: true parallelism for very large sweeps; workers
share warmth through the disk store).  ``max_workers`` is auto-sized from
:func:`os.cpu_count`.
"""

from __future__ import annotations

import contextvars
import os
import warnings
from collections.abc import Iterable
from concurrent.futures import (
    CancelledError,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass
from threading import Event, RLock

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer, call_with_context, get_tracer

from repro.backends import (
    BatchedCachedBackend,
    ExecutionBackend,
    ExecutionBackendProtocol,
    ModelTotals,
    attach_store,
    create_backend,
    model_totals,
)
from repro.core.config import ArrayFlexConfig
from repro.core.scheduler import ModelSchedule, WorkloadArgument
from repro.nn.gemm_mapping import GemmShape
from repro.serve.errors import InvalidRequest
from repro.serve.protocol import (
    Request,
    Response,
    coerce_request,
    suite_requests,
)

#: Executor kinds accepted by :class:`SchedulingService`.
EXECUTORS = ("thread", "process")

#: Deprecated name of :class:`repro.serve.protocol.Request`, kept for one
#: release so pre-daemon call sites keep importing; constructing one IS
#: constructing a protocol Request (same class, keyword-only fields).
ScheduleRequest = Request


def default_max_workers(executor: str = "thread") -> int:
    """Worker-count default, auto-sized from the machine's CPU count."""
    cpus = os.cpu_count() or 1
    if executor == "process":
        return max(1, cpus)
    # Threads mostly overlap object construction and (NumPy) solves; the
    # stdlib's own heuristic works well here.
    return min(32, cpus + 4)


@dataclass(frozen=True)
class TimedOutRequest:
    """Legacy result marker for a request whose future missed its deadline.

    Returned (in place of a schedule / totals object) by the deprecated
    blocking collection helpers (``schedule_all``/``compare_many``); the
    protocol-typed API reports the same situation as a
    ``status="timeout"`` :class:`~repro.serve.protocol.Response`.
    ``cancelled`` records whether the underlying computation was still
    queued and could be cancelled outright; when False it kept running in
    the background and only this *wait* was abandoned.
    """

    model_name: str
    conventional: bool
    totals_only: bool
    timeout_s: float
    cancelled: bool


#: Per-worker backend for process-pool execution, installed by the pool
#: initializer so each worker schedules on its own warm(ing) backend.
_WORKER_BACKEND: ExecutionBackend | ExecutionBackendProtocol | None = None


def _init_worker(backend: ExecutionBackend | ExecutionBackendProtocol) -> None:
    global _WORKER_BACKEND
    _WORKER_BACKEND = backend


def _compute_totals(
    backend: ExecutionBackend | ExecutionBackendProtocol,
    gemms: tuple[GemmShape, ...] | list[GemmShape],
    name: str,
    config: ArrayFlexConfig,
    conventional: bool,
) -> ModelTotals:
    return model_totals(
        backend, list(gemms), config, conventional=conventional, model_name=name
    )


def _worker_schedule(
    gemms: tuple[GemmShape, ...],
    name: str,
    config: ArrayFlexConfig,
    conventional: bool,
    totals_only: bool,
) -> ModelSchedule | ModelTotals:
    assert _WORKER_BACKEND is not None, "process-pool initializer did not run"
    if totals_only:
        return _compute_totals(_WORKER_BACKEND, gemms, name, config, conventional)
    scheduler = (
        _WORKER_BACKEND.schedule_model_conventional
        if conventional
        else _WORKER_BACKEND.schedule_model
    )
    return scheduler(list(gemms), config, model_name=name)


@dataclass
class ServiceStats:
    """Serving counters (dedup effectiveness and submission volume).

    Kept as the read *shape* of the service's counters; since the
    unified observability layer the live counts are
    ``service_*_total`` instruments on the service's
    :class:`~repro.obs.MetricsRegistry` and this dataclass is what
    :meth:`SchedulingService.stats` folds them back into.
    """

    requests: int = 0
    submitted: int = 0
    deduplicated: int = 0
    timed_out: int = 0


class _SpanRelayFuture(Future):
    """A future that unwraps a worker's ``(result, spans)`` pair.

    Process-pool tasks submitted under an enabled tracer run through
    :func:`repro.obs.call_with_context` and resolve to their result
    *plus* the spans the worker recorded.  This wrapper is what callers
    (and the dedup map) hold instead: on inner completion it merges the
    spans into the submitting process's tracer and completes itself with
    the bare result, so every consumer — ``result()``, done-callbacks,
    ``Response`` construction — sees exactly what an untraced future
    would have carried.

    Only the relay callback ever transitions this future's state
    (``cancel()`` merely forwards to the inner pool future), so the
    inner future's single done-callback fire is the single source of
    truth and no state race exists.
    """

    def __init__(self, inner: Future, tracer: Tracer) -> None:
        super().__init__()
        self._inner = inner
        self._tracer = tracer
        inner.add_done_callback(self._relay)

    def cancel(self) -> bool:
        return self._inner.cancel()

    def _relay(self, inner: Future) -> None:
        if inner.cancelled():
            super().cancel()
            self.set_running_or_notify_cancel()
            return
        exc = inner.exception()
        if exc is not None:
            self.set_exception(exc)
            return
        result, spans = inner.result()
        self._tracer.extend(spans)
        self.set_result(result)


#: Aliases whose one-shot deprecation warning already fired (one warning
#: per alias per process: loud enough to be seen, quiet enough that a
#: sweep calling an alias ten thousand times stays readable).
_WARNED_ALIASES: set[str] = set()


def _warn_deprecated_alias(old: str, new: str) -> None:
    if old in _WARNED_ALIASES:
        return
    _WARNED_ALIASES.add(old)
    warnings.warn(
        f"SchedulingService.{old}() is a deprecated alias and will be removed "
        f"in the next release; use {new} (see docs/serve-api-migration.md)",
        DeprecationWarning,
        stacklevel=3,
    )


class SchedulingService:
    """Deduplicating, batching, response-returning scheduling front-end."""

    def __init__(
        self,
        backend: ExecutionBackend | ExecutionBackendProtocol | str | None = None,
        cache_dir: str | os.PathLike[str] | None = None,
        executor: str = "thread",
        max_workers: int | None = None,
        cache_size: int = 65536,
        dedup_size: int = 4096,
    ) -> None:
        if executor not in EXECUTORS:
            raise InvalidRequest(
                f"executor must be one of {EXECUTORS}, got {executor!r}"
            )
        if max_workers is not None and max_workers < 1:
            raise InvalidRequest("max_workers must be at least 1")
        if dedup_size < 1:
            raise InvalidRequest("dedup_size must be at least 1")
        if backend is None:
            backend = BatchedCachedBackend(cache_size=cache_size)
        self.backend = attach_store(create_backend(backend, default="batched"), cache_dir)
        #: The backend's numeric identity, folded into every dedup key.
        #: Empty for the exact (numerically interchangeable) backends; the
        #: sampled backend contributes its seed/fraction/probe parameters,
        #: so results it estimated under one calibration are never served
        #: for a request expecting another (e.g. after a long-lived caller
        #: swaps the service, or when keys are compared across services).
        self._backend_identity = getattr(
            self.backend, "decision_identity", lambda: ()
        )()
        self.executor_kind = executor
        self.max_workers = max_workers or default_max_workers(executor)
        #: Bound on the dedup map: completed futures (and their results)
        #: beyond this are dropped oldest-first, so a long-lived service
        #: over a stream of distinct requests cannot grow without limit.
        #: Evicted entries only cost a duplicate recomputation on
        #: re-encounter — the backend's decision cache still absorbs it.
        self.dedup_size = dedup_size
        # Re-entrant: a future that completes instantly runs its
        # done-callback inline on the submitting thread, inside submit()'s
        # critical section.
        self._lock = RLock()
        self._futures: dict[tuple, Future[ModelSchedule | ModelTotals]] = {}
        #: Issued-handle counts per live future (by id), so a timed-out
        #: waiter never cancels a computation other callers still await.
        #: Entries are dropped by the future's done-callback.
        self._waiters: dict[int, int] = {}
        #: One registry carrying the serving counters, with the backend's
        #: and store's own registries attached — the daemon attaches this
        #: in turn, making ``/metrics`` a single merged read.
        self.registry = MetricsRegistry()
        self._ctr_requests = self.registry.counter("service_requests_total")
        self._ctr_submitted = self.registry.counter("service_submitted_total")
        self._ctr_deduplicated = self.registry.counter("service_deduplicated_total")
        self._ctr_timed_out = self.registry.counter("service_timed_out_total")
        backend_registry = getattr(self.backend, "metrics", None)
        if isinstance(backend_registry, MetricsRegistry):
            self.registry.attach(backend_registry)
        backend_store = getattr(self.backend, "store", None)
        store_registry = getattr(backend_store, "metrics", None)
        if isinstance(store_registry, MetricsRegistry):
            self.registry.attach(store_registry)
        #: Set by the first :meth:`close`; makes closing idempotent and
        #: safe from a signal handler (an Event is set without taking any
        #: lock another thread might hold across the interrupted frame).
        self._closed = Event()
        if executor == "process":
            self._pool: ThreadPoolExecutor | ProcessPoolExecutor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_init_worker,
                initargs=(self.backend,),
            )
        else:
            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-serve",
            )

    # ------------------------------------------------------------------ #
    # The serving API: one submit(Request) -> Response core
    # ------------------------------------------------------------------ #
    def submit(
        self,
        request: Request | tuple[WorkloadArgument, ArrayFlexConfig],
        timeout: float | None = None,
    ) -> Response:
        """Schedule one request and block for its typed :class:`Response`.

        The single public core every other entry point adapts over.
        Duplicate requests (across any entry point of this service) share
        one underlying computation.  ``timeout`` (seconds) bounds the
        wait; the request's own ``timeout`` field takes precedence.  A
        missed deadline comes back as a ``status="timeout"`` response —
        call :meth:`Response.unwrap` to raise it as a typed
        :class:`~repro.serve.errors.RequestTimeout` instead.
        """
        return self.submit_many([request], timeout=timeout)[0]

    def submit_many(
        self,
        requests: Iterable[Request | tuple[WorkloadArgument, ArrayFlexConfig]],
        timeout: float | None = None,
    ) -> list[Response]:
        """Submit a stream of requests and block for all responses (in order).

        Every request is submitted before any result is awaited, so a
        batch runs with full executor concurrency regardless of
        collection order.  ``timeout`` bounds the wait per request; a
        request's own ``timeout`` field takes precedence over this
        call-level default.  Requests that miss their deadline come back
        as ``status="timeout"`` responses — the batch never hangs on one
        stuck computation — and their dedup entry is dropped so a retry
        resubmits instead of re-awaiting the stale future.
        """
        requests = [coerce_request(request) for request in requests]
        keyed = [self._submit_keyed(request) for request in requests]
        return [
            self._collect(request, key, future, timeout, deduplicated)
            for request, (key, future, deduplicated) in zip(requests, keyed)
        ]

    def submit_future(
        self, request: Request | tuple[WorkloadArgument, ArrayFlexConfig]
    ) -> Future[ModelSchedule | ModelTotals]:
        """Submit one request without blocking; the raw shared future.

        For callers that overlap their own work with collection.
        Deduplicated requests return the *same* future object.  The
        future resolves to the bare result (not a :class:`Response`);
        deadline bookkeeping (dedup-entry cleanup, timeout accounting) is
        the blocking API's job — ``future.result(timeout=...)`` here is
        plain :mod:`concurrent.futures` behaviour.
        """
        return self._submit_keyed(coerce_request(request))[1]

    def compare(
        self,
        workloads: Iterable[tuple[WorkloadArgument, ArrayFlexConfig]],
        totals_only: bool = False,
        timeout: float | None = None,
    ) -> list[tuple[Response, Response]]:
        """(ArrayFlex, conventional) response pairs, one per workload.

        The comparison front-ends (CLI ``batch``, size sweeps, the
        design-space explorer) all need both runs of every workload; this
        encodes the submit/pair bookkeeping once so no caller hand-walks
        an interleaved response list.  ``timeout`` bounds the wait per
        request (see :meth:`submit_many`); a timed-out side of a pair is
        a ``status="timeout"`` response.
        """
        workloads = list(workloads)
        responses = self.submit_many(
            (
                request
                for model, config in workloads
                for request in Request(
                    model=model, config=config, totals_only=totals_only
                ).paired()
            ),
            timeout=timeout,
        )
        return [
            (responses[2 * i], responses[2 * i + 1]) for i in range(len(workloads))
        ]

    # ------------------------------------------------------------------ #
    # Deprecated pre-protocol aliases (one release of grace)
    # ------------------------------------------------------------------ #
    def schedule_many(
        self,
        requests: Iterable[Request | tuple[WorkloadArgument, ArrayFlexConfig]],
    ) -> list[Future[ModelSchedule | ModelTotals]]:
        """Deprecated: use :meth:`submit_future` (or :meth:`submit_many`).

        One future per request, in order; duplicates share one future.
        """
        _warn_deprecated_alias("schedule_many", "submit_future()/submit_many()")
        return [self.submit_future(request) for request in requests]

    def schedule_all(
        self,
        requests: Iterable[Request | tuple[WorkloadArgument, ArrayFlexConfig]],
        timeout: float | None = None,
    ) -> list[ModelSchedule | ModelTotals | TimedOutRequest]:
        """Deprecated: use :meth:`submit_many`.

        Same blocking semantics, but bare results with
        :class:`TimedOutRequest` markers instead of typed responses.
        """
        _warn_deprecated_alias("schedule_all", "submit_many()")
        return [
            self._legacy_result(response)
            for response in self.submit_many(requests, timeout=timeout)
        ]

    def schedule_suite(
        self,
        suite: str,
        config: ArrayFlexConfig,
        batch: int = 1,
        conventional: bool = False,
        totals_only: bool = False,
    ) -> list[Future[ModelSchedule | ModelTotals]]:
        """Deprecated: use :func:`~repro.serve.protocol.suite_requests`
        with :meth:`submit_many` (or :meth:`submit_future`)."""
        _warn_deprecated_alias(
            "schedule_suite", "suite_requests() + submit_many()"
        )
        return [
            self.submit_future(request)
            for request in suite_requests(
                suite,
                config,
                batch=batch,
                conventional=conventional,
                totals_only=totals_only,
            )
        ]

    def compare_many(
        self,
        workloads: Iterable[tuple[WorkloadArgument, ArrayFlexConfig]],
        totals_only: bool = False,
        timeout: float | None = None,
    ) -> list[
        tuple[
            ModelSchedule | ModelTotals | TimedOutRequest,
            ModelSchedule | ModelTotals | TimedOutRequest,
        ]
    ]:
        """Deprecated: use :meth:`compare` (typed response pairs)."""
        _warn_deprecated_alias("compare_many", "compare()")
        return [
            (self._legacy_result(arrayflex), self._legacy_result(conventional))
            for arrayflex, conventional in self.compare(
                workloads, totals_only=totals_only, timeout=timeout
            )
        ]

    @staticmethod
    def _legacy_result(
        response: Response,
    ) -> ModelSchedule | ModelTotals | TimedOutRequest:
        """A typed response as the pre-protocol result-or-marker shape."""
        if response.status == "timeout":
            return TimedOutRequest(
                model_name=response.model_name,
                conventional=response.conventional,
                totals_only=response.totals_only,
                timeout_s=response.timeout_s if response.timeout_s is not None else 0.0,
                cancelled=response.cancelled,
            )
        assert response.result is not None
        return response.result

    # ------------------------------------------------------------------ #
    # Submission / collection internals
    # ------------------------------------------------------------------ #
    def _submit_keyed(
        self, request: Request
    ) -> tuple[tuple, Future[ModelSchedule | ModelTotals], bool]:
        """Submit one request; its dedup key, shared future and dedup flag."""
        gemms, name = request.resolve()
        dims = tuple((g.m, g.n, g.t) for g in gemms)
        key = (
            name,
            dims,
            request.conventional,
            request.totals_only,
            request.config.cache_key(),
            self._backend_identity,
        )
        with self._lock:
            self._ctr_requests.inc()
            future = self._futures.get(key)
            if future is not None:
                self._ctr_deduplicated.inc()
                if not future.done():
                    # Completed futures need no waiter bookkeeping (their
                    # done-callback already dropped it, and cancel() is a
                    # no-op) — re-inserting would leak an orphan entry.
                    self._waiters[id(future)] = self._waiters.get(id(future), 1) + 1
                return key, future, True
            self._ctr_submitted.inc()
            if self.executor_kind == "process":
                future = self._submit_process(
                    tuple(gemms), name, request.config,
                    request.conventional, request.totals_only,
                )
            elif request.totals_only:
                future = self._submit_traced(
                    _compute_totals, self.backend, gemms, name, request.config,
                    request.conventional,
                )
            else:
                scheduler = (
                    self.backend.schedule_model_conventional
                    if request.conventional
                    else self.backend.schedule_model
                )
                future = self._submit_traced(
                    scheduler, gemms, request.config, model_name=name
                )
            self._futures[key] = future
            # Registered before the done-callback: an already-completed
            # future runs the callback inline right here, and it must find
            # (and drop) this entry rather than leave an orphan behind.
            self._waiters[id(future)] = 1
            future.add_done_callback(
                lambda done, key=key: self._forget_failed(key, done)
            )
            if len(self._futures) > self.dedup_size:
                self._evict_completed_locked()
            return key, future, False

    def _submit_traced(self, fn, /, *args, **kwargs) -> Future:
        """Submit to the thread pool, carrying the caller's span context.

        With tracing enabled the task runs inside a copy of the
        submitting context, so spans the worker thread opens nest under
        the submitting request's span (the daemon's ``daemon.request``).
        Disabled tracing takes the bare-submit fast path.
        """
        if get_tracer().enabled:
            context = contextvars.copy_context()
            return self._pool.submit(context.run, fn, *args, **kwargs)
        return self._pool.submit(fn, *args, **kwargs)

    def _submit_process(
        self,
        gemms: tuple[GemmShape, ...],
        name: str,
        config: ArrayFlexConfig,
        conventional: bool,
        totals_only: bool,
    ) -> Future:
        """Submit to the process pool, shipping the span context along.

        Context variables don't cross processes, so with tracing enabled
        the task wraps in :func:`repro.obs.call_with_context`: the
        picklable span context travels with the arguments, the worker
        records its spans on a local tracer, and the returned
        ``(result, spans)`` pair comes back through a
        :class:`_SpanRelayFuture` that re-parents the spans here and
        resolves to the bare result.
        """
        tracer = get_tracer()
        args = (gemms, name, config, conventional, totals_only)
        if tracer.enabled:
            inner = self._pool.submit(
                call_with_context, tracer.current_context(), _worker_schedule, *args
            )
            return _SpanRelayFuture(inner, tracer)
        return self._pool.submit(_worker_schedule, *args)

    def _forget_failed(self, key: tuple, future: Future) -> None:
        """Drop a failed/cancelled future from the dedup map.

        A transient error (disk full during a store flush, a killed pool
        worker) must not poison its request key for the service's
        lifetime — the next identical request recomputes instead of
        re-raising the stale exception.
        """
        try:
            failed = future.cancelled() or future.exception() is not None
        except BaseException:  # pragma: no cover - defensive
            failed = True
        with self._lock:
            # The future is done: cancel() is a no-op from here on, so its
            # waiter count is dead weight (and id() values may be reused).
            self._waiters.pop(id(future), None)
            if failed and self._futures.get(key) is future:
                del self._futures[key]

    def _evict_completed_locked(self) -> None:
        """Drop oldest *completed* futures until the dedup map fits.

        Pending futures are kept regardless: evicting them would submit
        genuinely duplicate in-flight work, which is the one thing the
        dedup map exists to prevent.
        """
        for key in list(self._futures):
            if len(self._futures) <= self.dedup_size:
                break
            if self._futures[key].done():
                del self._futures[key]

    def _collect(
        self,
        request: Request,
        key: tuple,
        future: Future[ModelSchedule | ModelTotals],
        default_timeout: float | None,
        deduplicated: bool,
    ) -> Response:
        """One response, bounded by the request's deadline when it has one."""
        timeout = request.timeout if request.timeout is not None else default_timeout
        try:
            with get_tracer().span(
                "service.wait", model=key[0], deduplicated=deduplicated
            ):
                if timeout is None:
                    result = future.result()
                else:
                    result = future.result(timeout=timeout)
        except (FutureTimeoutError, CancelledError) as exc:
            # Queued-but-not-started work is cancelled outright — but only
            # when this waiter holds the future's sole issued handle, so a
            # deadline never destroys a computation a deduplicated caller
            # still awaits; running or shared work is merely abandoned by
            # this waiter.  Either way the key is forgotten so the next
            # identical request recomputes.
            with self._lock:
                if isinstance(exc, CancelledError):
                    cancelled = True
                else:
                    handle = id(future)
                    sole_waiter = self._waiters.get(handle, 1) <= 1
                    cancelled = future.cancel() if sole_waiter else False
                    if not cancelled and self._waiters.get(handle, 0) > 1:
                        # This waiter walks away; a later sole survivor's
                        # deadline may still cancel the queued work.
                        self._waiters[handle] -= 1
                self._ctr_timed_out.inc()
                if self._futures.get(key) is future:
                    del self._futures[key]
            return Response(
                status="timeout",
                # The resolved name is the dedup key's first component; a
                # failure path must not re-lower the whole workload.
                model_name=key[0],
                conventional=request.conventional,
                totals_only=request.totals_only,
                timeout_s=timeout if timeout is not None else 0.0,
                cancelled=cancelled,
                deduplicated=deduplicated,
            )
        return Response(
            status="ok",
            model_name=key[0],
            conventional=request.conventional,
            totals_only=request.totals_only,
            result=result,
            deduplicated=deduplicated,
        )

    # ------------------------------------------------------------------ #
    # Introspection / lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int | str]:
        """Serving and (thread-mode) backend cache counters."""
        with self._lock:
            counters: dict[str, int | str] = {
                "executor": self.executor_kind,
                "max_workers": self.max_workers,
                "requests": self._ctr_requests.value,
                "submitted": self._ctr_submitted.value,
                "deduplicated": self._ctr_deduplicated.value,
                "timed_out": self._ctr_timed_out.value,
            }
        cache_info = getattr(self.backend, "cache_info", None)
        if cache_info is not None and self.executor_kind == "thread":
            # Process workers hold their own backend copies; the parent's
            # counters would be misleading there.
            counters.update(cache_info())
        store = getattr(self.backend, "store", None)
        if store is not None:
            # The disk store is shared across executors of any kind (one
            # directory, atomic merge-on-write), so its counters are
            # meaningful even in process mode.  ``disk_``-prefixed to keep
            # them apart from cache_info()'s in-memory ``store_hits``.
            counters.update(
                {f"disk_{key}": value for key, value in store.stats().items()}
            )
        return counters

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (or is running)."""
        return self._closed.is_set()

    def close(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Shut the executor down (idempotent; signal-handler safe).

        Only the first call does anything — the daemon's graceful drain
        may race a ``with``-block exit or a second signal, and a double
        close must be a no-op, not an error.  The closed flag is a bare
        :class:`threading.Event` set before any other work, so calling
        this from a signal handler never blocks on a lock the interrupted
        frame might hold.

        After timeouts, pass ``wait=False, cancel_futures=True``:
        ``wait=True`` (the context-manager default) would block on the
        very computations a deadline just abandoned.  Note that a
        *running* thread-pool task cannot be interrupted — Python still
        joins non-daemon workers at interpreter exit — so a truly
        unbounded computation delays process exit either way; queued
        work, however, is cancelled outright.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        self._pool.shutdown(wait=wait, cancel_futures=cancel_futures)
        flush = getattr(self.backend, "flush_store", None)
        if flush is not None:
            # Drain buffered decision-store rows: a closed service leaves
            # everything it derived on disk for the next process.
            flush()

    def __enter__(self) -> "SchedulingService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _coerce(
        request: Request | tuple[WorkloadArgument, ArrayFlexConfig],
    ) -> Request:
        """Deprecated internal shim; see :func:`protocol.coerce_request`."""
        return coerce_request(request)
