"""The network-facing scheduler daemon: HTTP/JSON over SchedulingService.

A long-running, stdlib-only (:mod:`http.server`) process boundary around
:class:`~repro.serve.service.SchedulingService`: wire clients speak the
versioned JSON protocol of :mod:`repro.serve.protocol`, and every
request routes through the same ``submit(Request) -> Response`` core a
library caller uses — so daemon results are bit-identical to in-process
ones, dedup/decision-cache/disk-store warmth included.

Endpoints
---------
``POST /v1/schedule``  one request body -> one response body (a missed
                       deadline is HTTP 504, ``request_timeout``).
``POST /v1/batch``     ``{"v": 1, "requests": [...]}`` -> ``{"responses":
                       [...]}``; submitted together (full executor
                       concurrency + dedup), per-item timeouts reported
                       per item, never failing the batch.
``POST /v1/compare``   like batch, but each request becomes an
                       (ArrayFlex, conventional) pair -> ``{"pairs":
                       [[flex, conv], ...]}``.
``GET /metrics``       request/outcome/rejection counters, per-backend
                       latency histograms, the service's dedup counters
                       and the decision store's hit/flush counters —
                       all read from one unified metrics registry; with
                       ``Accept: text/plain`` the same registry is served
                       as Prometheus text exposition instead of JSON.
``GET /healthz``       liveness: status (``ok``/``draining``), uptime,
                       in-flight depth.

What a daemon needs that a library doesn't
------------------------------------------
*Backpressure*: at most ``max_inflight`` requests are admitted at once
(:class:`~repro.serve.middleware.AdmissionGate`); beyond that the daemon
sheds load with HTTP 429 + ``Retry-After`` instead of queueing without
bound.  *Rate limits*: an optional per-client token bucket
(:class:`~repro.serve.middleware.TokenBucket`, keyed by ``X-Client-Id``
or peer host) refuses over-rate clients with HTTP 503 + the exact
refill time.  *Graceful drain*: SIGTERM/SIGINT (or
:meth:`SchedulerDaemon.request_drain`) stops accepting work, finishes
everything in flight, flushes the decision store via the service's
idempotent ``close()``, then lets the process exit 0.

>>> daemon = SchedulerDaemon(port=0)          # ephemeral port
>>> thread = daemon.start()
>>> client = DaemonClient(port=daemon.address[1])
>>> client.healthz()["status"]
'ok'
>>> daemon.drain()
"""

from __future__ import annotations

import json
import logging
import os
import signal
import threading
import time
import uuid
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.logs import bind_request_id, configure_logging
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer
from repro.serve.errors import (
    AdmissionRejected,
    InvalidRequest,
    RateLimited,
    RequestTimeout,
    ServeError,
)
from repro.serve.middleware import AdmissionGate, DaemonMetrics, TokenBucket
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Request,
    request_from_wire,
    request_to_wire,
    response_to_wire,
)
from repro.serve.service import SchedulingService

__all__ = ["DaemonClient", "SchedulerDaemon"]

#: Largest accepted POST body; a daemon must bound what it buffers.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Largest accepted batch/compare fan-out per HTTP request.
MAX_BATCH_REQUESTS = 4096

_POST_ROUTES = ("/v1/schedule", "/v1/batch", "/v1/compare")

#: Structured access log (opt-in: silent unless a handler is configured
#: at DEBUG, e.g. via ``--log-level debug`` or ``REPRO_LOG_LEVEL``).
_ACCESS_LOG = logging.getLogger("repro.serve.access")


class SchedulerDaemon:
    """One scheduling service behind a threaded HTTP/JSON front door.

    ``service`` defaults to a fresh thread-executor
    :class:`SchedulingService` built from ``backend``/``cache_dir``/
    ``max_workers``; pass an existing service to share its warmth (the
    daemon then also owns closing it on drain).  ``max_inflight`` bounds
    the admission queue, ``rate_limit``/``rate_burst`` configure the
    per-client token bucket (``None`` disables it), and
    ``default_timeout`` is the per-request deadline applied when a wire
    request carries none (``None``: wait forever).
    """

    def __init__(
        self,
        service: SchedulingService | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8537,
        backend=None,
        cache_dir=None,
        executor: str = "thread",
        max_workers: int | None = None,
        max_inflight: int = 64,
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        default_timeout: float | None = None,
        drain_timeout: float = 30.0,
    ) -> None:
        if service is None:
            service = SchedulingService(
                backend=backend,
                cache_dir=cache_dir,
                executor=executor,
                max_workers=max_workers,
            )
        elif backend is not None or cache_dir is not None:
            raise InvalidRequest(
                "pass either a ready service or backend/cache_dir arguments, not both"
            )
        self.service = service
        self.gate = AdmissionGate(max_inflight)
        self.limiter = TokenBucket(rate_limit, rate_burst)
        self.metrics = DaemonMetrics()
        #: The unified registry behind ``/metrics``: the daemon's own
        #: middleware counters plus the service's (which in turn carries
        #: the backend's cache counters and the decision store's) — one
        #: merged read, no component knowing about any other.
        self.registry = MetricsRegistry()
        self.registry.attach(self.metrics.registry)
        self.registry.attach(self.service.registry)
        level = os.environ.get("REPRO_LOG_LEVEL")
        if level:
            configure_logging(level=level, json_lines=True)
        self.default_timeout = default_timeout
        self.drain_timeout = drain_timeout
        self._started = time.monotonic()
        self._draining = threading.Event()
        self._drained = threading.Event()
        handler = type("_BoundHandler", (_Handler,), {"daemon": self})
        self._server = ThreadingHTTPServer((host, port), handler)
        # Handler threads must not block interpreter exit; the drain
        # barrier (gate.wait_idle) is what guarantees in-flight requests
        # finish before the service closes.
        self._server.daemon_threads = True

    # ------------------------------------------------------------------ #
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — resolves ``port=0`` to the real port."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def uptime_s(self) -> float:
        return time.monotonic() - self._started

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def serve_forever(self) -> None:
        """Serve until drained; returns after the drain completes.

        The calling thread runs the accept loop (the CLI's main thread;
        tests use :meth:`start` for a background thread).  When
        :meth:`request_drain` fires — directly or via a signal — the
        loop exits, the listening socket closes, in-flight requests
        finish behind the admission gate, and the service closes
        (flushing buffered decision-store rows).
        """
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            self._finish_drain()

    def start(self) -> threading.Thread:
        """Serve on a background thread (returns it); for tests/embedding."""
        thread = threading.Thread(
            target=self.serve_forever, name="repro-daemon", daemon=True
        )
        thread.start()
        return thread

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""
        for signum in (signal.SIGTERM, signal.SIGINT):
            signal.signal(signum, self._handle_signal)

    def _handle_signal(self, signum, frame) -> None:  # pragma: no cover - signal path
        self.request_drain()

    def request_drain(self) -> None:
        """Begin a graceful drain; idempotent and signal-handler safe.

        Only sets a flag and spawns the shutdown thread —
        ``server.shutdown()`` blocks until the accept loop notices, so it
        must never run on the thread (or the interrupted main-thread
        frame) that is *inside* ``serve_forever``.
        """
        if self._draining.is_set():
            return
        self._draining.set()
        threading.Thread(
            target=self._server.shutdown, name="repro-daemon-shutdown", daemon=True
        ).start()

    def _finish_drain(self) -> None:
        self._draining.set()
        self._server.server_close()
        # In-flight requests complete behind the gate; a stuck backend is
        # bounded by drain_timeout so SIGTERM always terminates.
        self.gate.wait_idle(timeout=self.drain_timeout)
        self.service.close()
        self._drained.set()

    def drain(self, timeout: float | None = None) -> bool:
        """Request a drain and block until it completes (or ``timeout``)."""
        self.request_drain()
        return self._drained.wait(
            timeout=timeout if timeout is not None else self.drain_timeout + 5.0
        )

    # ------------------------------------------------------------------ #
    # Introspection payloads
    # ------------------------------------------------------------------ #
    def healthz_payload(self) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "status": "draining" if self.draining else "ok",
            "backend": getattr(self.service.backend, "name", "unknown"),
            "uptime_s": round(self.uptime_s(), 3),
            "inflight": self.gate.depth,
            "max_inflight": self.gate.limit,
        }

    def metrics_payload(self) -> dict:
        service_stats = self.service.stats()
        payload: dict = {
            "v": PROTOCOL_VERSION,
            "uptime_s": round(self.uptime_s(), 3),
            "inflight": self.gate.depth,
            "daemon": self.metrics.snapshot(),
            "service": service_stats,
            "rates": _hit_rates(service_stats),
        }
        if self.limiter.enabled:
            payload["rate_limiter"] = {
                "rate_per_s": self.limiter.rate,
                "burst": self.limiter.burst,
                "clients": self.limiter.clients(),
            }
        counters = getattr(getattr(self.service.backend, "store", None), "counters", None)
        if counters is not None:
            payload["store"] = counters()
        return payload

    def prometheus_payload(self) -> str:
        """``/metrics`` as Prometheus text exposition, from the unified
        registry (served on ``Accept: text/plain`` content negotiation)."""
        self.registry.gauge("daemon_inflight").set(self.gate.depth)
        self.registry.gauge("daemon_uptime_seconds").set(round(self.uptime_s(), 3))
        return self.registry.to_prometheus()


def _hit_rates(stats: dict) -> dict:
    """Dedup / decision-cache / disk-store hit rates from raw counters."""
    rates: dict[str, float] = {}
    requests = int(stats.get("requests", 0) or 0)
    if requests:
        rates["dedup"] = round(int(stats.get("deduplicated", 0)) / requests, 4)
    hits = stats.get("hits")
    misses = stats.get("misses")
    if hits is not None and misses is not None and (hits + misses):
        lookups = hits + misses
        rates["decision_cache"] = round(hits / lookups, 4)
        store_hits = int(stats.get("store_hits", 0) or 0)
        rates["store"] = round(store_hits / lookups, 4)
    return rates


# ---------------------------------------------------------------------- #
# HTTP plumbing
# ---------------------------------------------------------------------- #
class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests through the daemon's middleware and service."""

    daemon: SchedulerDaemon  # bound by SchedulerDaemon via a subclass
    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        """Structured access log (DEBUG on ``repro.serve.access``).

        Fires from the stdlib's ``log_request`` when a response status
        goes out; silent (one level check) unless logging was configured
        at DEBUG, so the production default still writes nothing.
        """
        if not _ACCESS_LOG.isEnabledFor(logging.DEBUG):
            return
        started = getattr(self, "_started", None)
        _ACCESS_LOG.debug(
            format % args if args else format,
            extra={
                "method": getattr(self, "command", None),
                "path": getattr(self, "path", None),
                "status": getattr(self, "_status", None),
                "duration_ms": (
                    round(1e3 * (time.perf_counter() - started), 3)
                    if started is not None
                    else None
                ),
            },
        )

    def _begin_request(self) -> str:
        """Assign the request's correlation ID and start its clock."""
        self._started = time.perf_counter()
        rid = self.headers.get("X-Request-Id") or uuid.uuid4().hex[:16]
        self._request_id = rid
        return rid

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 - stdlib dispatch name
        with bind_request_id(self._begin_request()):
            if self.path == "/healthz":
                self._send_json(200, self.daemon.healthz_payload())
            elif self.path == "/metrics":
                accept = self.headers.get("Accept", "")
                if "text/plain" in accept:
                    self._send_text(200, self.daemon.prometheus_payload())
                else:
                    self._send_json(200, self.daemon.metrics_payload())
            else:
                self._send_error_body(
                    404, "not_found", f"no such endpoint: {self.path}"
                )

    def do_POST(self) -> None:  # noqa: N802 - stdlib dispatch name
        rid = self._begin_request()
        endpoint = self.path
        if endpoint not in _POST_ROUTES:
            with bind_request_id(rid):
                self._send_error_body(404, "not_found", f"no such endpoint: {endpoint}")
            return
        daemon = self.daemon
        client = self.headers.get("X-Client-Id") or self.client_address[0]
        started = self._started
        # The request ID doubles as the trace ID, so every span a request
        # opens — here, in the service, in a pool worker — and every log
        # record it emits carry the same correlation ID.
        with bind_request_id(rid), get_tracer().span(
            "daemon.request", trace_id=rid, endpoint=endpoint, client=client
        ) as span:
            try:
                if daemon.draining:
                    raise AdmissionRejected("daemon is draining", retry_after_s=None)
                daemon.limiter.admit(client)
                with daemon.gate.admit():
                    payload = self._read_json()
                    if endpoint == "/v1/schedule":
                        body, outcome = self._handle_schedule(payload)
                    elif endpoint == "/v1/batch":
                        body, outcome = self._handle_batch(payload)
                    else:
                        body, outcome = self._handle_compare(payload)
                latency_ms = 1e3 * (time.perf_counter() - started)
                daemon.metrics.observe(
                    endpoint,
                    outcome,
                    getattr(daemon.service.backend, "name", "unknown"),
                    latency_ms,
                )
                span.set(outcome=outcome)
                if outcome == "timeout" and endpoint == "/v1/schedule":
                    # The single-request endpoint surfaces its deadline as a
                    # typed 504; batch/compare report per item instead.
                    raise RequestTimeout(
                        f"request missed its deadline after {latency_ms / 1e3:.3f}s"
                    )
                self._send_json(200, body)
            except ServeError as exc:
                daemon.metrics.reject(endpoint, exc.code)
                span.set(outcome=exc.code)
                self._send_serve_error(exc)
            except Exception as exc:  # pragma: no cover - defensive catch-all
                daemon.metrics.reject(endpoint, "internal_error")
                span.set(outcome="internal_error")
                self._send_error_body(
                    500, "internal_error", f"{type(exc).__name__}: {exc}"
                )

    # ------------------------------------------------------------------ #
    def _handle_schedule(self, payload: object) -> tuple[dict, str]:
        request = request_from_wire(payload)
        response = self.daemon.service.submit(
            request, timeout=self.daemon.default_timeout
        )
        return response_to_wire(response), response.status

    def _requests_from_batch(self, payload: object, endpoint: str) -> list[Request]:
        if not isinstance(payload, dict):
            raise InvalidRequest(f"{endpoint} body must be a JSON object")
        version = payload.get("v")
        if version != PROTOCOL_VERSION:
            raise InvalidRequest(
                f"unsupported protocol version {version!r} "
                f"(this server speaks v{PROTOCOL_VERSION})"
            )
        unknown = set(payload) - {"v", "requests"}
        if unknown:
            raise InvalidRequest(f"unknown {endpoint} fields: {sorted(unknown)}")
        items = payload.get("requests")
        if not isinstance(items, list) or not items:
            raise InvalidRequest(f"{endpoint} needs a non-empty 'requests' list")
        if len(items) > MAX_BATCH_REQUESTS:
            raise InvalidRequest(
                f"{endpoint} accepts at most {MAX_BATCH_REQUESTS} requests per call"
            )
        return [request_from_wire(item) for item in items]

    def _handle_batch(self, payload: object) -> tuple[dict, str]:
        requests = self._requests_from_batch(payload, "/v1/batch")
        responses = self.daemon.service.submit_many(
            requests, timeout=self.daemon.default_timeout
        )
        outcome = "ok" if all(r.ok for r in responses) else "timeout"
        return (
            {
                "v": PROTOCOL_VERSION,
                "count": len(responses),
                "responses": [response_to_wire(response) for response in responses],
            },
            outcome,
        )

    def _handle_compare(self, payload: object) -> tuple[dict, str]:
        requests = self._requests_from_batch(payload, "/v1/compare")
        for index, request in enumerate(requests):
            if request.conventional:
                raise InvalidRequest(
                    f"compare request {index} must not set 'conventional': "
                    "the endpoint schedules both sides itself"
                )
        responses = self.daemon.service.submit_many(
            (pair for request in requests for pair in request.paired()),
            timeout=self.daemon.default_timeout,
        )
        outcome = "ok" if all(r.ok for r in responses) else "timeout"
        pairs = [
            [response_to_wire(responses[2 * i]), response_to_wire(responses[2 * i + 1])]
            for i in range(len(requests))
        ]
        return {"v": PROTOCOL_VERSION, "count": len(pairs), "pairs": pairs}, outcome

    # ------------------------------------------------------------------ #
    def _read_json(self) -> object:
        length_header = self.headers.get("Content-Length")
        if length_header is None:
            raise InvalidRequest("POST requires a Content-Length header")
        try:
            length = int(length_header)
        except ValueError:
            raise InvalidRequest("Content-Length must be an integer") from None
        if length <= 0:
            raise InvalidRequest("POST requires a non-empty JSON body")
        if length > MAX_BODY_BYTES:
            raise InvalidRequest(
                f"request body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise InvalidRequest(f"request body is not valid JSON: {exc}") from exc

    def _send_json(
        self, status: int, payload: dict, headers: dict[str, str] | None = None
    ) -> None:
        self._send_body(
            status, json.dumps(payload).encode("utf-8"), "application/json", headers
        )

    def _send_text(self, status: int, text: str) -> None:
        self._send_body(status, text.encode("utf-8"), "text/plain; charset=utf-8")

    def _send_body(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: dict[str, str] | None = None,
    ) -> None:
        self._status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_serve_error(self, exc: ServeError) -> None:
        headers = {}
        if exc.retry_after_s is not None:
            headers["Retry-After"] = f"{max(exc.retry_after_s, 0.01):g}"
        body = {
            "v": PROTOCOL_VERSION,
            "error": {"code": exc.code, "message": str(exc)},
        }
        if exc.retry_after_s is not None:
            body["retry_after_s"] = exc.retry_after_s
        self._send_json(exc.http_status, body, headers)

    def _send_error_body(self, status: int, code: str, message: str) -> None:
        self._send_json(
            status,
            {"v": PROTOCOL_VERSION, "error": {"code": code, "message": message}},
        )


# ---------------------------------------------------------------------- #
# Client
# ---------------------------------------------------------------------- #
#: Wire error code -> typed exception, for re-raising on the client side.
_ERROR_CLASSES: dict[str, type[ServeError]] = {
    cls.code: cls
    for cls in (InvalidRequest, AdmissionRejected, RateLimited, RequestTimeout)
}


class DaemonClient:
    """Minimal stdlib HTTP client of the daemon (used by the CLI and tests).

    Raises the same typed :class:`~repro.serve.errors.ServeError`
    subclasses the daemon mapped onto the wire, so a CLI (or test) client
    sees ``AdmissionRejected`` where an in-process caller would — one
    error surface on both sides of the socket.  One connection per call:
    boring, thread-safe, and immune to half-closed keep-alive sockets.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8537,
        timeout: float = 120.0,
        client_id: str | None = None,
        request_id: str | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id
        #: Sent as ``X-Request-Id`` on every call when set; the daemon
        #: otherwise assigns one.  Either way the ID the daemon used
        #: comes back in :attr:`last_request_id` after each call.
        self.request_id = request_id
        self.last_request_id: str | None = None

    # ------------------------------------------------------------------ #
    def healthz(self) -> dict:
        return self._call("GET", "/healthz")

    def metrics(self) -> dict:
        return self._call("GET", "/metrics")

    def schedule(self, request: Request | dict) -> dict:
        """POST one request; the decoded response body (or a typed raise)."""
        payload = request_to_wire(request) if isinstance(request, Request) else request
        return self._call("POST", "/v1/schedule", payload)

    def batch(self, requests: list[Request | dict]) -> dict:
        return self._call("POST", "/v1/batch", self._fanout_payload(requests))

    def compare(self, requests: list[Request | dict]) -> dict:
        return self._call("POST", "/v1/compare", self._fanout_payload(requests))

    @staticmethod
    def _fanout_payload(requests: list[Request | dict]) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "requests": [
                request_to_wire(request) if isinstance(request, Request) else request
                for request in requests
            ],
        }

    # ------------------------------------------------------------------ #
    def _call(self, method: str, path: str, payload: dict | None = None) -> dict:
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"}
            if self.client_id:
                headers["X-Client-Id"] = self.client_id
            if self.request_id:
                headers["X-Request-Id"] = self.request_id
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            connection.request(method, path, body=body, headers=headers)
            http_response = connection.getresponse()
            self.last_request_id = http_response.getheader("X-Request-Id")
            raw = http_response.read()
            try:
                decoded = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServeError(
                    f"daemon returned non-JSON body (HTTP {http_response.status})"
                ) from exc
            if http_response.status >= 400:
                error = decoded.get("error", {}) if isinstance(decoded, dict) else {}
                code = error.get("code", "serve_error")
                message = error.get("message", f"HTTP {http_response.status}")
                retry_after = (
                    decoded.get("retry_after_s") if isinstance(decoded, dict) else None
                )
                exc_class = _ERROR_CLASSES.get(code, ServeError)
                raise exc_class(message, retry_after_s=retry_after)
            return decoded
        finally:
            connection.close()
