"""The serving layer: one typed request/response API, in process or over HTTP.

The public surface is deliberately small and versioned:

* :class:`~repro.serve.protocol.Request` /
  :class:`~repro.serve.protocol.Response` — the keyword-only protocol
  dataclasses every entry point speaks (``PROTOCOL_VERSION`` stamps the
  wire form);
* :class:`~repro.serve.service.SchedulingService` — the in-process
  server; ``submit(Request) -> Response`` is the single core, with
  ``submit_many``/``submit_future``/``compare`` as thin adapters;
* :class:`~repro.serve.daemon.SchedulerDaemon` /
  :class:`~repro.serve.daemon.DaemonClient` — the same service behind a
  stdlib HTTP/JSON front door (``python -m repro serve``);
* the :mod:`~repro.serve.errors` hierarchy — every failure carries a
  wire ``code``, an HTTP status, and a CLI exit code.

>>> from repro.serve import Request, SchedulingService
>>> from repro.core.config import ArrayFlexConfig
>>> from repro.nn.models import resnet34
>>> with SchedulingService() as service:
...     response = service.submit(
...         Request(model=resnet34(), config=ArrayFlexConfig.paper_128x128())
...     )
>>> response.unwrap().model_name
'ResNet-34'

``ScheduleRequest``, ``schedule_many``, ``schedule_all``,
``schedule_suite`` and ``compare_many`` are deprecated pre-protocol
aliases kept for one release; see ``docs/serve-api-migration.md``.
"""

from repro.serve.daemon import DaemonClient, SchedulerDaemon
from repro.serve.errors import (
    AdmissionRejected,
    InvalidRequest,
    RateLimited,
    RequestTimeout,
    ServeError,
)
from repro.serve.middleware import (
    AdmissionGate,
    DaemonMetrics,
    LatencyHistogram,
    TokenBucket,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    Request,
    Response,
    coerce_request,
    request_from_wire,
    request_to_wire,
    response_to_wire,
    suite_requests,
)
from repro.serve.service import (
    EXECUTORS,
    ScheduleRequest,  # deprecated alias of Request (one release of grace)
    SchedulingService,
    ServiceStats,
    TimedOutRequest,
    default_max_workers,
)

__all__ = [
    # protocol
    "PROTOCOL_VERSION",
    "Request",
    "Response",
    "coerce_request",
    "request_from_wire",
    "request_to_wire",
    "response_to_wire",
    "suite_requests",
    # service
    "EXECUTORS",
    "SchedulingService",
    "ServiceStats",
    "default_max_workers",
    # daemon
    "DaemonClient",
    "SchedulerDaemon",
    # middleware
    "AdmissionGate",
    "DaemonMetrics",
    "LatencyHistogram",
    "TokenBucket",
    # errors
    "ServeError",
    "InvalidRequest",
    "AdmissionRejected",
    "RateLimited",
    "RequestTimeout",
    # deprecated (one release of grace)
    "ScheduleRequest",
    "TimedOutRequest",
]
