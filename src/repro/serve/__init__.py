"""Batch-serving front-end: submit scheduling requests, get futures back.

>>> from repro.serve import SchedulingService, ScheduleRequest
>>> from repro.core.config import ArrayFlexConfig
>>> from repro.nn.models import resnet34
>>> with SchedulingService() as service:
...     futures = service.schedule_many(
...         [(resnet34(), ArrayFlexConfig.paper_128x128())]
...     )
...     schedule = futures[0].result()
>>> schedule.model_name
'ResNet-34'

See :mod:`repro.serve.service` for the full story (dedup, batching,
thread/process executors, disk-persistent decision cache).
"""

from repro.serve.service import (
    EXECUTORS,
    ScheduleRequest,
    SchedulingService,
    ServiceStats,
    TimedOutRequest,
    default_max_workers,
)

__all__ = [
    "EXECUTORS",
    "ScheduleRequest",
    "SchedulingService",
    "ServiceStats",
    "TimedOutRequest",
    "default_max_workers",
]
