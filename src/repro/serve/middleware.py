"""Daemon middleware: the things a network service needs that a library
doesn't.

Three small, independently testable pieces sit between the HTTP layer
and :class:`~repro.serve.service.SchedulingService`:

* :class:`AdmissionGate` — a bounded admission queue.  At most ``limit``
  requests may be *in flight* (admitted and not yet answered) at once;
  request ``limit + 1`` is shed immediately with
  :class:`~repro.serve.errors.AdmissionRejected` (HTTP 429 +
  ``Retry-After``) instead of queueing without bound.  Shedding beats
  queueing under saturation: a client that waits 30 s for a 200 has
  usually given up anyway, while an instant 429 lets it back off and
  retry into capacity.
* :class:`TokenBucket` — per-client rate limiting.  Each client id (the
  ``X-Client-Id`` header, falling back to the peer address) owns a
  bucket of ``burst`` tokens refilled at ``rate`` tokens/second; a
  request with an empty bucket is refused with
  :class:`~repro.serve.errors.RateLimited` carrying the *exact* seconds
  until a whole token exists again.
* :class:`LatencyHistogram` / :class:`DaemonMetrics` — the ``/metrics``
  counters: per-endpoint request/outcome counts, rejection counts, and
  per-backend latency histograms over log-spaced buckets (fixed bucket
  edges keep the histogram mergeable across scrapes — no quantile state
  to decay).  Since the unified observability layer, both are thin
  views over :class:`repro.obs.MetricsRegistry` instruments — the
  snapshot shapes are unchanged, but the daemon can now merge these
  counters with the service's and store's through one registry.

Everything takes an injectable clock so the tests never sleep to move
time forward.
"""

from __future__ import annotations

import math
import threading
import time
from collections.abc import Callable

from repro.obs.metrics import DEFAULT_BUCKETS_MS, Histogram, MetricsRegistry
from repro.serve.errors import AdmissionRejected, InvalidRequest, RateLimited

__all__ = [
    "AdmissionGate",
    "DaemonMetrics",
    "LatencyHistogram",
    "TokenBucket",
]


class AdmissionGate:
    """Bounded admission queue with queue-depth backpressure.

    ``enter()`` admits or raises :class:`AdmissionRejected`; ``leave()``
    releases the slot (use :meth:`admit` as a context manager so a
    handler that raises still releases).  ``retry_after_s`` is the hint
    attached to rejections — an estimate of when a slot will free up, not
    a promise.
    """

    def __init__(self, limit: int, retry_after_s: float = 1.0) -> None:
        if limit < 1:
            raise InvalidRequest("admission limit must be at least 1")
        self.limit = limit
        self.retry_after_s = retry_after_s
        self._depth = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)

    @property
    def depth(self) -> int:
        """Requests currently admitted and not yet answered."""
        with self._lock:
            return self._depth

    def enter(self) -> None:
        with self._lock:
            if self._depth >= self.limit:
                raise AdmissionRejected(
                    f"admission queue is full ({self._depth}/{self.limit} in flight)",
                    retry_after_s=self.retry_after_s,
                )
            self._depth += 1

    def leave(self) -> None:
        with self._lock:
            self._depth = max(0, self._depth - 1)
            if self._depth == 0:
                self._idle.notify_all()

    def admit(self) -> "_Admission":
        """Context manager: ``enter()`` on entry, ``leave()`` on exit."""
        return _Admission(self)

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no request is in flight (the drain barrier)."""
        with self._lock:
            return self._idle.wait_for(lambda: self._depth == 0, timeout=timeout)


class _Admission:
    def __init__(self, gate: AdmissionGate) -> None:
        self._gate = gate

    def __enter__(self) -> AdmissionGate:
        self._gate.enter()
        return self._gate

    def __exit__(self, *exc_info: object) -> None:
        self._gate.leave()


class TokenBucket:
    """Per-client token buckets: ``rate`` tokens/second, ``burst`` deep.

    A disabled limiter (``rate=None``) admits everything — the daemon
    default, so a single-user deployment needs no configuration.  Client
    ids are whatever the caller keys on (the daemon uses the
    ``X-Client-Id`` header, falling back to the peer host).  Buckets are
    created full, so a new client can burst immediately.
    """

    def __init__(
        self,
        rate: float | None,
        burst: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate is not None and rate <= 0:
            raise InvalidRequest("rate limit must be positive (or None to disable)")
        self.rate = rate
        self.burst = burst if burst is not None else (rate if rate is not None else 0.0)
        if rate is not None and self.burst < 1:
            raise InvalidRequest("rate-limit burst must allow at least one request")
        self._clock = clock
        self._lock = threading.Lock()
        #: client id -> (tokens, last refill timestamp)
        self._buckets: dict[str, tuple[float, float]] = {}

    @property
    def enabled(self) -> bool:
        return self.rate is not None

    def admit(self, client: str) -> None:
        """Spend one token of ``client``'s bucket or raise :class:`RateLimited`."""
        if self.rate is None:
            return
        now = self._clock()
        with self._lock:
            tokens, stamp = self._buckets.get(client, (self.burst, now))
            tokens = min(self.burst, tokens + (now - stamp) * self.rate)
            if tokens < 1.0:
                self._buckets[client] = (tokens, now)
                raise RateLimited(
                    f"client {client!r} exceeded {self.rate:g} requests/s "
                    f"(burst {self.burst:g})",
                    retry_after_s=math.ceil(100 * (1.0 - tokens) / self.rate) / 100,
                )
            self._buckets[client] = (tokens - 1.0, now)

    def clients(self) -> int:
        with self._lock:
            return len(self._buckets)


def _histogram_snapshot(histogram: Histogram) -> dict:
    """The daemon's historical histogram read shape, from an instrument."""
    cumulative = {
        ("+Inf" if edge == "+Inf" else f"{edge:g}"): count
        for edge, count in histogram.cumulative().items()
    }
    total = histogram.count
    sum_ms = histogram.sum
    return {
        "count": total,
        "sum_ms": round(sum_ms, 4),
        "mean_ms": round(sum_ms / total, 4) if total else 0.0,
        "buckets_le_ms": cumulative,
    }


class LatencyHistogram:
    """Cumulative latency histogram over fixed log-spaced millisecond buckets.

    A view over one :class:`repro.obs.Histogram` instrument; standalone
    construction (no registry) keeps the historical API for direct
    users, while :class:`DaemonMetrics` builds them on its registry.
    """

    #: Upper bucket edges in milliseconds (the last bucket is +inf).
    BUCKETS_MS = DEFAULT_BUCKETS_MS

    def __init__(self, instrument: Histogram | None = None) -> None:
        self._instrument = instrument or Histogram(
            "latency_ms", {}, buckets=self.BUCKETS_MS
        )

    def observe(self, latency_ms: float) -> None:
        self._instrument.observe(latency_ms)

    def snapshot(self) -> dict:
        """count / sum / mean plus cumulative ``le`` bucket counts."""
        return _histogram_snapshot(self._instrument)


class DaemonMetrics:
    """The /metrics counters: requests, rejections, latency histograms.

    ``observe(endpoint, outcome, backend, latency_ms)`` records one
    answered request; rejections (shed before any backend work) are
    recorded by ``reject(endpoint, code)``.  ``snapshot()`` returns one
    JSON-ready dict; the daemon merges it with the service's serving and
    store counters.

    Every count lives on :attr:`registry` (one
    :class:`repro.obs.MetricsRegistry`, injectable so the daemon can
    attach it to its root): ``daemon_requests_total{endpoint}``,
    ``daemon_outcomes_total{endpoint,outcome}``,
    ``daemon_rejections_total{endpoint,code}`` and the per-backend
    ``daemon_latency_ms{backend}`` histograms.  ``snapshot()`` rebuilds
    the historical JSON shape from those instruments, bit-identically.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()

    def observe(
        self, endpoint: str, outcome: str, backend: str, latency_ms: float
    ) -> None:
        self.registry.counter("daemon_requests_total", endpoint=endpoint).inc()
        self.registry.counter(
            "daemon_outcomes_total", endpoint=endpoint, outcome=outcome
        ).inc()
        self.registry.histogram(
            "daemon_latency_ms", buckets=LatencyHistogram.BUCKETS_MS, backend=backend
        ).observe(latency_ms)

    def reject(self, endpoint: str, code: str) -> None:
        self.registry.counter(
            "daemon_rejections_total", endpoint=endpoint, code=code
        ).inc()

    def snapshot(self) -> dict:
        requests = {
            inst.labels["endpoint"]: inst.value
            for inst in self.registry.family("daemon_requests_total")
        }
        outcomes = {
            f"{inst.labels['endpoint']}:{inst.labels['outcome']}": inst.value
            for inst in self.registry.family("daemon_outcomes_total")
        }
        rejections = {
            f"{inst.labels['endpoint']}:{inst.labels['code']}": inst.value
            for inst in self.registry.family("daemon_rejections_total")
        }
        histograms = {
            inst.labels["backend"]: _histogram_snapshot(inst)
            for inst in self.registry.family("daemon_latency_ms")
        }
        return {
            "requests": dict(sorted(requests.items())),
            "outcomes": dict(sorted(outcomes.items())),
            "rejections": dict(sorted(rejections.items())),
            "latency_ms_by_backend": dict(sorted(histograms.items())),
        }
