"""Plain-text rendering of experiment results.

The paper's figures are bar/line charts; in a text-only reproduction the
same information is reported as aligned tables and normalized series.  The
helpers here are deliberately dependency-free (no matplotlib) so that the
benchmarks can print their tables in any environment.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table.

    Numeric cells are right-aligned, text cells left-aligned; floats are
    shown with four significant decimals.
    """
    rendered_rows = [[_format_cell(cell) for cell in row] for row in rows]
    all_rows = [list(headers)] + rendered_rows
    widths = [max(len(row[i]) for row in all_rows) for i in range(len(headers))]

    def render_line(cells: Sequence[str], is_header: bool = False) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if is_header or not _is_numeric(cell):
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 8))
    lines.append(render_line(list(headers), is_header=True))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_line(row) for row in rendered_rows)
    return "\n".join(lines)


def _format_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def _is_numeric(text: str) -> bool:
    try:
        float(text.rstrip("%x"))
    except ValueError:
        return False
    return True


def format_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (0.113 -> '11.3%')."""
    return f"{value * 100:.{digits}f}%"


def format_ratio(value: float, digits: int = 2) -> str:
    """Format an improvement factor ('1.47x')."""
    return f"{value:.{digits}f}x"


def normalize_series(values: Sequence[float], reference: float | None = None) -> list[float]:
    """Normalize a series to a reference value (default: its maximum).

    Mirrors the presentation of the paper's Fig. 8, where execution times
    are normalized "for visual clarity" because ConvNeXt dwarfs the others.
    """
    if not values:
        return []
    ref = reference if reference is not None else max(values)
    if ref == 0:
        raise ValueError("cannot normalize to a zero reference")
    return [v / ref for v in values]


def render_text_bars(
    labels: Sequence[str], values: Sequence[float], width: int = 40
) -> str:
    """Poor-man's bar chart: one text bar per (label, value) pair."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    if not values:
        return ""
    peak = max(values)
    lines = []
    label_width = max(len(label) for label in labels)
    for label, value in zip(labels, values):
        bar_len = 0 if peak == 0 else int(round(width * value / peak))
        lines.append(f"{label.ljust(label_width)}  {'#' * bar_len} {value:.4g}")
    return "\n".join(lines)
