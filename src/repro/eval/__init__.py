"""Evaluation harness: one experiment per table/figure of the paper.

Every figure of the paper's evaluation (Section IV) has a corresponding
experiment class here, plus the ablations DESIGN.md calls out:

===============  ========================================================
Experiment       Paper artifact
===============  ========================================================
``Fig5``         Fig. 5 -- execution time vs collapse depth for ResNet-34
                 layers 20 and 28 on a 132x132 array.
``Fig6``         Fig. 6 -- PE area overhead of reconfigurability.
``Fig7``         Fig. 7 -- per-layer execution time of ConvNeXt (128x128).
``Fig8``         Fig. 8 -- normalized total execution time of three CNNs
                 on 128x128 and 256x256 arrays.
``Fig9``         Fig. 9 -- average power (and EDP) of both designs.
``Eq7``          Eq. (7) -- analytical vs discrete optimal collapse depth.
``Clock``        Section IV operating points (2.0/1.8/1.7/1.4 GHz) and the
                 STA cross-check of Eq. (5).
``CsaAblation``  Section III-B -- what collapsing would cost without the
                 carry-save adders.
``Directions``   Vertical-only vs horizontal-only vs both collapsing.
===============  ========================================================
"""

from repro.eval.ablation import (
    AblationStudy,
    Component,
    StudyResult,
    default_study,
)
from repro.eval.experiments import (
    AblationExperiment,
    ClockFrequencyExperiment,
    CsaAblationExperiment,
    DirectionAblationExperiment,
    Eq7ValidationExperiment,
    Fig5Experiment,
    Fig6Experiment,
    Fig7Experiment,
    Fig8Experiment,
    Fig9Experiment,
    all_experiments,
)
from repro.eval.report import format_ratio, format_table, normalize_series
from repro.eval.sweep import collapse_depth_sweep, array_size_sweep

__all__ = [
    "Fig5Experiment",
    "Fig6Experiment",
    "Fig7Experiment",
    "Fig8Experiment",
    "Fig9Experiment",
    "Eq7ValidationExperiment",
    "ClockFrequencyExperiment",
    "CsaAblationExperiment",
    "DirectionAblationExperiment",
    "AblationExperiment",
    "AblationStudy",
    "Component",
    "StudyResult",
    "default_study",
    "all_experiments",
    "format_table",
    "format_ratio",
    "normalize_series",
    "collapse_depth_sweep",
    "array_size_sweep",
]
