"""Experiment objects, one per paper figure/table plus ablations.

Every experiment follows the same shape:

* ``run()`` computes a structured result (a small dataclass) using only the
  public library API, so the experiments double as integration tests of
  that API;
* ``render(result)`` turns the result into the text table printed by the
  benchmark harness and the examples;
* ``paper_reference`` documents what the paper reports for the same
  artifact, so EXPERIMENTS.md can show measured-vs-paper side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.backends import ExecutionBackend, create_backend
from repro.core.arrayflex import ArrayFlexAccelerator, ComparisonReport
from repro.core.config import ArrayFlexConfig
from repro.core.clock import ClockModel
from repro.core.latency import (
    LatencyModel,
    arrayflex_tile_cycles,
    arrayflex_tile_cycles_horizontal_only,
    arrayflex_tile_cycles_vertical_only,
    tile_count,
)
from repro.core.optimizer import PipelineOptimizer
from repro.core.scheduler import ModelSchedule, Scheduler
from repro.eval.report import format_percent, format_ratio, format_table
from repro.eval.sweep import DepthSweepPoint, collapse_depth_sweep
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import CnnModel, convnext_tiny, model_zoo, resnet34
from repro.timing.area_model import AreaModel
from repro.timing.delay_model import DelayModel
from repro.timing.sta import PipelineBlockNetlist, StaticTimingAnalyzer
from repro.timing.technology import TechnologyModel


# ---------------------------------------------------------------------- #
# Fig. 5 -- execution time vs collapse depth for two ResNet-34 layers
# ---------------------------------------------------------------------- #
@dataclass
class Fig5Result:
    layer_index: int
    gemm: GemmShape
    points: list[DepthSweepPoint]
    conventional_time_us: float

    @property
    def best_depth(self) -> int:
        return min(self.points, key=lambda p: p.execution_time_us).collapse_depth

    @property
    def best_time_us(self) -> float:
        return min(p.execution_time_us for p in self.points)

    @property
    def best_saving(self) -> float:
        return 1.0 - self.best_time_us / self.conventional_time_us


class Fig5Experiment:
    """Fig. 5: ResNet-34 layers 20 / 28 on a 132x132 array, k in {1, 2, 3, 4}.

    The paper finds the execution-time minimum at k = 2 for layer 20
    (large T = 196) and at k = 4 for layer 28 (small T = 49), with the
    conventional fixed-pipeline SA shown as a reference line.
    """

    experiment_id = "fig5"
    paper_reference = {
        "layer20_best_k": 2,
        "layer28_best_k": 4,
        "array": "132x132",
        "depths": (1, 2, 3, 4),
    }

    def __init__(self, layer_index: int = 20, technology: TechnologyModel | None = None):
        if layer_index not in (20, 28):
            raise ValueError("the paper's Fig. 5 studies layers 20 and 28")
        self.layer_index = layer_index
        self.config = ArrayFlexConfig.fig5_132x132(technology)

    def run(self) -> Fig5Result:
        gemm = resnet34().gemm(self.layer_index)
        points = collapse_depth_sweep(gemm, self.config, depths=(1, 2, 3, 4))
        latency = LatencyModel(self.config)
        clock = ClockModel(self.config)
        conventional_cycles = latency.conventional_total_cycles(gemm)
        conventional_time_us = (
            clock.conventional_execution_time_ns(conventional_cycles) / 1000.0
        )
        return Fig5Result(
            layer_index=self.layer_index,
            gemm=gemm,
            points=points,
            conventional_time_us=conventional_time_us,
        )

    def render(self, result: Fig5Result | None = None) -> str:
        result = result or self.run()
        rows = [
            (
                f"k={p.collapse_depth}",
                p.cycles,
                f"{p.clock_frequency_ghz:.1f}",
                p.execution_time_us,
                format_percent(1.0 - p.execution_time_us / result.conventional_time_us),
            )
            for p in result.points
        ]
        rows.append(
            ("conventional", "-", "2.0", result.conventional_time_us, "0.0%")
        )
        return format_table(
            ["mode", "cycles", "clock (GHz)", "time (us)", "saving vs conventional"],
            rows,
            title=(
                f"Fig. 5 -- ResNet-34 layer {result.layer_index} "
                f"(M={result.gemm.m}, N={result.gemm.n}, T={result.gemm.t}), 132x132 SA"
            ),
        )


# ---------------------------------------------------------------------- #
# Fig. 6 -- area overhead of reconfigurability
# ---------------------------------------------------------------------- #
@dataclass
class Fig6Result:
    conventional_pe_um2: float
    arrayflex_pe_um2: float
    pe_overhead: float
    structural_overhead: float
    conventional_array_um2: float
    arrayflex_array_um2: float
    rows: int
    cols: int


class Fig6Experiment:
    """Fig. 6: physical-layout area comparison of 8x8 conventional vs ArrayFlex.

    The paper reports a per-PE area overhead of approximately 16%, consumed
    by the carry-save adder, the bypass multiplexers and the two
    configuration bits.
    """

    experiment_id = "fig6"
    paper_reference = {"pe_area_overhead": 0.16, "array": "8x8"}

    def __init__(self, rows: int = 8, cols: int = 8, technology: TechnologyModel | None = None):
        self.rows = rows
        self.cols = cols
        self.area_model = AreaModel(technology or TechnologyModel.default_28nm())

    def run(self) -> Fig6Result:
        conventional = self.area_model.conventional_pe_area()
        arrayflex = self.area_model.arrayflex_pe_area()
        return Fig6Result(
            conventional_pe_um2=conventional.total,
            arrayflex_pe_um2=arrayflex.total,
            pe_overhead=self.area_model.pe_area_overhead(),
            structural_overhead=self.area_model.pe_structural_overhead(),
            conventional_array_um2=self.area_model.array_area_um2(
                self.rows, self.cols, configurable=False
            ),
            arrayflex_array_um2=self.area_model.array_area_um2(
                self.rows, self.cols, configurable=True
            ),
            rows=self.rows,
            cols=self.cols,
        )

    def render(self, result: Fig6Result | None = None) -> str:
        result = result or self.run()
        rows = [
            ("conventional PE", result.conventional_pe_um2, "-"),
            ("ArrayFlex PE", result.arrayflex_pe_um2, format_percent(result.pe_overhead)),
            (
                f"conventional {result.rows}x{result.cols} array",
                result.conventional_array_um2,
                "-",
            ),
            (
                f"ArrayFlex {result.rows}x{result.cols} array",
                result.arrayflex_array_um2,
                format_percent(result.pe_overhead),
            ),
        ]
        return format_table(
            ["block", "area (um^2)", "overhead"],
            rows,
            title="Fig. 6 -- area of conventional vs ArrayFlex PEs",
        )


# ---------------------------------------------------------------------- #
# Fig. 7 -- per-layer execution time of ConvNeXt
# ---------------------------------------------------------------------- #
@dataclass
class Fig7Result:
    model_name: str
    conventional: ModelSchedule
    arrayflex: ModelSchedule

    @property
    def total_saving(self) -> float:
        return 1.0 - self.arrayflex.total_time_ns / self.conventional.total_time_ns

    def per_layer_savings(self) -> list[float]:
        savings = []
        for conv_layer, af_layer in zip(self.conventional.layers, self.arrayflex.layers):
            savings.append(1.0 - af_layer.execution_time_ns / conv_layer.execution_time_ns)
        return savings

    def shallow_layer_savings(self) -> list[float]:
        """Savings of the layers executed in a shallow (k > 1) pipeline mode."""
        return [
            1.0 - af.execution_time_ns / conv.execution_time_ns
            for conv, af in zip(self.conventional.layers, self.arrayflex.layers)
            if af.collapse_depth > 1
        ]

    def depth_of_layer(self, index: int) -> int:
        return self.arrayflex.layers[index - 1].collapse_depth


class Fig7Experiment:
    """Fig. 7: execution time of every ConvNeXt layer, conventional vs ArrayFlex.

    The paper observes, on a 128x128 array: normal pipeline is best for the
    first ~11 layers, k = 2 for the middle layers and k = 4 for the last
    layers; per-layer savings reach up to ~26% and the total execution time
    drops by ~11%.
    """

    experiment_id = "fig7"
    paper_reference = {
        "array": "128x128",
        "total_saving": 0.11,
        "per_layer_saving_max": 0.26,
        "early_layers_depth": 1,
        "late_layers_depth": 4,
    }

    def __init__(
        self,
        model: CnnModel | None = None,
        rows: int = 128,
        cols: int = 128,
        technology: TechnologyModel | None = None,
        backend: ExecutionBackend | str | None = None,
    ):
        self.model = model or convnext_tiny()
        self.config = ArrayFlexConfig(
            rows=rows, cols=cols, technology=technology or TechnologyModel.default_28nm()
        )
        self.backend = create_backend(backend, default="batched")

    def run(self) -> Fig7Result:
        return Fig7Result(
            model_name=self.model.name,
            conventional=self.backend.schedule_model_conventional(
                self.model, self.config
            ),
            arrayflex=self.backend.schedule_model(self.model, self.config),
        )

    def render(self, result: Fig7Result | None = None) -> str:
        result = result or self.run()
        rows = []
        for conv_layer, af_layer in zip(result.conventional.layers, result.arrayflex.layers):
            saving = 1.0 - af_layer.execution_time_ns / conv_layer.execution_time_ns
            rows.append(
                (
                    af_layer.index,
                    af_layer.gemm.name,
                    af_layer.gemm.t,
                    af_layer.collapse_depth,
                    round(af_layer.analytical_depth, 2),
                    conv_layer.execution_time_ns / 1000.0,
                    af_layer.execution_time_ns / 1000.0,
                    format_percent(saving),
                )
            )
        table = format_table(
            [
                "layer",
                "name",
                "T",
                "k",
                "k_hat (Eq.7)",
                "conventional (us)",
                "ArrayFlex (us)",
                "saving",
            ],
            rows,
            title=(
                f"Fig. 7 -- per-layer execution time of {result.model_name} "
                f"on {result.arrayflex.rows}x{result.arrayflex.cols} SAs"
            ),
        )
        footer = (
            f"\ntotal: conventional {result.conventional.total_time_ms:.3f} ms, "
            f"ArrayFlex {result.arrayflex.total_time_ms:.3f} ms, "
            f"saving {format_percent(result.total_saving)}"
        )
        return table + footer


# ---------------------------------------------------------------------- #
# Fig. 8 -- normalized total execution times of three CNNs
# ---------------------------------------------------------------------- #
@dataclass
class Fig8Entry:
    rows: int
    cols: int
    model_name: str
    conventional_time_ms: float
    arrayflex_time_ms: float
    latency_saving: float
    depth_histogram: dict[int, int] = field(default_factory=dict)


@dataclass
class Fig8Result:
    entries: list[Fig8Entry]

    def by_size(self, rows: int) -> list[Fig8Entry]:
        return [entry for entry in self.entries if entry.rows == rows]

    def savings_range(self) -> tuple[float, float]:
        savings = [entry.latency_saving for entry in self.entries]
        return min(savings), max(savings)


class Fig8Experiment:
    """Fig. 8: total execution time of ResNet-34, MobileNet, ConvNeXt.

    The paper reports 9%-11% lower execution latency for ArrayFlex across
    both 128x128 and 256x256 arrays, with the savings growing for the
    larger array because more layers prefer k = 4.
    """

    experiment_id = "fig8"
    paper_reference = {"latency_saving_range": (0.09, 0.11), "sizes": (128, 256)}

    def __init__(
        self,
        sizes: tuple[int, ...] = (128, 256),
        models: list[CnnModel] | None = None,
        technology: TechnologyModel | None = None,
        backend: ExecutionBackend | str | None = None,
    ):
        self.sizes = sizes
        self.models = models or list(model_zoo().values())
        self.technology = technology or TechnologyModel.default_28nm()
        self.backend = create_backend(backend, default="batched")

    def run(self) -> Fig8Result:
        entries = []
        for size in self.sizes:
            config = ArrayFlexConfig(rows=size, cols=size, technology=self.technology)
            for model in self.models:
                arrayflex = self.backend.schedule_model(model, config)
                conventional = self.backend.schedule_model_conventional(model, config)
                entries.append(
                    Fig8Entry(
                        rows=size,
                        cols=size,
                        model_name=model.name,
                        conventional_time_ms=conventional.total_time_ms,
                        arrayflex_time_ms=arrayflex.total_time_ms,
                        latency_saving=(
                            1.0 - arrayflex.total_time_ns / conventional.total_time_ns
                        ),
                        depth_histogram=arrayflex.depth_histogram(),
                    )
                )
        return Fig8Result(entries=entries)

    def render(self, result: Fig8Result | None = None) -> str:
        result = result or self.run()
        blocks = []
        for size in self.sizes:
            entries = result.by_size(size)
            reference = max(entry.conventional_time_ms for entry in entries)
            rows = [
                (
                    entry.model_name,
                    entry.conventional_time_ms,
                    entry.arrayflex_time_ms,
                    entry.conventional_time_ms / reference,
                    entry.arrayflex_time_ms / reference,
                    format_percent(entry.latency_saving),
                    str(entry.depth_histogram),
                )
                for entry in entries
            ]
            blocks.append(
                format_table(
                    [
                        "model",
                        "conventional (ms)",
                        "ArrayFlex (ms)",
                        "conv (norm)",
                        "AF (norm)",
                        "saving",
                        "layers per k",
                    ],
                    rows,
                    title=f"Fig. 8 -- total execution time, {size}x{size} SAs",
                )
            )
        return "\n\n".join(blocks)


# ---------------------------------------------------------------------- #
# Fig. 9 -- average power and EDP
# ---------------------------------------------------------------------- #
@dataclass
class Fig9Entry:
    rows: int
    cols: int
    model_name: str
    conventional_power_mw: float
    arrayflex_power_mw: float
    power_saving: float
    edp_gain: float
    mode_power_mw: dict[int, float] = field(default_factory=dict)
    mode_time_share: dict[int, float] = field(default_factory=dict)


@dataclass
class Fig9Result:
    entries: list[Fig9Entry]

    def by_size(self, rows: int) -> list[Fig9Entry]:
        return [entry for entry in self.entries if entry.rows == rows]

    def power_saving_range(self, rows: int) -> tuple[float, float]:
        savings = [entry.power_saving for entry in self.by_size(rows)]
        return min(savings), max(savings)

    def edp_range(self) -> tuple[float, float]:
        gains = [entry.edp_gain for entry in self.entries]
        return min(gains), max(gains)


class Fig9Experiment:
    """Fig. 9: average power of both SAs over complete CNN runs.

    The paper reports power savings of 13%-15% for 128x128 arrays and
    17%-23% for 256x256 arrays, for a combined 1.4x-1.8x energy-delay
    product advantage.  SRAM and peripheral power is excluded, as in the
    paper.
    """

    experiment_id = "fig9"
    paper_reference = {
        "power_saving_128": (0.13, 0.15),
        "power_saving_256": (0.17, 0.23),
        "edp_gain_range": (1.4, 1.8),
    }

    def __init__(
        self,
        sizes: tuple[int, ...] = (128, 256),
        models: list[CnnModel] | None = None,
        technology: TechnologyModel | None = None,
        backend: ExecutionBackend | str | None = None,
    ):
        self.sizes = sizes
        self.models = models or list(model_zoo().values())
        self.technology = technology or TechnologyModel.default_28nm()
        self.backend = create_backend(backend, default="batched")

    def run(self) -> Fig9Result:
        entries = []
        for size in self.sizes:
            config = ArrayFlexConfig(rows=size, cols=size, technology=self.technology)
            accel = ArrayFlexAccelerator(config=config, backend=self.backend)
            for model in self.models:
                comparison: ComparisonReport = accel.compare_with_conventional(model)
                arrayflex = comparison.arrayflex
                mode_power = {
                    depth: accel.energy.arrayflex_power_mw(
                        depth, accel.clock.frequency_ghz(depth)
                    )
                    for depth in config.sorted_depths()
                }
                entries.append(
                    Fig9Entry(
                        rows=size,
                        cols=size,
                        model_name=model.name,
                        conventional_power_mw=comparison.conventional.average_power_mw,
                        arrayflex_power_mw=arrayflex.average_power_mw,
                        power_saving=comparison.power_saving,
                        edp_gain=comparison.edp_gain,
                        mode_power_mw=mode_power,
                        mode_time_share=arrayflex.time_share_by_depth(),
                    )
                )
        return Fig9Result(entries=entries)

    def render(self, result: Fig9Result | None = None) -> str:
        result = result or self.run()
        blocks = []
        for size in self.sizes:
            rows = []
            for entry in result.by_size(size):
                shares = ", ".join(
                    f"k={depth}: {format_percent(share)}"
                    for depth, share in sorted(entry.mode_time_share.items())
                )
                rows.append(
                    (
                        entry.model_name,
                        entry.conventional_power_mw / 1000.0,
                        entry.arrayflex_power_mw / 1000.0,
                        format_percent(entry.power_saving),
                        format_ratio(entry.edp_gain),
                        shares,
                    )
                )
            blocks.append(
                format_table(
                    [
                        "model",
                        "conventional (W)",
                        "ArrayFlex (W)",
                        "power saving",
                        "EDP gain",
                        "time share per mode",
                    ],
                    rows,
                    title=f"Fig. 9 -- average power, {size}x{size} SAs",
                )
            )
        return "\n\n".join(blocks)


# ---------------------------------------------------------------------- #
# Beyond the paper: the transformer workload suite
# ---------------------------------------------------------------------- #
@dataclass
class TransformerSuiteEntry:
    rows: int
    cols: int
    workload_name: str
    phase: str
    num_gemms: int
    conventional_time_ms: float
    arrayflex_time_ms: float
    latency_saving: float
    edp_gain: float
    depth_histogram: dict[int, int] = field(default_factory=dict)


@dataclass
class TransformerSuiteResult:
    entries: list[TransformerSuiteEntry]

    def by_size(self, rows: int) -> list[TransformerSuiteEntry]:
        return [entry for entry in self.entries if entry.rows == rows]

    def savings_range(self) -> tuple[float, float]:
        savings = [entry.latency_saving for entry in self.entries]
        return min(savings), max(savings)


class TransformerSuiteExperiment:
    """Transformer counterpart of the Fig. 8/9 paper-suite tables.

    Not a paper figure: the paper evaluates CNNs only, but its per-layer
    mode decision is defined on raw GEMM shapes, so the same machinery
    schedules transformer traces unchanged.  This experiment runs the
    ``transformers`` registry suite — BERT-Base and ViT-B/16 prefill,
    GPT-2-style decode — against the conventional fixed-pipeline baseline
    on the paper's two array sizes.  Decode (T = batch) lives deep in the
    small-T regime where collapsed modes pay off most; prefill
    (T = batch x seq) behaves like a mid-size CNN layer.
    """

    experiment_id = "transformers"
    paper_reference = {
        "claim": (
            "beyond the paper: Eq. (6) decisions on raw GEMM shapes extend to "
            "transformer attention/MLP traces"
        )
    }

    def __init__(
        self,
        sizes: tuple[int, ...] = (128, 256),
        workloads: list | None = None,
        batch: int = 1,
        technology: TechnologyModel | None = None,
        backend: ExecutionBackend | str | None = None,
    ):
        from repro.workloads import get_suite

        self.sizes = sizes
        self.workloads = (
            workloads if workloads is not None else get_suite("transformers", batch=batch)
        )
        self.technology = technology or TechnologyModel.default_28nm()
        self.backend = create_backend(backend, default="batched")

    def run(self) -> TransformerSuiteResult:
        entries = []
        for size in self.sizes:
            config = ArrayFlexConfig(rows=size, cols=size, technology=self.technology)
            for workload in self.workloads:
                arrayflex = self.backend.schedule_model(workload, config)
                conventional = self.backend.schedule_model_conventional(workload, config)
                entries.append(
                    TransformerSuiteEntry(
                        rows=size,
                        cols=size,
                        workload_name=workload.name,
                        phase=getattr(workload, "phase", "-"),
                        num_gemms=len(arrayflex.layers),
                        conventional_time_ms=conventional.total_time_ms,
                        arrayflex_time_ms=arrayflex.total_time_ms,
                        latency_saving=(
                            1.0 - arrayflex.total_time_ns / conventional.total_time_ns
                        ),
                        edp_gain=(
                            conventional.energy_delay_product
                            / arrayflex.energy_delay_product
                        ),
                        depth_histogram=arrayflex.depth_histogram(),
                    )
                )
        return TransformerSuiteResult(entries=entries)

    def render(self, result: TransformerSuiteResult | None = None) -> str:
        result = result or self.run()
        blocks = []
        for size in self.sizes:
            rows = [
                (
                    entry.workload_name,
                    entry.phase,
                    entry.num_gemms,
                    entry.conventional_time_ms,
                    entry.arrayflex_time_ms,
                    format_percent(entry.latency_saving),
                    format_ratio(entry.edp_gain),
                    str(dict(sorted(entry.depth_histogram.items()))),
                )
                for entry in result.by_size(size)
            ]
            blocks.append(
                format_table(
                    [
                        "workload",
                        "phase",
                        "GEMMs",
                        "conventional (ms)",
                        "ArrayFlex (ms)",
                        "saving",
                        "EDP gain",
                        "layers per k",
                    ],
                    rows,
                    title=(
                        f"Transformer suite -- total execution time, {size}x{size} SAs"
                    ),
                )
            )
        return "\n\n".join(blocks)


# ---------------------------------------------------------------------- #
# Beyond the paper: activity-model sensitivity of the energy results
# ---------------------------------------------------------------------- #
@dataclass
class ActivitySensitivityEntry:
    workload_name: str
    rows: int
    cols: int
    average_utilization: float
    constant_energy_nj: float
    utilization_energy_nj: float
    constant_edp_gain: float
    utilization_edp_gain: float

    @property
    def energy_reduction(self) -> float:
        """Fractional ArrayFlex *total*-energy reduction from derating.

        Totals include the activity-invariant clock-tree and leakage
        energy, so this understates the datapath-only reduction (for the
        per-component figure see ``LayerMetrics.datapath_energy_nj``).
        """
        return 1.0 - self.utilization_energy_nj / self.constant_energy_nj


@dataclass
class ActivitySensitivityResult:
    entries: list[ActivitySensitivityEntry]

    def by_size(self, rows: int) -> list[ActivitySensitivityEntry]:
        return [entry for entry in self.entries if entry.rows == rows]


class ActivitySensitivityExperiment:
    """How sensitive are the Fig. 9-style energy results to the activity model?

    Not a paper figure: the paper prices every PE as busy every cycle
    (``activity = 1.0``).  The :class:`~repro.core.activity.
    UtilizationActivity` model instead derates each layer's datapath
    energy by its occupied-PE tiling fraction — edge tiles underfill the
    R x C array — which lowers absolute energies without touching any
    timing number.  This experiment runs the paper's CNN suite (plus the
    transformer workloads) under both models and tabulates the average
    utilization, the ArrayFlex energy under each model and the EDP gain
    shift, quantifying how much headroom the constant-activity assumption
    leaves on the table per workload.
    """

    experiment_id = "activity"
    paper_reference = {
        "claim": (
            "beyond the paper: the paper's activity=1.0 assumption is the "
            "upper bound; tiling-utilization derating lowers datapath energy "
            "on every layer that does not tile the array exactly"
        )
    }

    def __init__(
        self,
        sizes: tuple[int, ...] = (128, 256),
        workloads: list | None = None,
        technology: TechnologyModel | None = None,
        backend: ExecutionBackend | str | None = None,
    ):
        if workloads is None:
            from repro.workloads import get_suite

            workloads = list(model_zoo().values()) + list(get_suite("transformers"))
        self.sizes = sizes
        self.workloads = workloads
        self.technology = technology or TechnologyModel.default_28nm()
        self.backend = create_backend(backend, default="batched")

    def run(self) -> ActivitySensitivityResult:
        """Tabulate both activity models at every size via an ablation study.

        Declared on the :class:`~repro.eval.ablation.AblationStudy`
        engine: the activity model and the array geometry are the two
        components, ``pairwise=True`` fills in the full (model x size)
        grid, and ``conventional=True`` pairs every run with its
        fixed-pipeline baseline.  The entries (and the rendered tables)
        are bit-identical to the pre-engine hand-written loop — same
        backend calls, same schedules, same division order.
        """
        from repro.eval.ablation import AblationStudy, Component

        base = self.sizes[0]
        components = [Component("activity_model", "constant", ("utilization",))]
        if len(self.sizes) > 1:
            components.append(
                Component(
                    "geometry",
                    (base, base),
                    tuple((size, size) for size in self.sizes[1:]),
                )
            )
        study = AblationStudy(
            components=components,
            fixed={
                "backend": self.backend,
                "workloads": tuple(self.workloads),
                "technology": self.technology,
            },
            pairwise=True,
            totals_only=False,
            conventional=True,
        )
        outcome = study.run()
        by_key = {
            (
                run.settings["activity_model"],
                run.settings["geometry"],
            ): run
            for run in outcome.runs
        }
        entries = []
        for size in self.sizes:
            constant_run = by_key[("constant", (size, size))]
            derated_run = by_key[("utilization", (size, size))]
            for index in range(len(self.workloads)):
                constant = constant_run.workloads[index].result
                derated = derated_run.workloads[index].result
                constant_conv = constant_run.workloads[index].conventional
                derated_conv = derated_run.workloads[index].conventional
                entries.append(
                    ActivitySensitivityEntry(
                        workload_name=constant.model_name,
                        rows=size,
                        cols=size,
                        average_utilization=derated.average_utilization(),
                        constant_energy_nj=constant.total_energy_nj,
                        utilization_energy_nj=derated.total_energy_nj,
                        constant_edp_gain=(
                            constant_conv.energy_delay_product
                            / constant.energy_delay_product
                        ),
                        utilization_edp_gain=(
                            derated_conv.energy_delay_product
                            / derated.energy_delay_product
                        ),
                    )
                )
        return ActivitySensitivityResult(entries=entries)

    def render(self, result: ActivitySensitivityResult | None = None) -> str:
        result = result or self.run()
        blocks = []
        for size in self.sizes:
            rows = [
                (
                    entry.workload_name,
                    format_percent(entry.average_utilization),
                    entry.constant_energy_nj / 1000.0,
                    entry.utilization_energy_nj / 1000.0,
                    format_percent(entry.energy_reduction),
                    format_ratio(entry.constant_edp_gain),
                    format_ratio(entry.utilization_edp_gain),
                )
                for entry in result.by_size(size)
            ]
            blocks.append(
                format_table(
                    [
                        "workload",
                        "avg util",
                        "E const (uJ)",
                        "E util (uJ)",
                        "energy cut",
                        "EDP gain const",
                        "EDP gain util",
                    ],
                    rows,
                    title=(
                        f"Activity sensitivity -- constant vs utilization "
                        f"activity, {size}x{size} SAs"
                    ),
                )
            )
        return "\n\n".join(blocks)


# ---------------------------------------------------------------------- #
# Beyond the paper: sampled-simulation backend accuracy vs exact cycles
# ---------------------------------------------------------------------- #
@dataclass
class SampledAccuracyEntry:
    workload_name: str
    num_gemms: int
    exact_cycles: int
    sampled_cycles: int
    max_rel_error: float
    max_error_bound: float
    simulated_tiles: int
    total_tiles: int
    within_bounds: bool

    @property
    def coverage(self) -> float:
        """Fraction of the workload's tile population actually simulated."""
        if self.total_tiles == 0:
            return 0.0
        return self.simulated_tiles / self.total_tiles


@dataclass
class SampledAccuracyResult:
    entries: list[SampledAccuracyEntry]

    @property
    def all_within_bounds(self) -> bool:
        return all(entry.within_bounds for entry in self.entries)

    @property
    def max_rel_error(self) -> float:
        return max((entry.max_rel_error for entry in self.entries), default=0.0)


class SampledAccuracyExperiment:
    """How accurate is the sampled-simulation backend versus exact cycles?

    Not a paper figure: the ``sampled`` backend estimates each layer's
    cycle count from a seeded stratified sample of its tiles (plus
    calibrated streaming probes) and reports a per-layer relative
    ``error_bound``.  This experiment runs a workload suite through both
    the sampled and the exact cycle-accurate backend and tabulates, per
    workload, the worst per-layer relative error, the worst self-reported
    bound, and the fraction of the tile population the estimator sampled
    (distinct engine runs are fewer still: measurements are shared across
    layers) — the accuracy-for-cost trade the backend exists to make.
    Everything here is deterministic (the sample is seeded), so the table
    regenerates bit-identically.
    """

    experiment_id = "sampled"
    paper_reference = {
        "claim": (
            "beyond the paper: stratified tile sampling with calibrated "
            "streaming probes reproduces exact cycle counts at a small "
            "fraction of the simulated tiles, with per-layer error bounds"
        )
    }

    def __init__(
        self,
        size: int = 32,
        suite: str = "cnn",
        sample_fraction: float = 0.05,
        sample_seed: int = 0,
        technology: TechnologyModel | None = None,
        backend: ExecutionBackend | str | None = None,
    ):
        from repro.backends import CycleAccurateBackend, SampledSimBackend
        from repro.workloads import get_suite

        self.size = size
        self.workloads = get_suite(suite)
        self.technology = technology or TechnologyModel.default_28nm()
        # ``backend`` tunes the *sampled* side (the CLI passes a configured
        # SampledSimBackend through); anything else keeps the defaults.
        resolved = create_backend(backend, default="sampled")
        self.sampled = (
            resolved
            if isinstance(resolved, SampledSimBackend)
            else SampledSimBackend(
                sample_fraction=sample_fraction, sample_seed=sample_seed
            )
        )
        self.exact = CycleAccurateBackend()

    def run(self) -> SampledAccuracyResult:
        config = ArrayFlexConfig(
            rows=self.size, cols=self.size, technology=self.technology
        )
        entries = []
        for workload in self.workloads:
            exact = self.exact.schedule_model(workload, config)
            sampled = self.sampled.schedule_model(workload, config)
            max_rel = 0.0
            max_bound = 0.0
            within = True
            simulated = 0
            total = 0
            for exact_layer, sampled_layer in zip(exact.layers, sampled.layers):
                rel = (
                    abs(sampled_layer.cycles - exact_layer.cycles)
                    / exact_layer.cycles
                )
                bound = sampled_layer.error_bound or 0.0
                max_rel = max(max_rel, rel)
                max_bound = max(max_bound, bound)
                within = within and rel <= bound + 1e-12
                estimate = self.sampled.layer_estimate(sampled_layer.gemm, config)
                simulated += estimate.simulated_tiles
                total += estimate.total_tiles
            entries.append(
                SampledAccuracyEntry(
                    workload_name=exact.model_name,
                    num_gemms=len(exact.layers),
                    exact_cycles=exact.total_cycles,
                    sampled_cycles=sampled.total_cycles,
                    max_rel_error=max_rel,
                    max_error_bound=max_bound,
                    simulated_tiles=simulated,
                    total_tiles=total,
                    within_bounds=within,
                )
            )
        return SampledAccuracyResult(entries=entries)

    def render(self, result: SampledAccuracyResult | None = None) -> str:
        result = result or self.run()
        rows = [
            (
                entry.workload_name,
                entry.num_gemms,
                entry.exact_cycles,
                entry.sampled_cycles,
                format_percent(entry.max_rel_error),
                format_percent(entry.max_error_bound),
                f"{entry.simulated_tiles}/{entry.total_tiles}",
                format_percent(entry.coverage),
                "yes" if entry.within_bounds else "NO",
            )
            for entry in result.entries
        ]
        return format_table(
            [
                "workload",
                "GEMMs",
                "exact cycles",
                "sampled cycles",
                "max |err|",
                "max bound",
                "tiles sampled/total",
                "coverage",
                "within bound",
            ],
            rows,
            title=(
                f"Sampled-simulation accuracy vs exact cycles, "
                f"{self.size}x{self.size} SA"
            ),
        )


# ---------------------------------------------------------------------- #
# Eq. (7) -- analytical vs discrete optimum
# ---------------------------------------------------------------------- #
@dataclass
class Eq7Entry:
    gemm: GemmShape
    analytical_depth: float
    analytical_rounded: int
    discrete_best: int
    agree: bool


@dataclass
class Eq7Result:
    entries: list[Eq7Entry]

    @property
    def agreement_rate(self) -> float:
        if not self.entries:
            return 0.0
        return sum(entry.agree for entry in self.entries) / len(self.entries)


class Eq7ValidationExperiment:
    """Eq. (7): does the analytical k_hat predict the discrete optimum?

    The paper notes that "the best pipeline organization per CNN layer is
    approximated fairly accurately (assuming continuous values) by
    Equation (7)"; this experiment quantifies the agreement over the layers
    of the three CNNs plus a synthetic T sweep.
    """

    experiment_id = "eq7"
    paper_reference = {"claim": "Eq. 7 approximates the per-layer optimum fairly accurately"}

    def __init__(
        self,
        rows: int = 128,
        cols: int = 128,
        technology: TechnologyModel | None = None,
        extra_gemms: list[GemmShape] | None = None,
    ):
        self.config = ArrayFlexConfig(
            rows=rows, cols=cols, technology=technology or TechnologyModel.default_28nm()
        )
        self.extra_gemms = extra_gemms or []

    def _candidate_gemms(self) -> list[GemmShape]:
        gemms: list[GemmShape] = []
        for model in model_zoo().values():
            gemms.extend(model.gemms())
        gemms.extend(self.extra_gemms)
        return gemms

    def _round_to_supported(self, k_hat: float) -> int:
        depths = self.config.sorted_depths()
        return min(depths, key=lambda d: (abs(d - k_hat), d))

    def run(self) -> Eq7Result:
        optimizer = PipelineOptimizer(self.config)
        entries = []
        for gemm in self._candidate_gemms():
            decision = optimizer.best_depth(gemm)
            k_hat = decision.analytical_depth
            rounded = self._round_to_supported(k_hat)
            entries.append(
                Eq7Entry(
                    gemm=gemm,
                    analytical_depth=k_hat,
                    analytical_rounded=rounded,
                    discrete_best=decision.collapse_depth,
                    agree=rounded == decision.collapse_depth,
                )
            )
        return Eq7Result(entries=entries)

    def render(self, result: Eq7Result | None = None) -> str:
        result = result or self.run()
        rows = [
            (
                entry.gemm.name,
                entry.gemm.t,
                round(entry.analytical_depth, 2),
                entry.analytical_rounded,
                entry.discrete_best,
                entry.agree,
            )
            for entry in result.entries[:40]
        ]
        table = format_table(
            ["layer", "T", "k_hat", "rounded", "discrete best", "agree"],
            rows,
            title="Eq. 7 -- analytical vs discrete optimal collapse depth (first 40 layers)",
        )
        return table + (
            f"\nagreement over {len(result.entries)} layers: "
            f"{format_percent(result.agreement_rate)}"
        )


# ---------------------------------------------------------------------- #
# Operating points and the STA cross-check
# ---------------------------------------------------------------------- #
@dataclass
class ClockResult:
    conventional_ghz: float
    mode_ghz: dict[int, float]
    eq5_period_ps: dict[int, float]
    sta_period_ps: dict[int, float]


class ClockFrequencyExperiment:
    """Section IV operating points, with Eq. (5) cross-checked against STA."""

    experiment_id = "tab_freq"
    paper_reference = {
        "conventional_ghz": 2.0,
        "k1_ghz": 1.8,
        "k2_ghz": 1.7,
        "k4_ghz": 1.4,
    }

    def __init__(self, technology: TechnologyModel | None = None, kmax: int = 4):
        self.technology = technology or TechnologyModel.default_28nm()
        self.kmax = kmax

    def run(self) -> ClockResult:
        delay_model = DelayModel(self.technology)
        netlist = PipelineBlockNetlist(kmax=self.kmax, technology=self.technology)
        analyzer = StaticTimingAnalyzer(netlist)
        mode_ghz = {}
        eq5 = {}
        sta = {}
        for depth in range(1, self.kmax + 1):
            point = delay_model.arrayflex_operating_point(depth)
            mode_ghz[depth] = point.clock_frequency_ghz
            eq5[depth] = delay_model.clock_period_ps(depth)
            sta[depth] = analyzer.minimum_clock_period_ps(depth)
        return ClockResult(
            conventional_ghz=delay_model.conventional_operating_point().clock_frequency_ghz,
            mode_ghz=mode_ghz,
            eq5_period_ps=eq5,
            sta_period_ps=sta,
        )

    def render(self, result: ClockResult | None = None) -> str:
        result = result or self.run()
        rows = [("conventional", "-", "-", f"{result.conventional_ghz:.1f}")]
        for depth in sorted(result.mode_ghz):
            rows.append(
                (
                    f"ArrayFlex k={depth}",
                    result.eq5_period_ps[depth],
                    result.sta_period_ps[depth],
                    f"{result.mode_ghz[depth]:.1f}",
                )
            )
        return format_table(
            ["design point", "Eq. 5 period (ps)", "STA period (ps)", "clock (GHz)"],
            rows,
            title="Operating points (Section IV) and STA cross-check",
        )


# ---------------------------------------------------------------------- #
# Ablation: pipeline collapsing without the carry-save adders
# ---------------------------------------------------------------------- #
@dataclass
class CsaAblationEntry:
    collapse_depth: int
    period_with_csa_ps: float
    period_without_csa_ps: float
    model_saving_with_csa: float
    model_saving_without_csa: float


@dataclass
class CsaAblationResult:
    entries: list[CsaAblationEntry]
    model_name: str


class CsaAblationExperiment:
    """What pipeline collapsing would cost without the 3:2 carry-save adders.

    Section III-B argues that chaining k carry-propagate adders would make
    the clock degradation prohibitive; this ablation quantifies it by
    re-running the ConvNeXt comparison with the no-CSA clock model
    (k serial CPAs on the critical path).
    """

    experiment_id = "abl_csa"
    paper_reference = {
        "claim": "carry-save adders keep the clock degradation small (Section III-B)"
    }

    def __init__(
        self,
        model: CnnModel | None = None,
        rows: int = 128,
        cols: int = 128,
        technology: TechnologyModel | None = None,
    ):
        self.model = model or convnext_tiny()
        self.technology = technology or TechnologyModel.default_28nm()
        self.config = ArrayFlexConfig(rows=rows, cols=cols, technology=self.technology)

    def run(self) -> CsaAblationResult:
        delay_model = DelayModel(self.technology)
        scheduler = Scheduler(self.config)
        latency = LatencyModel(self.config)
        conventional = scheduler.schedule_model_conventional(self.model)
        arrayflex = scheduler.schedule_model_arrayflex(self.model)

        entries = []
        for depth in self.config.sorted_depths():
            with_csa = delay_model.clock_period_ps(depth)
            without_csa = delay_model.clock_period_ps_without_csa(depth)

            # Fixed-depth runs of the whole model under each clock model.
            total_with = 0.0
            total_without = 0.0
            for gemm in self.model.gemms():
                cycles = latency.total_cycles(gemm, depth)
                total_with += cycles * with_csa / 1000.0
                total_without += cycles * without_csa / 1000.0
            conventional_total_ns = conventional.total_time_ns
            entries.append(
                CsaAblationEntry(
                    collapse_depth=depth,
                    period_with_csa_ps=with_csa,
                    period_without_csa_ps=without_csa,
                    model_saving_with_csa=1.0 - total_with / conventional_total_ns,
                    model_saving_without_csa=1.0 - total_without / conventional_total_ns,
                )
            )
        del arrayflex
        return CsaAblationResult(entries=entries, model_name=self.model.name)

    def render(self, result: CsaAblationResult | None = None) -> str:
        result = result or self.run()
        rows = [
            (
                f"k={entry.collapse_depth}",
                entry.period_with_csa_ps,
                entry.period_without_csa_ps,
                format_percent(entry.model_saving_with_csa),
                format_percent(entry.model_saving_without_csa),
            )
            for entry in result.entries
        ]
        return format_table(
            [
                "mode",
                "period w/ CSA (ps)",
                "period w/o CSA (ps)",
                f"{result.model_name} saving w/ CSA",
                "saving w/o CSA",
            ],
            rows,
            title="Ablation -- collapsing with vs without carry-save adders",
        )


# ---------------------------------------------------------------------- #
# Ablation: collapse directions
# ---------------------------------------------------------------------- #
@dataclass
class DirectionAblationEntry:
    collapse_depth: int
    cycles_both: int
    cycles_vertical_only: int
    cycles_horizontal_only: int
    cycles_conventional: int


@dataclass
class DirectionAblationResult:
    entries: list[DirectionAblationEntry]
    gemm: GemmShape
    rows: int
    cols: int


class DirectionAblationExperiment:
    """How much of the cycle reduction comes from each collapse direction.

    The paper collapses both the vertical reduction pipeline and the
    horizontal broadcast; this ablation evaluates each in isolation for a
    representative late-CNN GEMM.
    """

    experiment_id = "abl_dirs"
    paper_reference = {
        "claim": "both directions are collapsed (Section III): R/k and C/k terms"
    }

    def __init__(
        self,
        gemm: GemmShape | None = None,
        rows: int = 128,
        cols: int = 128,
        depths: tuple[int, ...] = (2, 4),
    ):
        # Default: ResNet-34 layer 28, the small-T case where collapsing pays.
        self.gemm = gemm or resnet34().gemm(28)
        self.rows = rows
        self.cols = cols
        self.depths = depths

    def run(self) -> DirectionAblationResult:
        tiles = tile_count(self.gemm.n, self.gemm.m, self.rows, self.cols)
        entries = []
        conventional = arrayflex_tile_cycles(self.rows, self.cols, self.gemm.t, 1) * tiles
        for depth in self.depths:
            entries.append(
                DirectionAblationEntry(
                    collapse_depth=depth,
                    cycles_both=arrayflex_tile_cycles(self.rows, self.cols, self.gemm.t, depth)
                    * tiles,
                    cycles_vertical_only=arrayflex_tile_cycles_vertical_only(
                        self.rows, self.cols, self.gemm.t, depth
                    )
                    * tiles,
                    cycles_horizontal_only=arrayflex_tile_cycles_horizontal_only(
                        self.rows, self.cols, self.gemm.t, depth
                    )
                    * tiles,
                    cycles_conventional=conventional,
                )
            )
        return DirectionAblationResult(
            entries=entries, gemm=self.gemm, rows=self.rows, cols=self.cols
        )

    def render(self, result: DirectionAblationResult | None = None) -> str:
        result = result or self.run()
        rows = []
        for entry in result.entries:
            base = entry.cycles_conventional
            rows.append(
                (
                    f"k={entry.collapse_depth}",
                    entry.cycles_conventional,
                    entry.cycles_vertical_only,
                    entry.cycles_horizontal_only,
                    entry.cycles_both,
                    format_percent(1.0 - entry.cycles_both / base),
                )
            )
        return format_table(
            [
                "mode",
                "normal cycles",
                "vertical-only",
                "horizontal-only",
                "both",
                "cycle reduction (both)",
            ],
            rows,
            title=(
                f"Ablation -- collapse directions for {result.gemm.name} "
                f"(T={result.gemm.t}) on {result.rows}x{result.cols}"
            ),
        )


# ---------------------------------------------------------------------- #
# Beyond the paper: declarative knob-importance study over the design space
# ---------------------------------------------------------------------- #
class AblationExperiment:
    """Which design knob mattered?  The stock declarative ablation study.

    A thin experiment wrapper over :class:`~repro.eval.ablation.
    AblationStudy`: runs the baseline-plus-one-off set of the given (or
    default) study through :class:`~repro.serve.SchedulingService` and
    renders the per-component importance ranking.  Declare a custom
    study for any other "did my knob matter" question; this instance
    exists so the ranking shows up in ``python -m repro experiment
    ablation`` and EXPERIMENTS.md.
    """

    experiment_id = "ablation"
    paper_reference = {
        "claim": (
            "beyond the paper: rank every design knob (activity model, "
            "array geometry, collapse-depth set) by the latency/energy/EDP "
            "delta its one-off flip causes against the paper baseline"
        )
    }

    def __init__(self, study=None, backend: ExecutionBackend | str | None = None):
        from repro.eval.ablation import default_study

        if study is None:
            study = default_study(
                backend=create_backend(backend, default="batched")
            )
        self.study = study

    def run(self):
        return self.study.run()

    def render(self, result=None) -> str:
        result = result or self.run()
        return result.render()


# ---------------------------------------------------------------------- #
def all_experiments() -> list[object]:
    """Default instances of every experiment (used by docs and smoke tests)."""
    return [
        Fig5Experiment(layer_index=20),
        Fig5Experiment(layer_index=28),
        Fig6Experiment(),
        Fig7Experiment(),
        Fig8Experiment(),
        Fig9Experiment(),
        TransformerSuiteExperiment(),
        ActivitySensitivityExperiment(),
        AblationExperiment(),
        Eq7ValidationExperiment(),
        ClockFrequencyExperiment(),
        CsaAblationExperiment(),
        DirectionAblationExperiment(),
    ]
