"""Generator of the measured-vs-paper report (EXPERIMENTS.md).

``EXPERIMENTS.md`` records, for every table and figure of the paper's
evaluation, what the paper reports and what this reproduction measures.
Because every number comes from the experiment harness, the document can be
regenerated at any time with::

    python examples/generate_experiments_report.py

which calls :func:`generate_experiments_markdown` and overwrites the file.
"""

from __future__ import annotations

from repro.eval.experiments import (
    ClockFrequencyExperiment,
    CsaAblationExperiment,
    DirectionAblationExperiment,
    Eq7ValidationExperiment,
    Fig5Experiment,
    Fig6Experiment,
    Fig7Experiment,
    Fig8Experiment,
    Fig9Experiment,
    TransformerSuiteExperiment,
)
from repro.eval.report import format_percent, format_ratio


def _fig5_section() -> list[str]:
    lines = ["## Fig. 5 — execution time vs collapse depth (132x132 SA)", ""]
    for layer_index, paper_best in ((20, 2), (28, 4)):
        experiment = Fig5Experiment(layer_index=layer_index)
        result = experiment.run()
        lines.append(
            f"* **Layer {layer_index}** (M, N, T) = {result.gemm.as_tuple()}: "
            f"paper minimum at k = {paper_best}; measured minimum at "
            f"k = {result.best_depth} "
            f"({format_percent(result.best_saving)} faster than the conventional SA)."
        )
        lines.append("")
        lines.append("```")
        lines.append(experiment.render(result))
        lines.append("```")
        lines.append("")
    return lines


def _fig6_section() -> list[str]:
    experiment = Fig6Experiment()
    result = experiment.run()
    return [
        "## Fig. 6 — PE area overhead of reconfigurability",
        "",
        f"* Paper: ~16% per-PE overhead. Measured: "
        f"{format_percent(result.pe_overhead)} "
        f"(structural gate-count share {format_percent(result.structural_overhead)}, "
        "the rest calibrated layout/clock-gating/config-distribution overhead).",
        "",
        "```",
        experiment.render(result),
        "```",
        "",
    ]


def _fig7_section() -> list[str]:
    experiment = Fig7Experiment()
    result = experiment.run()
    shallow = result.shallow_layer_savings()
    histogram = result.arrayflex.depth_histogram()
    return [
        "## Fig. 7 — per-layer execution time of ConvNeXt (128x128 SA)",
        "",
        f"* Paper: total saving ~11%, per-layer savings 1.5%–26%, early layers at "
        "k = 1, middle layers at k = 2, late layers at k = 4.",
        f"* Measured: total saving {format_percent(result.total_saving)}; shallow-layer "
        f"savings {format_percent(min(shallow))}–{format_percent(max(shallow))}; "
        f"layers per mode {dict(sorted(histogram.items()))} "
        "(early layers select k = 1, the last stage selects k = 4).",
        "",
        "The per-layer table is long; regenerate it with "
        "`python examples/convnext_per_layer.py`.",
        "",
    ]


def _fig8_section() -> list[str]:
    experiment = Fig8Experiment(sizes=(128, 256))
    result = experiment.run()
    lines = [
        "## Fig. 8 — total execution time of ResNet-34 / MobileNetV1 / ConvNeXt-T",
        "",
        "* Paper: ArrayFlex lowers end-to-end latency by 9%–11%, with larger savings "
        "on the larger array.",
        "",
        "| array | model | conventional (ms) | ArrayFlex (ms) | measured saving |",
        "|---|---|---|---|---|",
    ]
    for entry in result.entries:
        lines.append(
            f"| {entry.rows}x{entry.cols} | {entry.model_name} | "
            f"{entry.conventional_time_ms:.3f} | {entry.arrayflex_time_ms:.3f} | "
            f"{format_percent(entry.latency_saving)} |"
        )
    low, high = result.savings_range()
    lines += [
        "",
        f"Measured savings range: {format_percent(low)}–{format_percent(high)}.",
        "",
    ]
    return lines


def _fig9_section() -> list[str]:
    experiment = Fig9Experiment(sizes=(128, 256))
    result = experiment.run()
    lines = [
        "## Fig. 9 — average power and energy-delay product",
        "",
        "* Paper: power savings of 13%–15% (128x128) and 17%–23% (256x256); EDP gain "
        "1.4x–1.8x; ArrayFlex consumes slightly more power than the conventional SA "
        "when both run the normal pipeline.",
        "",
        "| array | model | conventional (W) | ArrayFlex (W) | power saving | EDP gain |",
        "|---|---|---|---|---|---|",
    ]
    for entry in result.entries:
        lines.append(
            f"| {entry.rows}x{entry.cols} | {entry.model_name} | "
            f"{entry.conventional_power_mw / 1000:.1f} | "
            f"{entry.arrayflex_power_mw / 1000:.1f} | "
            f"{format_percent(entry.power_saving)} | {format_ratio(entry.edp_gain)} |"
        )
    for size in (128, 256):
        low, high = result.power_saving_range(size)
        lines.append("")
        lines.append(
            f"Measured {size}x{size} power savings: "
            f"{format_percent(low)}–{format_percent(high)}."
        )
    edp_low, edp_high = result.edp_range()
    lines += [
        "",
        f"Measured EDP gains: {format_ratio(edp_low)}–{format_ratio(edp_high)}.",
        "",
    ]
    return lines


def _transformer_section() -> list[str]:
    experiment = TransformerSuiteExperiment(sizes=(128, 256))
    result = experiment.run()
    lines = [
        "## Beyond the paper — transformer workloads",
        "",
        "* The paper evaluates CNNs only, but its per-layer mode decision is "
        "defined on raw GEMM shapes; the `transformers` registry suite "
        "(BERT-Base prefill, ViT-B/16, GPT-2-style decode) runs through the "
        "same backends unchanged.  Decode streams T = batch rows — the "
        "small-T regime where deep collapse modes pay off most.",
        "",
        "| array | workload | phase | conventional (ms) | ArrayFlex (ms) | measured saving |",
        "|---|---|---|---|---|---|",
    ]
    for entry in result.entries:
        lines.append(
            f"| {entry.rows}x{entry.cols} | {entry.workload_name} | {entry.phase} | "
            f"{entry.conventional_time_ms:.3f} | {entry.arrayflex_time_ms:.3f} | "
            f"{format_percent(entry.latency_saving)} |"
        )
    low, high = result.savings_range()
    lines += [
        "",
        f"Measured savings range: {format_percent(low)}–{format_percent(high)} "
        "(largest for decode, as the fill/drain analysis predicts).",
        "",
    ]
    return lines


def _activity_section() -> list[str]:
    from repro.eval.experiments import ActivitySensitivityExperiment

    experiment = ActivitySensitivityExperiment(sizes=(128, 256))
    result = experiment.run()
    lines = [
        "## Beyond the paper — activity-model sensitivity",
        "",
        "* The paper prices every PE as busy every cycle (`activity = 1.0`); "
        "that stays the default here and all tables above use it.  The "
        "`utilization` activity model (`--activity-model utilization`) instead "
        "derates each layer's datapath energy by its occupied-PE tiling "
        "fraction — edge tiles underfill the R x C array — leaving timing "
        "untouched.  The table quantifies how much energy headroom the "
        "constant-activity assumption leaves per workload.",
        "",
        "| array | workload | avg utilization | E constant (uJ) | E utilization (uJ) | energy cut | EDP gain (const → util) |",
        "|---|---|---|---|---|---|---|",
    ]
    for entry in result.entries:
        lines.append(
            f"| {entry.rows}x{entry.cols} | {entry.workload_name} | "
            f"{format_percent(entry.average_utilization)} | "
            f"{entry.constant_energy_nj / 1000.0:.1f} | "
            f"{entry.utilization_energy_nj / 1000.0:.1f} | "
            f"{format_percent(entry.energy_reduction)} | "
            f"{format_ratio(entry.constant_edp_gain)} → "
            f"{format_ratio(entry.utilization_edp_gain)} |"
        )
    lines += [
        "",
        "Workloads whose GEMMs tile the array exactly (utilization 100%) are "
        "bit-identical under both models; everything else gets strictly cheaper "
        "datapath energy, most visibly on the 256x256 array where edge tiles "
        "dominate small layers.",
        "",
    ]
    return lines


def _sampled_section() -> list[str]:
    from repro.eval.experiments import SampledAccuracyExperiment

    experiment = SampledAccuracyExperiment()
    result = experiment.run()
    lines = [
        "## Beyond the paper — sampled vs cycle backend accuracy",
        "",
        "* The `sampled` backend estimates per-layer cycle counts from a "
        "seeded stratified sample of each layer's tiles (plus calibrated "
        "streaming probes along T) instead of simulating tiles in full, and "
        "reports a per-layer relative `error_bound`.  The table compares it "
        "against the exact `cycle` backend on the CNN suite "
        f"({experiment.size}x{experiment.size} SA, sample fraction "
        f"{experiment.sampled.sample_fraction}, seed "
        f"{experiment.sampled.sample_seed}); the sample is deterministic, so "
        "these numbers regenerate bit-identically.",
        "",
        "| workload | GEMMs | exact cycles | sampled cycles | max layer error | max bound | tiles sampled | within bound |",
        "|---|---|---|---|---|---|---|---|",
    ]
    for entry in result.entries:
        lines.append(
            f"| {entry.workload_name} | {entry.num_gemms} | "
            f"{entry.exact_cycles} | {entry.sampled_cycles} | "
            f"{format_percent(entry.max_rel_error)} | "
            f"{format_percent(entry.max_error_bound)} | "
            f"{entry.simulated_tiles}/{entry.total_tiles} "
            f"({format_percent(entry.coverage)}) | "
            f"{'yes' if entry.within_bounds else 'NO'} |"
        )
    lines += [
        "",
        "Every layer estimate lands within its self-reported bound (the "
        "engine's tile latency is content-independent, so the stratified "
        "estimates are exact in practice while sampling ~5% of the tile "
        "population); `benchmarks/test_bench_sampled.py` additionally pins "
        "the >=5x speedup over the cycle backend on the batched CNN suite.",
        "",
    ]
    return lines


def _eq7_section() -> list[str]:
    result = Eq7ValidationExperiment().run()
    return [
        "## Eq. (7) — analytical vs discrete optimal collapse depth",
        "",
        "* Paper: the closed form approximates the per-layer optimum "
        "\"fairly accurately\".",
        f"* Measured: rounding k̂ to the supported mode set matches the discrete "
        f"argmin for {format_percent(result.agreement_rate)} of the "
        f"{len(result.entries)} layers of the three CNNs (128x128 SA).",
        "",
    ]


def _clock_section() -> list[str]:
    result = ClockFrequencyExperiment().run()
    return [
        "## Operating points (Section IV) and STA cross-check",
        "",
        "| design point | paper (GHz) | measured (GHz) | Eq. 5 period (ps) | STA period (ps) |",
        "|---|---|---|---|---|",
        f"| conventional | 2.0 | {result.conventional_ghz:.1f} | — | — |",
        f"| ArrayFlex k=1 | 1.8 | {result.mode_ghz[1]:.1f} | "
        f"{result.eq5_period_ps[1]:.0f} | {result.sta_period_ps[1]:.0f} |",
        f"| ArrayFlex k=2 | 1.7 | {result.mode_ghz[2]:.1f} | "
        f"{result.eq5_period_ps[2]:.0f} | {result.sta_period_ps[2]:.0f} |",
        f"| ArrayFlex k=4 | 1.4 | {result.mode_ghz[4]:.1f} | "
        f"{result.eq5_period_ps[4]:.0f} | {result.sta_period_ps[4]:.0f} |",
        "",
    ]


def _ablation_section() -> list[str]:
    csa = CsaAblationExperiment().run()
    directions = DirectionAblationExperiment().run()
    lines = [
        "## Ablations",
        "",
        "### Collapsing without the carry-save adders (Section III-B)",
        "",
        "| mode | period w/ CSA (ps) | period w/o CSA (ps) | ConvNeXt saving w/ CSA | w/o CSA |",
        "|---|---|---|---|---|",
    ]
    for entry in csa.entries:
        lines.append(
            f"| k={entry.collapse_depth} | {entry.period_with_csa_ps:.0f} | "
            f"{entry.period_without_csa_ps:.0f} | "
            f"{format_percent(entry.model_saving_with_csa)} | "
            f"{format_percent(entry.model_saving_without_csa)} |"
        )
    lines += [
        "",
        "Without the 3:2 carry-save stage, the deeper collapse modes slow the clock so "
        "much that the end-to-end savings disappear — the mechanism the paper's PE "
        "design exists to avoid.",
        "",
        "### Collapse directions",
        "",
        "| mode | normal cycles | vertical-only | horizontal-only | both |",
        "|---|---|---|---|---|",
    ]
    for entry in directions.entries:
        lines.append(
            f"| k={entry.collapse_depth} | {entry.cycles_conventional} | "
            f"{entry.cycles_vertical_only} | {entry.cycles_horizontal_only} | "
            f"{entry.cycles_both} |"
        )
    lines.append("")
    return lines


def _importance_section() -> list[str]:
    from repro.eval.ablation import _format_delta, default_study, format_value

    study = default_study()
    result = study.run()
    lines = [
        "## Which knob mattered — design-space importance",
        "",
        "* The declarative ablation harness (`python -m repro ablate`, "
        "`docs/ablation.md`) flips one design knob at a time off a pinned "
        "baseline and ranks each component by its worst-case EDP delta; a "
        "delta only counts as *significant* when it clears the combined "
        "sampling error bound of the two runs it compares (zero-width for "
        "the exact backends used here).  Baseline: the paper's "
        f"{format_value('geometry', study.baseline_settings()['geometry'])} "
        "array, constant activity, depth menu "
        f"{format_value('depths', study.baseline_settings()['depths'])}, "
        "CNN suite, batched backend.",
        "",
        "| rank | component | flip | EDP delta | latency delta | energy delta | significant |",
        "|---|---|---|---|---|---|---|",
    ]
    for entry in result.ranking:
        driver = entry.driver
        if driver is None:
            lines.append(f"| {entry.rank} | {entry.component} | — | — | — | — | no |")
            continue
        lines.append(
            f"| {entry.rank} | {entry.component} | {driver.run_id} | "
            f"{_format_delta(driver.deltas['edp'])} | "
            f"{_format_delta(driver.deltas['latency'])} | "
            f"{_format_delta(driver.deltas['energy'])} | "
            f"{'yes' if entry.significant(study.metric) else 'no'} |"
        )
    lines += [
        "",
        "The ranking is deterministic (same study + seed → the same table, "
        "whatever the executor or submission order) and regenerates with "
        "`python -m repro experiment ablation` or `python -m repro ablate`.",
        "",
    ]
    return lines


def generate_experiments_markdown() -> str:
    """Build the full EXPERIMENTS.md content from the experiment harness."""
    header = [
        "# EXPERIMENTS — paper vs measured",
        "",
        "Reproduction of the evaluation of *ArrayFlex: A Systolic Array Architecture "
        "with Configurable Transparent Pipelining* (DATE 2023).  Every number below "
        "is produced by the experiment harness in `repro.eval`; regenerate this file "
        "with `python examples/generate_experiments_report.py`.",
        "",
        "Absolute times and powers are not expected to match the authors' 28 nm "
        "implementation (the substrate here is a calibrated analytical + cycle-level "
        "model, see DESIGN.md); the comparisons below check that the *shape* of every "
        "result holds: who wins, by roughly what factor, and where the crossovers "
        "fall.",
        "",
    ]
    sections = (
        header
        + _clock_section()
        + _fig5_section()
        + _fig6_section()
        + _fig7_section()
        + _fig8_section()
        + _fig9_section()
        + _transformer_section()
        + _activity_section()
        + _sampled_section()
        + _eq7_section()
        + _ablation_section()
        + _importance_section()
    )
    return "\n".join(sections).rstrip() + "\n"


def write_experiments_markdown(path: str) -> str:
    """Generate and write EXPERIMENTS.md; returns the content written."""
    content = generate_experiments_markdown()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content)
    return content
