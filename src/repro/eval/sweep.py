"""Parameter-sweep utilities shared by experiments and benchmarks."""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.backends import ExecutionBackend, attach_store, create_backend
from repro.core.config import ArrayFlexConfig
from repro.core.clock import ClockModel
from repro.core.latency import LatencyModel
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import CnnModel


@dataclass(frozen=True)
class DepthSweepPoint:
    """Execution metrics of one GEMM at one collapse depth."""

    collapse_depth: int
    cycles: int
    clock_frequency_ghz: float
    execution_time_us: float


def collapse_depth_sweep(
    gemm: GemmShape,
    config: ArrayFlexConfig,
    depths: tuple[int, ...] | None = None,
) -> list[DepthSweepPoint]:
    """Execution time of one GEMM across collapse depths (Fig. 5 style).

    Depths outside the configuration's supported set are evaluated with the
    discrete (rounded) operating frequency derived from the continuous
    Eq. (5) model, exactly how the paper's Fig. 5 explores k = 3 even though
    the shipped design only supports {1, 2, 4}.
    """
    latency = LatencyModel(config)
    clock = ClockModel(config)
    plane = config.configuration_plane()
    chosen = depths or tuple(sorted(config.supported_depths))
    points = []
    for depth in chosen:
        if not plane.is_legal_depth(depth):
            raise ValueError(
                f"collapse depth {depth} is illegal for a "
                f"{config.rows}x{config.cols} array"
            )
        cycles = latency.total_cycles(gemm, depth)
        if depth in config.supported_depths:
            freq = clock.frequency_ghz(depth)
            period_ns = clock.period_ns(depth)
        else:
            period_exact = clock.delay_model.clock_period_ps(depth)
            freq = clock.delay_model.frequency_ghz(period_exact)
            period_ns = 1.0 / freq
        points.append(
            DepthSweepPoint(
                collapse_depth=depth,
                cycles=cycles,
                clock_frequency_ghz=freq,
                execution_time_us=cycles * period_ns / 1000.0,
            )
        )
    return points


@dataclass(frozen=True)
class SizeSweepPoint:
    """Comparison metrics of one model at one array size."""

    rows: int
    cols: int
    model_name: str
    conventional_time_ms: float
    arrayflex_time_ms: float
    latency_saving: float
    power_saving: float
    edp_gain: float


def array_size_sweep(
    models: list[CnnModel],
    sizes: list[tuple[int, int]],
    base_config: ArrayFlexConfig | None = None,
    backend: ExecutionBackend | str | None = None,
    cache_dir: str | os.PathLike[str] | None = None,
    max_workers: int | None = None,
) -> list[SizeSweepPoint]:
    """Run every model at every array size and collect the savings.

    ``backend`` selects the execution backend; the default is the
    batched/cached backend, which memoises repeated layer shapes across
    the size grid and is numerically identical to the analytical path.
    ``cache_dir`` additionally persists the decisions on disk so a rerun
    sweep starts warm.  The (model, size) grid is routed through the
    batch-serving front-end, which deduplicates repeated requests;
    ``max_workers`` sets its thread fan-out (default: one worker — the
    grid is dominated by cache hits, not compute).
    """
    from repro.obs.trace import get_tracer
    from repro.serve import SchedulingService

    resolved = create_backend(attach_store(backend, cache_dir), default="batched")
    grid = [
        ((base_config or ArrayFlexConfig()).with_size(rows, cols), model)
        for rows, cols in sizes
        for model in models
    ]
    with SchedulingService(
        backend=resolved, executor="thread", max_workers=max_workers or 1
    ) as service, get_tracer().span(
        "sweep.array_size", models=len(models), sizes=len(sizes)
    ):
        pairs = service.compare((model, config) for config, model in grid)
        points = []
        for (config, model), (flex_response, conv_response) in zip(grid, pairs):
            arrayflex = flex_response.unwrap()
            conventional = conv_response.unwrap()
            conventional_power = conventional.average_power_mw
            arrayflex_power = arrayflex.average_power_mw
            points.append(
                SizeSweepPoint(
                    rows=config.rows,
                    cols=config.cols,
                    model_name=model.name,
                    conventional_time_ms=conventional.total_time_ms,
                    arrayflex_time_ms=arrayflex.total_time_ms,
                    latency_saving=1.0 - arrayflex.total_time_ns / conventional.total_time_ns,
                    power_saving=1.0 - arrayflex_power / conventional_power,
                    edp_gain=(
                        conventional.energy_delay_product / arrayflex.energy_delay_product
                    ),
                )
            )
    return points
