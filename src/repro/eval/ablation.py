"""Declarative ablation/importance harness over the design space.

The repo exposes many orthogonal design knobs — execution backend,
activity model, sampling parameters, array geometry, collapse-depth set,
workload suite, batch size — and "which knob mattered" used to be
answered by a hand-written experiment class per question.  This module
turns that into data:

* declare an :class:`AblationStudy` — a list of :class:`Component` knobs,
  each with a baseline value and one or more alternatives, plus fixed
  settings shared by every run;
* the study generates the **baseline-plus-one-off** run set (one run per
  alternative of each component, every other knob at baseline), plus the
  optional pairwise grid for interaction checks;
* the runs fan out through :class:`~repro.serve.SchedulingService`
  (request dedup, thread/process pools, per-run timeouts and ``obs``
  spans for free), grouped by backend identity so a sampled-backend
  variant never shares a service with an exact one;
* per-component **importance** is the largest relative delta any of its
  alternatives causes on each metric (latency / energy / EDP), ranked on
  the study's primary metric, with the sampled backend's ``error_bound``
  propagated into a per-delta significance flag.

The run set, run ids, rankings and JSON payload are deterministic
functions of the declaration: the same study produces the same report
under either executor kind and any submission order.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from repro.backends import SampledSimBackend, create_backend
from repro.core.config import ArrayFlexConfig
from repro.core.metrics import ModelSchedule
from repro.eval.report import format_table
from repro.obs.trace import get_tracer
from repro.serve.protocol import Request, Response
from repro.serve.service import EXECUTORS, SchedulingService

#: Metrics every study scores, in report order.
METRICS = ("latency", "energy", "edp")

#: How many relative error bounds wide a delta must be to count as
#: significant.  Latency is bounded directly; energy inherits the same
#: relative bound (energy = power x time with exactly-priced power); EDP
#: multiplies energy by time, so its relative uncertainty doubles.
_METRIC_BOUND_WEIGHT = {"latency": 1.0, "energy": 1.0, "edp": 2.0}

#: Knobs that tune the sampled backend; any of them set on a run forces
#: (and reconfigures) a :class:`~repro.backends.SampledSimBackend`.
SAMPLED_KNOBS = (
    "sample_fraction",
    "sample_seed",
    "error_target",
    "min_tiles_per_shape",
)

#: Every knob a :class:`Component` (or ``fixed``) may name, with the
#: study-wide baseline used when neither declares it.
DEFAULT_SETTINGS: dict[str, object] = {
    "backend": "batched",
    "activity_model": "constant",
    "technology": None,
    "geometry": (128, 128),
    "depths": (1, 2, 4),
    "suite": "cnn",
    "workloads": None,
    "batch": 1,
    "sample_fraction": None,
    "sample_seed": None,
    "error_target": None,
    "min_tiles_per_shape": None,
}

KNOBS = tuple(DEFAULT_SETTINGS)


def _normalize(name: str, value: object) -> object:
    """Canonicalise one knob value (also accepts the CLI spellings)."""
    if name not in DEFAULT_SETTINGS:
        raise ValueError(f"unknown ablation knob {name!r} (known: {', '.join(KNOBS)})")
    if value is None:
        return None
    if name == "geometry":
        if isinstance(value, str):
            rows, _, cols = value.lower().partition("x")
            try:
                return (int(rows), int(cols))
            except ValueError:
                raise ValueError(
                    f"geometry must look like 128x128, got {value!r}"
                ) from None
        rows, cols = value
        return (int(rows), int(cols))
    if name == "depths":
        if isinstance(value, str):
            parts = value.replace("+", " ").split()
            try:
                return tuple(int(part) for part in parts)
            except ValueError:
                raise ValueError(
                    f"depths must look like 1+2+4, got {value!r}"
                ) from None
        return tuple(int(depth) for depth in value)
    if name in ("batch", "sample_seed", "min_tiles_per_shape"):
        return int(value)
    if name in ("sample_fraction", "error_target"):
        return float(value)
    if name == "workloads":
        if isinstance(value, str):
            return (value,)
        return tuple(value)
    return value


def format_value(name: str, value: object) -> str:
    """The run-id spelling of one knob value (stable across sessions)."""
    if name == "geometry":
        rows, cols = value
        return f"{rows}x{cols}"
    if name == "depths":
        return "+".join(str(depth) for depth in value)
    if name == "workloads":
        return ",".join(
            workload if isinstance(workload, str) else workload.name
            for workload in value
        )
    if name == "backend":
        return value if isinstance(value, str) else value.name
    if name == "activity_model":
        return value if isinstance(value, str) else type(value).__name__
    if name == "technology":
        return getattr(value, "name", None) or type(value).__name__
    return str(value)


@dataclass(frozen=True)
class Component:
    """One ablatable knob: a baseline value and its alternatives."""

    name: str
    baseline: object
    alternatives: tuple = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "baseline", _normalize(self.name, self.baseline))
        alternatives = tuple(
            _normalize(self.name, alternative) for alternative in self.alternatives
        )
        if not alternatives:
            raise ValueError(
                f"component {self.name!r} needs at least one alternative"
            )
        labels = [format_value(self.name, value) for value in alternatives]
        if len(set(labels)) != len(labels):
            raise ValueError(f"component {self.name!r} has duplicate alternatives")
        if format_value(self.name, self.baseline) in labels:
            raise ValueError(
                f"component {self.name!r} lists its baseline as an alternative"
            )
        object.__setattr__(self, "alternatives", alternatives)


@dataclass(frozen=True)
class RunSpec:
    """One generated run: its stable id and the knobs it flips."""

    run_id: str
    overrides: tuple[tuple[str, object], ...] = ()

    @property
    def is_baseline(self) -> bool:
        return not self.overrides

    @property
    def components(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.overrides)


def _override_id(overrides: Sequence[tuple[str, object]]) -> str:
    return "|".join(f"{name}={format_value(name, value)}" for name, value in overrides)


@dataclass
class WorkloadRun:
    """One workload's results inside one run."""

    name: str
    result: ModelSchedule | object | None
    conventional: ModelSchedule | object | None = None
    ok: bool = True


@dataclass
class RunResult:
    """Measured aggregates of one run of the study."""

    spec: RunSpec
    settings: dict[str, object]
    workloads: list[WorkloadRun] = field(default_factory=list)

    @property
    def run_id(self) -> str:
        return self.spec.run_id

    @property
    def ok(self) -> bool:
        return all(workload.ok for workload in self.workloads)

    @property
    def status(self) -> str:
        return "ok" if self.ok else "timeout"

    @property
    def time_ns(self) -> float:
        return sum(_time_ns(w.result) for w in self.workloads if w.ok)

    @property
    def energy_nj(self) -> float:
        return sum(_energy_nj(w.result) for w in self.workloads if w.ok)

    @property
    def error_bound(self) -> float:
        """Run-level relative bound: time-weighted over the workloads.

        Exact workloads (bound ``None``) mix with sampled ones as
        zero-width strata, mirroring
        :meth:`~repro.core.metrics.ModelSchedule.combined_error_bound`.
        """
        total = self.time_ns
        if total == 0:
            return 0.0
        weighted = sum(
            (_bound(w.result) or 0.0) * _time_ns(w.result)
            for w in self.workloads
            if w.ok
        )
        return weighted / total

    def metric(self, name: str) -> float:
        if name == "latency":
            return self.time_ns / 1e6  # ms
        if name == "energy":
            return self.energy_nj / 1e3  # uJ
        if name == "edp":
            return self.energy_nj * self.time_ns
        raise ValueError(f"unknown metric {name!r} (known: {', '.join(METRICS)})")

    def metrics(self) -> dict[str, float]:
        return {name: self.metric(name) for name in METRICS}


def _time_ns(result: object) -> float:
    return result.total_time_ns if isinstance(result, ModelSchedule) else result.time_ns


def _energy_nj(result: object) -> float:
    if isinstance(result, ModelSchedule):
        return result.total_energy_nj
    return result.energy_nj


def _bound(result: object) -> float | None:
    if isinstance(result, ModelSchedule):
        return result.combined_error_bound()
    return result.error_bound


@dataclass
class RunDelta:
    """One non-baseline run's relative deltas against the baseline."""

    run: RunResult
    deltas: dict[str, float]
    noise: dict[str, float]
    significant: dict[str, bool]

    @property
    def run_id(self) -> str:
        return self.run.run_id


@dataclass
class ComponentImportance:
    """Importance of one component: its worst-case one-off deltas."""

    component: str
    deltas: list[RunDelta]
    primary: str
    rank: int = 0

    def importance(self, metric: str) -> float:
        return max(
            (abs(delta.deltas[metric]) for delta in self.deltas if delta.run.ok),
            default=0.0,
        )

    def significant(self, metric: str) -> bool:
        return any(
            delta.significant[metric] for delta in self.deltas if delta.run.ok
        )

    @property
    def score(self) -> float:
        return self.importance(self.primary)

    @property
    def driver(self) -> RunDelta | None:
        """The one-off run with the largest primary-metric delta."""
        candidates = [delta for delta in self.deltas if delta.run.ok]
        if not candidates:
            return None
        return max(candidates, key=lambda delta: abs(delta.deltas[self.primary]))


@dataclass
class AblationStudy:
    """A declared ablation study over the design space.

    ``components`` are the knobs under test; ``fixed`` pins any other
    knob (see :data:`KNOBS`) for every run.  ``pairwise=True`` adds the
    cross grid of every component pair's alternatives, reported as
    interactions (never folded into the one-off importance ranking).
    ``metric`` picks the primary ranking metric.  ``conventional=True``
    additionally schedules the fixed-pipeline baseline for every
    workload (paired requests, like :meth:`SchedulingService.compare`),
    for consumers that need both sides.
    """

    components: Sequence[Component]
    fixed: Mapping[str, object] = field(default_factory=dict)
    pairwise: bool = False
    metric: str = "edp"
    totals_only: bool = True
    conventional: bool = False
    executor: str = "thread"
    max_workers: int | None = None
    timeout: float | None = None

    def __post_init__(self) -> None:
        self.components = list(self.components)
        if not self.components:
            raise ValueError("an ablation study needs at least one component")
        names = [component.name for component in self.components]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names: {names}")
        if self.metric not in METRICS:
            raise ValueError(
                f"metric must be one of {METRICS}, got {self.metric!r}"
            )
        if self.executor not in EXECUTORS:
            raise ValueError(
                f"executor must be one of {EXECUTORS}, got {self.executor!r}"
            )
        self.fixed = {
            name: _normalize(name, value) for name, value in dict(self.fixed).items()
        }
        overlap = set(self.fixed) & set(names)
        if overlap:
            raise ValueError(
                f"knobs {sorted(overlap)} are both fixed and ablated; "
                f"declare each knob in exactly one place"
            )

    # ------------------------------------------------------------------ #
    # Run-set generation (pure function of the declaration)
    # ------------------------------------------------------------------ #
    def baseline_settings(self) -> dict[str, object]:
        settings = dict(DEFAULT_SETTINGS)
        settings.update(self.fixed)
        for component in self.components:
            settings[component.name] = component.baseline
        return settings

    def settings_for(self, spec: RunSpec) -> dict[str, object]:
        settings = self.baseline_settings()
        settings.update(dict(spec.overrides))
        return settings

    def generate_runs(self) -> list[RunSpec]:
        """Baseline, then one run per alternative, then the pairwise grid."""
        specs = [RunSpec(run_id="baseline")]
        for component in self.components:
            for alternative in component.alternatives:
                overrides = ((component.name, alternative),)
                specs.append(RunSpec(run_id=_override_id(overrides), overrides=overrides))
        if self.pairwise:
            for i, first in enumerate(self.components):
                for second in self.components[i + 1:]:
                    for alt_first in first.alternatives:
                        for alt_second in second.alternatives:
                            overrides = (
                                (first.name, alt_first),
                                (second.name, alt_second),
                            )
                            specs.append(
                                RunSpec(
                                    run_id=_override_id(overrides),
                                    overrides=overrides,
                                )
                            )
        return specs

    # ------------------------------------------------------------------ #
    def run(self, order: Sequence[str] | None = None) -> "StudyResult":
        """Execute the study; see :func:`execute_study`."""
        return execute_study(self, order=order)


# ---------------------------------------------------------------------- #
# Execution: fan-out through SchedulingService, grouped by backend
# ---------------------------------------------------------------------- #
def _run_backend(settings: Mapping[str, object]):
    """The backend one run executes on, with sampling knobs folded in."""
    backend = settings["backend"]
    overrides = {
        knob: settings[knob] for knob in SAMPLED_KNOBS if settings[knob] is not None
    }
    if isinstance(backend, str):
        if not overrides:
            return create_backend(backend)
        if backend != "sampled":
            raise ValueError(
                f"{'/'.join(sorted(overrides))} requires the 'sampled' backend "
                f"(the {backend!r} backend does not sample)"
            )
        return SampledSimBackend(**overrides)
    if overrides:
        if not isinstance(backend, SampledSimBackend):
            raise ValueError(
                f"{'/'.join(sorted(overrides))} requires the 'sampled' backend "
                f"(the {backend.name!r} backend does not sample)"
            )
        return SampledSimBackend(
            sample_fraction=overrides.get("sample_fraction", backend.sample_fraction),
            min_tiles_per_shape=overrides.get(
                "min_tiles_per_shape", backend.min_tiles_per_shape
            ),
            sample_seed=overrides.get("sample_seed", backend.sample_seed),
            error_target=overrides.get("error_target", backend.error_target),
            max_probe_t=backend.max_probe_t,
        )
    return backend


def _run_workloads(settings: Mapping[str, object]) -> list:
    from repro.workloads import get_suite, get_workload

    batch = int(settings["batch"])
    workloads = settings["workloads"]
    if workloads is not None:
        return [
            get_workload(workload, batch=batch)
            if isinstance(workload, str)
            else workload
            for workload in workloads
        ]
    return get_suite(str(settings["suite"]), batch=batch)


def _run_config(settings: Mapping[str, object]) -> ArrayFlexConfig:
    rows, cols = settings["geometry"]
    kwargs: dict[str, object] = {
        "rows": rows,
        "cols": cols,
        "supported_depths": tuple(settings["depths"]),
        "activity_model": settings["activity_model"],
    }
    if settings["technology"] is not None:
        kwargs["technology"] = settings["technology"]
    return ArrayFlexConfig(**kwargs)


def _backend_key(backend) -> tuple:
    identity = getattr(backend, "decision_identity", tuple)()
    return (backend.name,) + tuple(identity)


def execute_study(
    study: AblationStudy, order: Sequence[str] | None = None
) -> "StudyResult":
    """Run every generated run of ``study`` through scheduling services.

    Runs are grouped by backend identity; each group goes through one
    :class:`SchedulingService` as a single ``submit_many`` batch, so the
    whole group runs with full executor concurrency, deduplicated
    requests (e.g. the shared conventional baselines of a pairwise grid)
    are computed once, and per-run deadlines (``study.timeout``) can
    never hang the study.  ``order`` optionally permutes the *submission*
    order of the run ids — results are always collected back into the
    canonical generated order, so any permutation yields an identical
    :class:`StudyResult` (pinned by the determinism tests).
    """
    specs = study.generate_runs()
    by_id = {spec.run_id: spec for spec in specs}
    if order is None:
        ordered = specs
    else:
        order = list(order)
        if sorted(order) != sorted(by_id):
            raise ValueError(
                "order must be a permutation of the generated run ids"
            )
        ordered = [by_id[run_id] for run_id in order]

    # Resolve every run, then bucket by backend identity (first-seen
    # instance wins, so identical identities share one warm service).
    plans: list[tuple[RunSpec, dict, tuple, list, list[Request]]] = []
    groups: dict[tuple, object] = {}
    for spec in ordered:
        settings = study.settings_for(spec)
        backend = _run_backend(settings)
        key = _backend_key(backend)
        groups.setdefault(key, backend)
        config = _run_config(settings)
        workloads = _run_workloads(settings)
        requests: list[Request] = []
        for workload in workloads:
            request = Request(
                model=workload,
                config=config,
                totals_only=study.totals_only,
                timeout=study.timeout,
            )
            if study.conventional:
                requests.extend(request.paired())
            else:
                requests.append(request)
        plans.append((spec, settings, key, workloads, requests))

    results: dict[str, RunResult] = {}
    with get_tracer().span(
        "ablation.study",
        runs=len(specs),
        components=len(study.components),
        executor=study.executor,
    ):
        for key, backend in groups.items():
            group = [plan for plan in plans if plan[2] == key]
            service = SchedulingService(
                backend=backend,
                executor=study.executor,
                max_workers=study.max_workers,
            )
            try:
                flat = [request for plan in group for request in plan[4]]
                responses = service.submit_many(flat, timeout=study.timeout)
            finally:
                timed_out = bool(service.stats().get("timed_out", 0))
                service.close(wait=not timed_out, cancel_futures=timed_out)
            cursor = 0
            for spec, settings, _, workloads, requests in group:
                run = RunResult(spec=spec, settings=settings)
                step = 2 if study.conventional else 1
                for workload in workloads:
                    chunk = responses[cursor:cursor + step]
                    cursor += step
                    flex: Response = chunk[0]
                    conv: Response | None = chunk[1] if study.conventional else None
                    run.workloads.append(
                        WorkloadRun(
                            name=flex.model_name,
                            result=flex.result if flex.ok else None,
                            conventional=(
                                conv.result if conv is not None and conv.ok else None
                            ),
                            ok=flex.ok and (conv is None or conv.ok),
                        )
                    )
                results[spec.run_id] = run

    baseline = results["baseline"]
    if not baseline.ok:
        raise RuntimeError(
            "the baseline run timed out; every delta is relative to it "
            "(raise study.timeout or shrink the baseline workload)"
        )
    one_off = [results[s.run_id] for s in specs if len(s.overrides) == 1]
    pairwise = [results[s.run_id] for s in specs if len(s.overrides) > 1]
    deltas = {run.run_id: _delta(baseline, run) for run in one_off + pairwise}
    ranking = [
        ComponentImportance(
            component=component.name,
            deltas=[
                deltas[run.run_id]
                for run in one_off
                if run.spec.components == (component.name,)
            ],
            primary=study.metric,
        )
        for component in study.components
    ]
    ranking.sort(key=lambda entry: (-entry.score, entry.component))
    for position, entry in enumerate(ranking, start=1):
        entry.rank = position
    return StudyResult(
        study=study,
        baseline=baseline,
        one_off=one_off,
        pairwise=pairwise,
        deltas=deltas,
        ranking=ranking,
    )


def _delta(baseline: RunResult, run: RunResult) -> RunDelta:
    deltas: dict[str, float] = {}
    noise: dict[str, float] = {}
    significant: dict[str, bool] = {}
    for metric in METRICS:
        base = baseline.metric(metric)
        value = run.metric(metric)
        if not run.ok:
            delta = 0.0
        elif base == 0.0:
            delta = 0.0 if value == 0.0 else float("inf")
        else:
            delta = value / base - 1.0
        width = _METRIC_BOUND_WEIGHT[metric] * (
            baseline.error_bound + run.error_bound
        )
        deltas[metric] = delta
        noise[metric] = width
        significant[metric] = run.ok and abs(delta) > width
    return RunDelta(run=run, deltas=deltas, noise=noise, significant=significant)


# ---------------------------------------------------------------------- #
# The study report
# ---------------------------------------------------------------------- #
@dataclass
class StudyResult:
    """Everything one executed study measured, decided and ranked."""

    study: AblationStudy
    baseline: RunResult
    one_off: list[RunResult]
    pairwise: list[RunResult]
    deltas: dict[str, RunDelta]
    ranking: list[ComponentImportance]

    @property
    def runs(self) -> list[RunResult]:
        """Every run in canonical order (baseline, one-offs, pairwise)."""
        return [self.baseline] + self.one_off + self.pairwise

    def run(self, run_id: str) -> RunResult:
        for candidate in self.runs:
            if candidate.run_id == run_id:
                return candidate
        raise KeyError(run_id)

    def interaction(self, run: RunResult) -> float:
        """Pairwise delta minus the sum of its parts (primary metric)."""
        metric = self.study.metric
        combined = self.deltas[run.run_id].deltas[metric]
        parts = sum(
            self.deltas[_override_id((override,))].deltas[metric]
            for override in run.spec.overrides
        )
        return combined - parts

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """The runs table plus the importance ranking (and interactions)."""
        metric = self.study.metric
        run_rows = []
        for run in [self.baseline] + self.one_off:
            delta = self.deltas.get(run.run_id)
            run_rows.append(
                (
                    run.run_id,
                    run.status,
                    run.metric("latency"),
                    run.metric("energy"),
                    f"{run.metric('edp'):.4e}",
                    _format_bound(run.error_bound),
                    *(
                        (_format_delta(delta.deltas[m]) for m in METRICS)
                        if delta is not None
                        else ("--", "--", "--")
                    ),
                )
            )
        blocks = [
            format_table(
                [
                    "run",
                    "status",
                    "latency (ms)",
                    "energy (uJ)",
                    "EDP",
                    "+/-bound",
                    "d latency",
                    "d energy",
                    "d EDP",
                ],
                run_rows,
                title=(
                    f"Ablation runs -- baseline plus one-off "
                    f"({len(self.one_off)} variants)"
                ),
            )
        ]
        ranking_rows = []
        for entry in self.ranking:
            driver = entry.driver
            ranking_rows.append(
                (
                    entry.rank,
                    entry.component,
                    driver.run_id if driver is not None else "--",
                    *(
                        (_format_delta(driver.deltas[m]) for m in METRICS)
                        if driver is not None
                        else ("--", "--", "--")
                    ),
                    _format_delta(entry.score, signed=False),
                    entry.significant(metric),
                )
            )
        blocks.append(
            format_table(
                [
                    "rank",
                    "component",
                    "driver run",
                    "d latency",
                    "d energy",
                    "d EDP",
                    "importance",
                    "significant",
                ],
                ranking_rows,
                title=f"Component importance -- ranked on {metric}",
            )
        )
        if self.pairwise:
            pair_rows = [
                (
                    run.run_id,
                    run.status,
                    _format_delta(self.deltas[run.run_id].deltas[metric]),
                    _format_delta(self.interaction(run)) if run.ok else "--",
                )
                for run in self.pairwise
            ]
            blocks.append(
                format_table(
                    ["run", "status", f"d {metric}", "interaction"],
                    pair_rows,
                    title="Pairwise runs -- combined delta vs sum of one-offs",
                )
            )
        return "\n\n".join(blocks)

    def to_json(self) -> dict:
        """A deterministic, JSON-serialisable view of the whole study."""
        metric = self.study.metric

        def run_payload(run: RunResult) -> dict:
            payload = {
                "run_id": run.run_id,
                "overrides": {
                    name: format_value(name, value)
                    for name, value in run.spec.overrides
                },
                "status": run.status,
                "metrics": run.metrics(),
                "error_bound": run.error_bound,
            }
            delta = self.deltas.get(run.run_id)
            if delta is not None:
                payload["deltas"] = dict(delta.deltas)
                payload["significant"] = dict(delta.significant)
            return payload

        payload = {
            "metric": metric,
            "baseline": run_payload(self.baseline),
            "runs": [run_payload(run) for run in self.one_off],
            "ranking": [
                {
                    "rank": entry.rank,
                    "component": entry.component,
                    "driver": (
                        entry.driver.run_id if entry.driver is not None else None
                    ),
                    "importance": {m: entry.importance(m) for m in METRICS},
                    "significant": {m: entry.significant(m) for m in METRICS},
                }
                for entry in self.ranking
            ],
        }
        if self.pairwise:
            payload["pairwise"] = [
                dict(run_payload(run), interaction=self.interaction(run))
                for run in self.pairwise
            ]
        return payload


def _format_delta(value: float, signed: bool = True) -> str:
    if value != value or value in (float("inf"), float("-inf")):
        return "inf"
    sign = "+" if signed else ""
    return f"{value * 100:{sign}.2f}%"


def _format_bound(value: float) -> str:
    return f"{value * 100:.2f}%" if value else "0%"


# ---------------------------------------------------------------------- #
# The default study (CLI default, EXPERIMENTS.md, smoke tests)
# ---------------------------------------------------------------------- #
def default_study(
    backend=None,
    suite: str = "cnn",
    executor: str = "thread",
    timeout: float | None = None,
) -> AblationStudy:
    """The stock "which knob mattered" study over the paper's CNN suite.

    Ablates the three cheap headline knobs against the paper baseline —
    activity model (constant -> utilization), array geometry (128x128 ->
    256x256) and the supported collapse-depth set ({1,2,4} -> {1,2}) —
    on aggregate totals.
    """
    fixed: dict[str, object] = {"suite": suite}
    if backend is not None:
        fixed["backend"] = backend
    return AblationStudy(
        components=[
            Component("activity_model", "constant", ("utilization",)),
            Component("geometry", (128, 128), ((256, 256),)),
            Component("depths", (1, 2, 4), ((1, 2),)),
        ],
        fixed=fixed,
        metric="edp",
        executor=executor,
        timeout=timeout,
    )
