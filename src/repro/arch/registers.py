"""Pipeline registers with transparency (bypass) and clock gating.

The heart of ArrayFlex's "transparent pipelining" is the ability to make a
pipeline register *transparent*: its bypass multiplexer forwards the input
combinationally to the next stage, and the register itself is clock gated
so it burns no clocking power (paper Sections I and III-B).

:class:`PipelineRegister` models one such register bit-group.  It keeps the
usual two-phase semantics of a synchronous design:

* during a cycle, producers call :meth:`drive` with the combinational input
  value and consumers call :meth:`output` to observe either the stored
  value (opaque mode) or the driven input (transparent mode);
* at the end of the cycle, :meth:`clock_edge` captures the driven value if
  and only if the register is opaque (not clock gated).

Activity counters record how many cycles the register was clocked versus
gated, which feeds the clock-power accounting of
:mod:`repro.timing.power_model`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arith.fixed_point import wrap_to_width


@dataclass
class RegisterActivity:
    """Cycle-level activity counters of one pipeline register."""

    clocked_cycles: int = 0
    gated_cycles: int = 0
    data_toggles: int = 0

    @property
    def total_cycles(self) -> int:
        return self.clocked_cycles + self.gated_cycles

    def gating_ratio(self) -> float:
        """Fraction of cycles the register spent clock gated."""
        if self.total_cycles == 0:
            return 0.0
        return self.gated_cycles / self.total_cycles


class PipelineRegister:
    """A fixed-width pipeline register with a bypass multiplexer.

    Parameters
    ----------
    width:
        Number of bits stored (values wrap to this width, as in hardware).
    name:
        Human-readable identifier used in error messages and traces.
    transparent:
        Initial transparency.  A transparent register forwards its driven
        input combinationally and is clock gated.
    """

    def __init__(self, width: int, name: str = "reg", transparent: bool = False) -> None:
        if width <= 0:
            raise ValueError("register width must be positive")
        self.width = width
        self.name = name
        self.transparent = transparent
        self._stored = 0
        self._driven = 0
        self._has_driven = False
        self.activity = RegisterActivity()

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def set_transparent(self, transparent: bool) -> None:
        """Reconfigure the register's transparency (a config-bit write)."""
        self.transparent = transparent

    def reset(self, value: int = 0) -> None:
        """Asynchronously reset the stored value (e.g. between tiles)."""
        self._stored = wrap_to_width(value, self.width)
        self._driven = self._stored
        self._has_driven = False

    # ------------------------------------------------------------------ #
    # Per-cycle dataflow
    # ------------------------------------------------------------------ #
    def drive(self, value: int) -> None:
        """Present the combinational input of the register for this cycle."""
        self._driven = wrap_to_width(value, self.width)
        self._has_driven = True

    def output(self) -> int:
        """Value seen downstream of the register *during* the current cycle.

        Transparent mode forwards the driven input; opaque mode returns the
        value captured at the previous clock edge.
        """
        if self.transparent:
            return self._driven
        return self._stored

    def clock_edge(self) -> None:
        """Advance one clock cycle.

        Opaque registers capture their driven input and count a clocked
        cycle; transparent registers are clock gated and hold their old
        contents (which nobody observes).
        """
        if self.transparent:
            self.activity.gated_cycles += 1
        else:
            if self._has_driven and self._driven != self._stored:
                self.activity.data_toggles += 1
            self._stored = self._driven
            self.activity.clocked_cycles += 1
        self._has_driven = False

    # ------------------------------------------------------------------ #
    @property
    def stored_value(self) -> int:
        """The value currently held by the flip-flops (test/debug hook)."""
        return self._stored

    @property
    def driven_value(self) -> int:
        """The combinational input presented this cycle (the D pin)."""
        return self._driven

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = "transparent" if self.transparent else "opaque"
        return f"PipelineRegister({self.name!r}, width={self.width}, {mode})"
