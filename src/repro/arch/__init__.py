"""Micro-architectural (structural) model of the systolic array.

This package models the hardware organisation the paper describes at the
block level -- processing elements with configurable transparent pipeline
registers, the configuration plane, the array fabric, the edge memories and
the weight-stationary dataflow -- as explicit Python objects.

The structural model is intentionally object-per-element: it is the
reference against which the fast vectorised cycle simulator
(:mod:`repro.sim`) and the closed-form latency model (:mod:`repro.core`)
are validated on small arrays.

Modules
-------
* :mod:`repro.arch.registers` -- pipeline registers with transparency
  (bypass) and clock gating, plus activity counters.
* :mod:`repro.arch.pe` -- conventional and configurable processing
  elements (multiplier, 3:2 CSA, CPA, bypass multiplexers, config bits).
* :mod:`repro.arch.control` -- the configuration plane that turns a
  collapse depth k into per-PE configuration bits.
* :mod:`repro.arch.array` -- the R x C array fabric executing one tile
  cycle-by-cycle through the PE objects.
* :mod:`repro.arch.memory` -- west/north SRAM banks and the south output
  accumulators with access counting.
* :mod:`repro.arch.dataflow` -- weight-stationary skew schedules for
  normal and shallow pipeline modes.
"""

from repro.arch.control import ConfigurationPlane, PEConfigBits
from repro.arch.dataflow import WeightStationaryDataflow
from repro.arch.memory import AccumulatorBank, SRAMBank
from repro.arch.pe import ConfigurablePE, ConventionalPE, PEOutputs
from repro.arch.registers import PipelineRegister, RegisterActivity
from repro.arch.array import SystolicArrayModel, TileExecutionResult

__all__ = [
    "PipelineRegister",
    "RegisterActivity",
    "ConventionalPE",
    "ConfigurablePE",
    "PEOutputs",
    "PEConfigBits",
    "ConfigurationPlane",
    "SystolicArrayModel",
    "TileExecutionResult",
    "SRAMBank",
    "AccumulatorBank",
    "WeightStationaryDataflow",
]
