"""Processing elements (PEs).

Two PE models are provided:

* :class:`ConventionalPE` -- the fixed-pipeline PE of a traditional
  weight-stationary systolic array: a multiplier followed by a
  carry-propagate adder, with the result always captured in the output
  pipeline register every cycle.
* :class:`ConfigurablePE` -- the ArrayFlex PE of paper Fig. 3: the
  multiplier output enters a 3:2 carry-save adder together with the
  incoming (sum, carry) pair; bypass multiplexers controlled by two
  configuration bits decide whether the result crosses the vertical /
  horizontal pipeline registers transparently (shallow mode) or is
  resolved by the carry-propagate adder and registered (group boundary).

Both PEs can evaluate their datapath either with plain Python integer
arithmetic (fast, used by the array-level structural simulations) or with
the bit-level models of :mod:`repro.arith` (slow, used by targeted tests to
prove the carry-save datapath is numerically exact).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arith.csa import CarrySaveState, carry_save_add, carry_save_resolve
from repro.arith.multiplier import array_multiply
from repro.arith.adders import add_ints
from repro.arith.fixed_point import (
    DEFAULT_ACCUM_WIDTH,
    DEFAULT_INPUT_WIDTH,
    int_to_bits,
    wrap_to_width,
)
from repro.arch.control import PEConfigBits
from repro.arch.registers import PipelineRegister


@dataclass(frozen=True)
class PEOutputs:
    """Combinational outputs of one PE during one cycle.

    ``sum_out`` and ``carry_out`` are the redundant carry-save pair that
    flows down the column.  When the PE sits at the bottom of its collapsed
    group (vertical register opaque) the pair has already been resolved by
    the carry-propagate adder, so ``carry_out`` is zero and ``resolved`` is
    True.
    """

    activation_out: int
    sum_out: int
    carry_out: int
    resolved: bool

    @property
    def value(self) -> int:
        """The integer value represented by the outgoing pair."""
        return self.sum_out + self.carry_out


class _PEBase:
    """Shared state and helpers of both PE variants."""

    def __init__(
        self,
        row: int,
        col: int,
        input_width: int = DEFAULT_INPUT_WIDTH,
        accum_width: int = DEFAULT_ACCUM_WIDTH,
        use_bitlevel: bool = False,
    ) -> None:
        if input_width <= 0 or accum_width < input_width:
            raise ValueError("invalid datapath widths")
        self.row = row
        self.col = col
        self.input_width = input_width
        self.accum_width = accum_width
        self.use_bitlevel = use_bitlevel
        self.weight = 0
        #: Number of multiply operations performed (for utilisation stats).
        self.mac_count = 0

    def load_weight(self, weight: int) -> None:
        """Store the stationary weight (wrapped to the input width)."""
        self.weight = wrap_to_width(weight, self.input_width)

    def _multiply(self, activation: int) -> int:
        activation = wrap_to_width(activation, self.input_width)
        self.mac_count += 1
        if self.use_bitlevel:
            return array_multiply(activation, self.weight, self.input_width)
        return wrap_to_width(activation * self.weight, self.accum_width)

    def _add(self, a: int, b: int) -> int:
        if self.use_bitlevel:
            return add_ints(a, b, self.accum_width)
        return wrap_to_width(a + b, self.accum_width)


class ConventionalPE(_PEBase):
    """Fixed-pipeline PE: multiply, carry-propagate add, register. Always opaque."""

    def __init__(self, row: int, col: int, **kwargs: object) -> None:
        super().__init__(row, col, **kwargs)  # type: ignore[arg-type]
        self.activation_reg = PipelineRegister(self.input_width, f"pe{row}_{col}/act")
        self.psum_reg = PipelineRegister(self.accum_width, f"pe{row}_{col}/psum")

    def evaluate(self, activation_in: int, psum_in: int) -> PEOutputs:
        """One cycle of the conventional multiply-accumulate datapath."""
        product = self._multiply(activation_in)
        total = self._add(psum_in, product)
        self.activation_reg.drive(activation_in)
        self.psum_reg.drive(total)
        return PEOutputs(
            activation_out=activation_in, sum_out=total, carry_out=0, resolved=True
        )

    def clock_edge(self) -> None:
        self.activation_reg.clock_edge()
        self.psum_reg.clock_edge()


class ConfigurablePE(_PEBase):
    """ArrayFlex PE with a 3:2 CSA, CPA and transparent-capable registers."""

    def __init__(
        self,
        row: int,
        col: int,
        config: PEConfigBits | None = None,
        **kwargs: object,
    ) -> None:
        super().__init__(row, col, **kwargs)  # type: ignore[arg-type]
        self.config = config or PEConfigBits(
            horizontal_transparent=False, vertical_transparent=False
        )
        self.activation_reg = PipelineRegister(self.input_width, f"pe{row}_{col}/act")
        self.sum_reg = PipelineRegister(self.accum_width, f"pe{row}_{col}/sum")
        self.carry_reg = PipelineRegister(self.accum_width, f"pe{row}_{col}/carry")
        self._apply_config()

    # ------------------------------------------------------------------ #
    # Configuration
    # ------------------------------------------------------------------ #
    def configure(self, config: PEConfigBits) -> None:
        """Load the two configuration bits (done in parallel with weights)."""
        self.config = config
        self._apply_config()

    def _apply_config(self) -> None:
        self.activation_reg.set_transparent(self.config.horizontal_transparent)
        self.sum_reg.set_transparent(self.config.vertical_transparent)
        self.carry_reg.set_transparent(self.config.vertical_transparent)

    # ------------------------------------------------------------------ #
    # Datapath
    # ------------------------------------------------------------------ #
    def evaluate(
        self, activation_in: int, sum_in: int, carry_in: int
    ) -> PEOutputs:
        """One cycle of the configurable datapath (paper Fig. 3 / Fig. 4).

        The product always passes through the 3:2 carry-save adder together
        with the incoming pair.  If the vertical register is opaque (bottom
        of a collapsed group, or every PE in normal mode) the carry-save
        pair is resolved by the carry-propagate adder before being driven
        into the pipeline register.
        """
        product = self._multiply(activation_in)

        if self.use_bitlevel:
            state = carry_save_add(
                int_to_bits(wrap_to_width(sum_in, self.accum_width), self.accum_width),
                int_to_bits(wrap_to_width(carry_in, self.accum_width), self.accum_width),
                int_to_bits(product, self.accum_width),
                width=self.accum_width,
            )
            sum_out, carry_out = self._split_state(state)
        else:
            # Functional shortcut: keep the pair's *value* exact while
            # folding it into the sum component.  Equivalent to the CSA for
            # every downstream computation because only sum + carry is ever
            # observed.
            sum_out = wrap_to_width(sum_in + carry_in + product, self.accum_width)
            carry_out = 0

        resolved = not self.config.vertical_transparent
        if resolved:
            if self.use_bitlevel:
                resolved_value = carry_save_resolve(
                    CarrySaveState(
                        sum_bits=tuple(
                            int_to_bits(sum_out, self.accum_width)
                        ),
                        carry_bits=tuple(
                            int_to_bits(carry_out, self.accum_width)
                        ),
                    )
                )
            else:
                resolved_value = self._add(sum_out, carry_out)
            sum_out, carry_out = resolved_value, 0

        self.activation_reg.drive(activation_in)
        self.sum_reg.drive(sum_out)
        self.carry_reg.drive(carry_out)
        return PEOutputs(
            activation_out=activation_in,
            sum_out=sum_out,
            carry_out=carry_out,
            resolved=resolved,
        )

    @staticmethod
    def _split_state(state: CarrySaveState) -> tuple[int, int]:
        from repro.arith.fixed_point import bits_to_int

        return bits_to_int(list(state.sum_bits)), bits_to_int(list(state.carry_bits))

    def clock_edge(self) -> None:
        self.activation_reg.clock_edge()
        self.sum_reg.clock_edge()
        self.carry_reg.clock_edge()

    # ------------------------------------------------------------------ #
    @property
    def gated_register_count(self) -> int:
        """Number of this PE's pipeline registers currently clock gated."""
        return sum(
            1
            for reg in (self.activation_reg, self.sum_reg, self.carry_reg)
            if reg.transparent
        )
