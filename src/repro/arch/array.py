"""Structural, object-per-element model of the systolic array fabric.

:class:`SystolicArrayModel` instantiates one Python object per PE and per
pipeline register and executes one tile of a weight-stationary matrix
multiplication cycle by cycle, exactly following the paper's dataflow:

1. preload the weights of the B tile, one array row per cycle (R cycles);
2. stream the (skewed) rows of the A tile from the west edge;
3. let partial sums ripple down the columns -- combinationally across the
   PEs of a collapsed group, registered at group boundaries;
4. capture the finished column sums at the south edge.

The model is deliberately slow and explicit.  It exists to validate, on
small arrays, that the fast vectorised simulator (:mod:`repro.sim`) and the
closed-form latency expressions (Eqs. 1 and 3) describe exactly this
hardware.  It also produces register-activity statistics (clocked versus
clock-gated cycles) that anchor the power model's gating assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.arch.control import ConfigurationPlane
from repro.arch.dataflow import WeightStationaryDataflow
from repro.arch.pe import ConfigurablePE, ConventionalPE
from repro.arith.fixed_point import DEFAULT_ACCUM_WIDTH, DEFAULT_INPUT_WIDTH


@dataclass
class TileExecutionResult:
    """Everything measured while executing one tile on the structural model."""

    output: np.ndarray
    weight_load_cycles: int
    compute_cycles: int
    mac_operations: int
    clocked_register_cycles: int
    gated_register_cycles: int
    collapse_depth: int
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return self.weight_load_cycles + self.compute_cycles

    @property
    def gated_register_fraction(self) -> float:
        total = self.clocked_register_cycles + self.gated_register_cycles
        if total == 0:
            return 0.0
        return self.gated_register_cycles / total


class SystolicArrayModel:
    """R × C array of PE objects executing the weight-stationary dataflow."""

    def __init__(
        self,
        rows: int,
        cols: int,
        configurable: bool = True,
        input_width: int = DEFAULT_INPUT_WIDTH,
        accum_width: int = DEFAULT_ACCUM_WIDTH,
        use_bitlevel: bool = False,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols
        self.configurable = configurable
        self.input_width = input_width
        self.accum_width = accum_width
        self.use_bitlevel = use_bitlevel
        self.plane = ConfigurationPlane(rows, cols)
        self.collapse_depth = 1

        pe_kwargs = {
            "input_width": input_width,
            "accum_width": accum_width,
            "use_bitlevel": use_bitlevel,
        }
        if configurable:
            self.pes: list[list[ConfigurablePE | ConventionalPE]] = [
                [ConfigurablePE(r, c, **pe_kwargs) for c in range(cols)]
                for r in range(rows)
            ]
        else:
            self.pes = [
                [ConventionalPE(r, c, **pe_kwargs) for c in range(cols)]
                for r in range(rows)
            ]
        self.configure(1)

    # ------------------------------------------------------------------ #
    # Configuration and weight loading
    # ------------------------------------------------------------------ #
    def configure(self, collapse_depth: int) -> None:
        """Select the pipeline mode (collapse depth) for subsequent tiles."""
        if not self.configurable and collapse_depth != 1:
            raise ValueError(
                "a conventional (non-configurable) array only supports "
                "the normal pipeline (k = 1)"
            )
        self.plane.check_depth(collapse_depth)
        self.collapse_depth = collapse_depth
        if self.configurable:
            for r in range(self.rows):
                for c in range(self.cols):
                    pe = self.pes[r][c]
                    assert isinstance(pe, ConfigurablePE)
                    pe.configure(self.plane.pe_config(r, c, collapse_depth))

    def load_weights(self, b_tile: np.ndarray) -> int:
        """Preload one tile of B (shape (rows_used, cols_used)); returns cycles.

        The configuration bits travel with the weights, so loading costs R
        cycles regardless of the selected pipeline mode.
        """
        b_tile = np.asarray(b_tile)
        if b_tile.ndim != 2:
            raise ValueError("b_tile must be two-dimensional")
        rows_used, cols_used = b_tile.shape
        if rows_used > self.rows or cols_used > self.cols:
            raise ValueError(
                f"tile of shape {b_tile.shape} does not fit a "
                f"{self.rows}x{self.cols} array"
            )
        padded = np.zeros((self.rows, self.cols), dtype=np.int64)
        padded[:rows_used, :cols_used] = b_tile
        for r in range(self.rows):
            for c in range(self.cols):
                self.pes[r][c].load_weight(int(padded[r, c]))
        return self.rows

    # ------------------------------------------------------------------ #
    # Tile execution
    # ------------------------------------------------------------------ #
    def execute_tile(self, a_tile: np.ndarray, b_tile: np.ndarray) -> TileExecutionResult:
        """Run one complete tile: weight preload plus skewed streaming of A.

        ``a_tile`` has shape (T, rows_used) and ``b_tile`` has shape
        (rows_used, cols_used); the result has shape (T, cols_used) and is
        the exact integer product ``a_tile @ b_tile``.
        """
        a_tile = np.asarray(a_tile)
        b_tile = np.asarray(b_tile)
        if a_tile.ndim != 2 or b_tile.ndim != 2:
            raise ValueError("a_tile and b_tile must be two-dimensional")
        if a_tile.shape[1] != b_tile.shape[0]:
            raise ValueError(
                f"inner dimensions do not match: {a_tile.shape} x {b_tile.shape}"
            )
        t_rows, rows_used = a_tile.shape
        cols_used = b_tile.shape[1]

        load_cycles = self.load_weights(b_tile)
        dataflow = WeightStationaryDataflow(self.rows, self.cols, self.collapse_depth)
        stream = dataflow.build_skewed_stream(a_tile)
        tag_schedule = dataflow.west_edge_schedule(t_rows)
        compute_cycles = dataflow.compute_cycles(t_rows)

        macs_before = self._total_macs()
        output = np.zeros((t_rows, self.cols), dtype=np.int64)
        # Shadow tag state mirroring the horizontal activation registers.
        tag_stored = np.full((self.rows, self.cols), -1, dtype=np.int64)

        for cycle in range(compute_cycles):
            visible = np.zeros((self.rows, self.cols), dtype=np.int64)
            tag_visible = np.full((self.rows, self.cols), -1, dtype=np.int64)

            # -------- horizontal propagation (west -> east) -------------- #
            for r in range(self.rows):
                for c in range(self.cols):
                    if c == 0:
                        incoming = int(stream[cycle, r])
                        incoming_tag = int(tag_schedule[cycle, r])
                    else:
                        west_pe = self.pes[r][c - 1]
                        west_reg = west_pe.activation_reg
                        west_reg_transparent = getattr(west_reg, "transparent", False)
                        if west_reg_transparent:
                            incoming = visible[r, c - 1]
                            incoming_tag = tag_visible[r, c - 1]
                        else:
                            incoming = west_reg.stored_value
                            incoming_tag = tag_stored[r, c - 1]
                    visible[r, c] = incoming
                    tag_visible[r, c] = incoming_tag

            # -------- vertical reduction (north -> south) ----------------- #
            for c in range(self.cols):
                sum_in = 0
                carry_in = 0
                for r in range(self.rows):
                    pe = self.pes[r][c]
                    if isinstance(pe, ConfigurablePE):
                        pe.evaluate(int(visible[r, c]), sum_in, carry_in)
                        sum_in = pe.sum_reg.output()
                        carry_in = pe.carry_reg.output()
                    else:
                        pe.evaluate(int(visible[r, c]), sum_in)
                        # A conventional PE always registers its partial sum;
                        # the value crossing to the next row is the one
                        # captured at the previous clock edge.
                        sum_in = pe.psum_reg.stored_value
                        carry_in = 0
                # South-edge capture: the bottom PE drives its (resolved)
                # result into an opaque register this cycle; the tag of the
                # activation visible at the bottom row tells us which output
                # element it is.
                bottom_tag = int(tag_visible[self.rows - 1, c])
                if 0 <= bottom_tag < t_rows:
                    bottom_pe = self.pes[self.rows - 1][c]
                    if isinstance(bottom_pe, ConfigurablePE):
                        driven = bottom_pe.sum_reg.driven_value
                    else:
                        driven = bottom_pe.psum_reg.driven_value
                    output[bottom_tag, c] = driven

            # -------- clock edge ------------------------------------------ #
            for r in range(self.rows):
                for c in range(self.cols):
                    self.pes[r][c].clock_edge()
            tag_stored = tag_visible.copy()

        clocked, gated = self._register_activity()
        return TileExecutionResult(
            output=output[:, :cols_used],
            weight_load_cycles=load_cycles,
            compute_cycles=compute_cycles,
            mac_operations=self._total_macs() - macs_before,
            clocked_register_cycles=clocked,
            gated_register_cycles=gated,
            collapse_depth=self.collapse_depth,
        )

    # ------------------------------------------------------------------ #
    # Statistics helpers
    # ------------------------------------------------------------------ #
    def _total_macs(self) -> int:
        return sum(pe.mac_count for row in self.pes for pe in row)

    def _register_activity(self) -> tuple[int, int]:
        clocked = 0
        gated = 0
        for row in self.pes:
            for pe in row:
                if isinstance(pe, ConfigurablePE):
                    regs = (pe.activation_reg, pe.sum_reg, pe.carry_reg)
                else:
                    regs = (pe.activation_reg, pe.psum_reg)
                for reg in regs:
                    clocked += reg.activity.clocked_cycles
                    gated += reg.activity.gated_cycles
        return clocked, gated

    def gated_register_fraction(self) -> float:
        """Fraction of pipeline registers currently configured transparent."""
        if not self.configurable:
            return 0.0
        return self.plane.gated_fraction(self.collapse_depth)
