"""Weight-stationary dataflow schedules for normal and shallow pipelines.

The weight-stationary (WS) dataflow (paper Fig. 1(b)) preloads a tile of
matrix B into the array (one row per cycle, R cycles) and then streams the
rows of matrix A from the west edge with a *skew*: in normal mode the
activation destined for array row ``r`` enters ``r`` cycles after the one
destined for row 0, so that it meets the partial sum of the same output
element as the latter ripples down the column.

When the pipeline is collapsed by a factor ``k`` (paper Fig. 2(b)), the
activations of the ``k`` rows of a collapsed group must arrive *together*
(their products are reduced combinationally within one cycle), so the skew
becomes one cycle per *group*: "the first (and last) elements of matrix A
arrive in batches of k words".  Likewise the horizontal movement advances
one column *group* (k columns, by broadcast) per cycle.

This module turns those rules into explicit schedules that both the
structural array model (:mod:`repro.arch.array`) and the vectorised cycle
simulator (:mod:`repro.sim.systolic_sim`) consume, and exposes the per-tile
cycle counts that Eqs. (1) and (3) summarise.
"""

from __future__ import annotations

import numpy as np


class WeightStationaryDataflow:
    """Skew schedule of one tile execution on an R × C array at depth k."""

    def __init__(self, rows: int, cols: int, collapse_depth: int = 1) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        if collapse_depth < 1:
            raise ValueError("collapse depth must be >= 1")
        if rows % collapse_depth or cols % collapse_depth:
            raise ValueError(
                f"collapse depth {collapse_depth} must divide the array "
                f"dimensions {rows}x{cols}"
            )
        self.rows = rows
        self.cols = cols
        self.collapse_depth = collapse_depth

    # ------------------------------------------------------------------ #
    # Elementary schedule queries (cycles are 0-indexed within the
    # compute phase, i.e. after the weight preload has finished)
    # ------------------------------------------------------------------ #
    def row_group(self, row: int) -> int:
        """Index of the collapsed group containing array row ``row``."""
        self._check_row(row)
        return row // self.collapse_depth

    def col_group(self, col: int) -> int:
        """Index of the collapsed group containing array column ``col``."""
        self._check_col(col)
        return col // self.collapse_depth

    def input_arrival_cycle(self, t_index: int, row: int) -> int:
        """Cycle at which activation A[t, row] is presented at the west edge."""
        self._check_t(t_index)
        return t_index + self.row_group(row)

    def pe_activation_cycle(self, t_index: int, row: int, col: int) -> int:
        """Cycle at which activation A[t, row] is visible at PE (row, col)."""
        return self.input_arrival_cycle(t_index, row) + self.col_group(col)

    def output_ready_cycle(self, t_index: int, col: int) -> int:
        """Cycle whose clock edge captures output element (t, col) at the south edge."""
        self._check_t(t_index)
        last_group = self.rows // self.collapse_depth - 1
        return t_index + last_group + self.col_group(col)

    # ------------------------------------------------------------------ #
    # Phase durations
    # ------------------------------------------------------------------ #
    def weight_load_cycles(self) -> int:
        """Cycles to preload one tile of B: one array row per cycle."""
        return self.rows

    def compute_cycles(self, t_rows: int) -> int:
        """Cycles from the first west-edge word to the last south-edge capture."""
        if t_rows <= 0:
            raise ValueError("the streamed matrix must have at least one row")
        return self.output_ready_cycle(t_rows - 1, self.cols - 1) + 1

    def tile_latency_cycles(self, t_rows: int) -> int:
        """Total cycles for one tile: preload plus compute.

        For k = 1 this equals Eq. (1), ``2R + C + T - 2``; for a collapse
        depth k dividing both dimensions it equals Eq. (3),
        ``R + R/k + C/k + T - 2``.
        """
        return self.weight_load_cycles() + self.compute_cycles(t_rows)

    # ------------------------------------------------------------------ #
    # Stream construction for the simulators
    # ------------------------------------------------------------------ #
    def west_edge_schedule(self, t_rows: int) -> np.ndarray:
        """Activation index presented at each (cycle, array row), or -1.

        Returns an int array of shape (compute_cycles, rows) whose entry
        [cycle, row] is the ``t`` index of the activation entering row
        ``row`` at that cycle, or -1 when the row receives no data
        (pipeline skew bubbles).
        """
        if t_rows <= 0:
            raise ValueError("the streamed matrix must have at least one row")
        n_cycles = self.compute_cycles(t_rows)
        schedule = np.full((n_cycles, self.rows), -1, dtype=np.int64)
        for row in range(self.rows):
            group = self.row_group(row)
            t_indices = np.arange(t_rows)
            schedule[t_indices + group, row] = t_indices
        return schedule

    def build_skewed_stream(self, a_tile: np.ndarray) -> np.ndarray:
        """Skewed west-edge data stream for one tile of A.

        ``a_tile`` has shape (T, rows_used) with rows_used <= R; missing
        rows are fed zeros.  The returned array has shape
        (compute_cycles, R): entry [cycle, row] is the value driven into
        row ``row`` of the array at that cycle (0 during bubbles).
        """
        a_tile = np.asarray(a_tile)
        if a_tile.ndim != 2:
            raise ValueError("a_tile must be a 2-D array of shape (T, rows_used)")
        t_rows, rows_used = a_tile.shape
        if rows_used > self.rows:
            raise ValueError(
                f"tile uses {rows_used} rows but the array only has {self.rows}"
            )
        schedule = self.west_edge_schedule(t_rows)
        stream = np.zeros(schedule.shape, dtype=a_tile.dtype)
        for row in range(rows_used):
            valid = schedule[:, row] >= 0
            stream[valid, row] = a_tile[schedule[valid, row], row]
        return stream

    def output_collection_schedule(self, t_rows: int) -> np.ndarray:
        """Capture cycle of every output element.

        Returns an int array of shape (T, cols) whose entry [t, col] is the
        compute-phase cycle at whose clock edge the south-edge register of
        column ``col`` holds output element (t, col).
        """
        if t_rows <= 0:
            raise ValueError("the streamed matrix must have at least one row")
        t_indices = np.arange(t_rows)[:, np.newaxis]
        col_groups = (np.arange(self.cols) // self.collapse_depth)[np.newaxis, :]
        last_group = self.rows // self.collapse_depth - 1
        return t_indices + last_group + col_groups

    # ------------------------------------------------------------------ #
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.rows:
            raise ValueError(f"row {row} outside [0, {self.rows})")

    def _check_col(self, col: int) -> None:
        if not 0 <= col < self.cols:
            raise ValueError(f"column {col} outside [0, {self.cols})")

    @staticmethod
    def _check_t(t_index: int) -> None:
        if t_index < 0:
            raise ValueError("t index must be non-negative")
