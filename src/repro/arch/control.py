"""Configuration plane: from a collapse depth to per-PE configuration bits.

Each ArrayFlex PE carries two configuration bits that independently control
the transparency (bypassing) of its pipeline registers in the horizontal
and vertical directions (paper Section III-B).  The bits are loaded in
parallel with the weights of matrix B, so reconfiguring costs no extra
cycles beyond the weight preload that every tile performs anyway.

For a collapse depth ``k``:

* the vertical partial-sum register of PE in row ``r`` is transparent
  unless the PE sits at the *bottom* of its k-row group
  (``(r + 1) % k == 0``), where the carry-save pair is resolved and stored;
* the horizontal activation register of PE in column ``c`` is transparent
  unless the PE sits at the *right edge* of its k-column group
  (``(c + 1) % k == 0``), where the broadcast is re-registered.

The plane also enforces the paper's legality rule: the collapse depth must
divide both array dimensions (Section IV explains that k = 3 is not
supported for power-of-two arrays for exactly this reason).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class PEConfigBits:
    """The two per-PE configuration bits.

    ``True`` means the corresponding pipeline register is transparent
    (bypassed and clock gated).
    """

    horizontal_transparent: bool
    vertical_transparent: bool

    def as_tuple(self) -> tuple[bool, bool]:
        return (self.horizontal_transparent, self.vertical_transparent)


class ConfigurationPlane:
    """Generates and validates the configuration of an R × C ArrayFlex array."""

    def __init__(self, rows: int, cols: int) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        self.rows = rows
        self.cols = cols

    # ------------------------------------------------------------------ #
    # Legality
    # ------------------------------------------------------------------ #
    def is_legal_depth(self, collapse_depth: int) -> bool:
        """A depth is legal if it is >= 1 and divides both dimensions."""
        if collapse_depth < 1:
            return False
        return self.rows % collapse_depth == 0 and self.cols % collapse_depth == 0

    def check_depth(self, collapse_depth: int) -> None:
        if not self.is_legal_depth(collapse_depth):
            raise ValueError(
                f"collapse depth {collapse_depth} is not supported by a "
                f"{self.rows}x{self.cols} array: it must divide both dimensions"
            )

    def legal_depths(self, max_depth: int | None = None) -> list[int]:
        """All collapse depths legal for this array, up to ``max_depth``."""
        limit = min(self.rows, self.cols)
        if max_depth is not None:
            limit = min(limit, max_depth)
        return [k for k in range(1, limit + 1) if self.is_legal_depth(k)]

    # ------------------------------------------------------------------ #
    # Configuration generation
    # ------------------------------------------------------------------ #
    def pe_config(self, row: int, col: int, collapse_depth: int) -> PEConfigBits:
        """Configuration bits of the PE at (row, col) for the given depth."""
        self.check_depth(collapse_depth)
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"PE coordinates ({row}, {col}) outside the array")
        vertical_transparent = (row + 1) % collapse_depth != 0
        horizontal_transparent = (col + 1) % collapse_depth != 0
        return PEConfigBits(
            horizontal_transparent=horizontal_transparent,
            vertical_transparent=vertical_transparent,
        )

    def config_matrix(self, collapse_depth: int) -> np.ndarray:
        """Boolean array of shape (rows, cols, 2): [horizontal, vertical] bits."""
        self.check_depth(collapse_depth)
        rows_idx = np.arange(self.rows)
        cols_idx = np.arange(self.cols)
        vertical = (rows_idx + 1) % collapse_depth != 0
        horizontal = (cols_idx + 1) % collapse_depth != 0
        matrix = np.zeros((self.rows, self.cols, 2), dtype=bool)
        matrix[:, :, 0] = horizontal[np.newaxis, :]
        matrix[:, :, 1] = vertical[:, np.newaxis]
        return matrix

    # ------------------------------------------------------------------ #
    # Derived quantities used by the power model
    # ------------------------------------------------------------------ #
    def transparent_register_counts(self, collapse_depth: int) -> dict[str, int]:
        """Number of transparent (clock-gated) registers in each direction."""
        self.check_depth(collapse_depth)
        config = self.config_matrix(collapse_depth)
        return {
            "horizontal": int(np.count_nonzero(config[:, :, 0])),
            "vertical": int(np.count_nonzero(config[:, :, 1])),
        }

    def gated_fraction(self, collapse_depth: int) -> float:
        """Fraction of pipeline registers clock gated at the given depth.

        Equals ``(k - 1) / k`` for any legal depth, which is the factor the
        analytical power model uses.
        """
        counts = self.transparent_register_counts(collapse_depth)
        total = 2 * self.rows * self.cols
        return (counts["horizontal"] + counts["vertical"]) / total

    def config_load_cycles(self) -> int:
        """Cycles needed to load the configuration bits.

        They are shifted in alongside the weights, so the cost is folded
        into the weight preload (zero extra cycles).
        """
        return 0
