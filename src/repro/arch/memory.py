"""Edge memories of the systolic array.

The paper's Fig. 1(a) shows the memory organisation the dataflow relies on:

* SRAM banks on the *west* edge feed the input features (one bank per row,
  one word per cycle),
* SRAM banks on the *north* edge hold the weights that are pre-loaded into
  the array (one bank per column),
* output accumulators below the *south* edge add up the partial sums of
  successive tiles of the tiled matrix multiplication (Fig. 1(c)).

The models here are functional (NumPy-backed) but keep access counters so
that SRAM traffic and accumulator activity can be reported and so that the
energy model can include them when asked to (the paper's power numbers
exclude SRAM power, and so do the headline experiments -- see Fig. 9's
caption -- but the counters make the omission explicit and reversible).
"""

from __future__ import annotations

import numpy as np


class SRAMBank:
    """A single-port SRAM bank with word-level access counting."""

    def __init__(self, name: str, depth: int, word_bits: int) -> None:
        if depth <= 0 or word_bits <= 0:
            raise ValueError("SRAM depth and word width must be positive")
        self.name = name
        self.depth = depth
        self.word_bits = word_bits
        self._data = np.zeros(depth, dtype=np.int64)
        self.reads = 0
        self.writes = 0

    def write(self, address: int, value: int) -> None:
        self._check_address(address)
        self._data[address] = value
        self.writes += 1

    def read(self, address: int) -> int:
        self._check_address(address)
        self.reads += 1
        return int(self._data[address])

    def write_block(self, start: int, values: np.ndarray) -> None:
        """Bulk write (DMA-style fill); counted as one write per word."""
        values = np.asarray(values, dtype=np.int64)
        self._check_address(start)
        self._check_address(start + len(values) - 1)
        self._data[start : start + len(values)] = values
        self.writes += len(values)

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.depth:
            raise IndexError(
                f"address {address} out of range for SRAM bank {self.name!r} "
                f"of depth {self.depth}"
            )

    @property
    def total_accesses(self) -> int:
        return self.reads + self.writes

    def access_bits(self) -> int:
        """Total bits moved in or out of the bank (for energy accounting)."""
        return self.total_accesses * self.word_bits


class AccumulatorBank:
    """Output accumulators below the south edge of the array.

    One accumulator per array column; each holds a full output column strip
    (T entries) and adds the partial sums produced by successive tiles along
    the N (reduction) dimension.
    """

    def __init__(self, cols: int, t_rows: int, accum_bits: int = 64) -> None:
        if cols <= 0 or t_rows <= 0:
            raise ValueError("accumulator dimensions must be positive")
        self.cols = cols
        self.t_rows = t_rows
        self.accum_bits = accum_bits
        self._values = np.zeros((t_rows, cols), dtype=np.int64)
        self.accumulations = 0

    def accumulate(self, t_index: int, col: int, partial: int) -> None:
        """Add one partial sum arriving from the bottom of column ``col``."""
        if not 0 <= t_index < self.t_rows:
            raise IndexError(f"row index {t_index} out of range")
        if not 0 <= col < self.cols:
            raise IndexError(f"column index {col} out of range")
        self._values[t_index, col] += partial
        self.accumulations += 1

    def accumulate_block(self, block: np.ndarray, col_offset: int = 0) -> None:
        """Add a whole (T x cols_block) tile result at a column offset."""
        block = np.asarray(block, dtype=np.int64)
        if block.shape[0] != self.t_rows:
            raise ValueError(
                f"block has {block.shape[0]} rows, accumulator expects {self.t_rows}"
            )
        if col_offset < 0 or col_offset + block.shape[1] > self.cols:
            raise ValueError("block does not fit at the requested column offset")
        self._values[:, col_offset : col_offset + block.shape[1]] += block
        self.accumulations += int(block.size)

    def read_result(self) -> np.ndarray:
        """The accumulated output matrix (copy)."""
        return self._values.copy()

    def reset(self) -> None:
        self._values[:] = 0


def build_edge_memories(
    rows: int,
    cols: int,
    t_rows: int,
    input_width: int = 32,
    depth_per_bank: int = 4096,
) -> tuple[list[SRAMBank], list[SRAMBank], AccumulatorBank]:
    """Convenience constructor of the full edge-memory complement.

    Returns (west input banks, north weight banks, south accumulator bank)
    sized for one R x C array processing tiles with T-row activations.
    """
    west = [
        SRAMBank(f"west[{r}]", depth=depth_per_bank, word_bits=input_width)
        for r in range(rows)
    ]
    north = [
        SRAMBank(f"north[{c}]", depth=depth_per_bank, word_bits=input_width)
        for c in range(cols)
    ]
    south = AccumulatorBank(cols=cols, t_rows=t_rows)
    return west, north, south
