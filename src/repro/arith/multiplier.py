"""Array multiplier model.

Every ArrayFlex PE contains one multiplier that computes the product of the
stationary weight and the streaming input activation (paper Fig. 3).  The
paper's evaluation uses 32-bit operands with 64-bit products.

The functional model here follows the classic array-multiplier structure:

1. generate partial products (one AND row per multiplier bit, with
   Baugh-Wooley-style sign handling performed by operating on the full
   two's-complement values),
2. reduce them with a carry-save adder tree,
3. resolve the final (sum, carry) pair with a carry-propagate adder.

Structure matters because the timing layer derives ``d_mul`` from the depth
of this reduction tree and the area model from its gate count.
"""

from __future__ import annotations

import math

from repro.arith.csa import (
    CarrySaveState,
    carry_save_accumulate,
    carry_save_resolve,
    csa_gate_count,
    csa_logic_depth,
)
from repro.arith.adders import (
    lookahead_logic_depth,
    ripple_carry_gate_count,
)
from repro.arith.fixed_point import (
    int_to_bits,
    product_width,
    wrap_to_width,
)


def partial_products(a: int, b: int, width: int) -> list[int]:
    """Partial products of ``a × b`` for ``width``-bit two's-complement inputs.

    Partial product ``i`` is ``a`` shifted left by ``i`` when bit ``i`` of
    the *unsigned reinterpretation* of ``b`` is set, with a final
    correction term for the sign bit (two's-complement weight of the MSB is
    negative).  Summing the returned list always equals ``a * b``.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    # Validate that the operands fit: int_to_bits raises otherwise.
    b_bits = int_to_bits(b, width)
    int_to_bits(a, width)

    products: list[int] = []
    for i, bit in enumerate(b_bits):
        if not bit:
            continue
        weight = a << i
        if i == width - 1:
            # MSB of a two's-complement number carries negative weight.
            weight = -weight
        products.append(weight)
    if not products:
        products.append(0)
    return products


def array_multiply(a: int, b: int, width: int) -> int:
    """Multiply two ``width``-bit two's-complement integers bit-structurally.

    The partial products are reduced through a carry-save chain and the
    result resolved by a carry-propagate adder, wrapped to the product
    width (2 × ``width``) -- the same datapath the PE implements.

    >>> array_multiply(-3, 7, 8)
    -21
    """
    out_width = product_width(width)
    addends = [wrap_to_width(p, out_width) for p in partial_products(a, b, width)]
    state: CarrySaveState = carry_save_accumulate(addends, width=out_width)
    return carry_save_resolve(state)


def multiplier_gate_count(width: int) -> int:
    """Gate-equivalent count of a ``width × width`` array multiplier.

    ``width**2`` AND gates for partial-product generation, roughly
    ``width - 2`` rows of carry-save adders at the product width, and a
    final product-width CPA.  The exact constant does not matter for the
    reproduction; the *ratio* to the adder/CSA/mux counts does, because it
    sets the relative energy and area of PE components.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    out_width = product_width(width)
    pp_gates = width * width
    csa_rows = max(width - 2, 0)
    reduction_gates = csa_rows * csa_gate_count(out_width)
    final_cpa = ripple_carry_gate_count(out_width)
    return pp_gates + reduction_gates + final_cpa


def multiplier_logic_depth(width: int) -> int:
    """Logic depth (gate levels) of a Wallace-style ``width``-bit multiplier.

    Partial-product AND (1 level) + ``O(log3/2 width)`` CSA levels + final
    carry-lookahead CPA.  Used by the technology layer to justify ``d_mul``
    dominating the PE critical path.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    if width == 1:
        return 1 + lookahead_logic_depth(product_width(width))
    # A Wallace/Dadda tree reduces n partial products to 2 in
    # ~log_{3/2}(n/2) CSA levels.
    csa_levels = math.ceil(math.log(width / 2.0, 1.5)) if width > 2 else 1
    return 1 + csa_levels * csa_logic_depth() + lookahead_logic_depth(product_width(width))
