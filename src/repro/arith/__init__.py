"""Bit-level arithmetic substrate.

This package provides functional, bit-accurate models of the arithmetic
building blocks that make up an ArrayFlex processing element (PE):

* :mod:`repro.arith.fixed_point` -- two's-complement encoding, decoding and
  quantization helpers shared by every block.
* :mod:`repro.arith.adders` -- full adders, ripple-carry and carry-lookahead
  carry-propagate adders (CPA).
* :mod:`repro.arith.csa` -- 3:2 carry-save adders (CSA) and carry-save
  accumulation chains, the key enabler of transparent pipeline collapsing in
  the paper (Section III-B).
* :mod:`repro.arith.multiplier` -- an array multiplier built from partial
  products, a CSA reduction tree and a final CPA.

The models serve two purposes in the reproduction:

1. They validate, at the bit level, that the collapsed-pipeline reduction
   (products accumulated in carry-save form, finalised by a single CPA)
   computes exactly the same result as a conventional chain of
   carry-propagate additions.
2. They expose gate counts and logic-depth estimates used by the technology
   layer (:mod:`repro.timing`) to derive delay, area and energy parameters.
"""

from repro.arith.adders import (
    FullAdderResult,
    carry_lookahead_add,
    full_adder,
    half_adder,
    ripple_carry_add,
    ripple_carry_gate_count,
    ripple_carry_logic_depth,
)
from repro.arith.csa import (
    CarrySaveState,
    carry_save_accumulate,
    carry_save_add,
    carry_save_chain_gate_count,
    carry_save_resolve,
)
from repro.arith.fixed_point import (
    bits_to_int,
    int_to_bits,
    quantize_symmetric,
    sign_extend,
    wrap_to_width,
)
from repro.arith.multiplier import (
    array_multiply,
    multiplier_gate_count,
    multiplier_logic_depth,
    partial_products,
)

__all__ = [
    "FullAdderResult",
    "CarrySaveState",
    "full_adder",
    "half_adder",
    "ripple_carry_add",
    "carry_lookahead_add",
    "ripple_carry_gate_count",
    "ripple_carry_logic_depth",
    "carry_save_add",
    "carry_save_accumulate",
    "carry_save_resolve",
    "carry_save_chain_gate_count",
    "bits_to_int",
    "int_to_bits",
    "sign_extend",
    "wrap_to_width",
    "quantize_symmetric",
    "array_multiply",
    "partial_products",
    "multiplier_gate_count",
    "multiplier_logic_depth",
]
