"""Carry-propagate adders (CPA).

ArrayFlex PEs contain one carry-propagate adder each.  In normal pipeline
mode every PE's CPA finalises its own multiply-accumulate; in shallow mode
only the last PE of each collapsed group uses its CPA to convert the
carry-save pair produced by the chain of 3:2 CSAs into a single operand
(paper Fig. 3 / Fig. 4).

Two functional CPA models are provided:

* :func:`ripple_carry_add` -- a bit-by-bit ripple-carry adder.  Slowest
  logic-depth-wise but the simplest reference model.
* :func:`carry_lookahead_add` -- a block carry-lookahead adder, used to show
  (and test) that the functional result is identical while the logic depth
  is logarithmic.  The technology layer bases ``d_add`` on this structure.

Both operate on LSB-first bit vectors and model a fixed output width with
wrap-around, exactly like a hardware register capturing the adder output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from repro.arith.fixed_point import bits_to_int, int_to_bits, sign_extend, wrap_to_width


@dataclass(frozen=True)
class FullAdderResult:
    """Sum and carry-out of a single full adder."""

    sum: int
    carry: int


def half_adder(a: int, b: int) -> FullAdderResult:
    """Half adder: adds two bits, producing sum and carry."""
    _check_bit(a)
    _check_bit(b)
    return FullAdderResult(sum=a ^ b, carry=a & b)


def full_adder(a: int, b: int, cin: int) -> FullAdderResult:
    """Full adder: adds three bits, producing sum and carry.

    This is the primitive cell both of the ripple-carry CPA and of the 3:2
    carry-save adder (a CSA is one full adder per bit position with no
    carry chain).
    """
    _check_bit(a)
    _check_bit(b)
    _check_bit(cin)
    total = a + b + cin
    return FullAdderResult(sum=total & 1, carry=total >> 1)


def _check_bit(bit: int) -> None:
    if bit not in (0, 1):
        raise ValueError(f"expected a bit (0 or 1), got {bit!r}")


def _prepare_operands(
    a: Sequence[int], b: Sequence[int], width: int | None
) -> tuple[list[int], list[int], int]:
    if width is None:
        width = max(len(a), len(b))
    if width <= 0:
        raise ValueError("adder width must be positive")
    return sign_extend(a, width), sign_extend(b, width), width


def ripple_carry_add(
    a: Sequence[int],
    b: Sequence[int],
    cin: int = 0,
    width: int | None = None,
) -> tuple[list[int], int]:
    """Add two two's-complement bit vectors with a ripple-carry chain.

    Returns ``(sum_bits, carry_out)`` where ``sum_bits`` has ``width`` bits
    (default: the wider of the two operands).  Overflow wraps, as it would
    in a hardware register of that width.

    >>> s, _ = ripple_carry_add([1, 0, 1, 0], [1, 0, 0, 0])  # 5 + 1
    >>> s
    [0, 1, 1, 0]
    """
    a_bits, b_bits, width = _prepare_operands(a, b, width)
    _check_bit(cin)
    carry = cin
    out: list[int] = []
    for bit_a, bit_b in zip(a_bits, b_bits):
        result = full_adder(bit_a, bit_b, carry)
        out.append(result.sum)
        carry = result.carry
    return out, carry


def carry_lookahead_add(
    a: Sequence[int],
    b: Sequence[int],
    cin: int = 0,
    width: int | None = None,
    block_size: int = 4,
) -> tuple[list[int], int]:
    """Add two bit vectors using block carry-lookahead.

    Carries are computed per block from generate/propagate signals instead
    of rippling bit by bit.  Functionally identical to
    :func:`ripple_carry_add`; exists so that the test suite can assert the
    equivalence and so the delay model can reason about a realistic
    logarithmic-depth CPA.
    """
    if block_size <= 0:
        raise ValueError("block_size must be positive")
    a_bits, b_bits, width = _prepare_operands(a, b, width)
    _check_bit(cin)

    generate = [bit_a & bit_b for bit_a, bit_b in zip(a_bits, b_bits)]
    propagate = [bit_a ^ bit_b for bit_a, bit_b in zip(a_bits, b_bits)]

    carries = [cin]
    block_carry = cin
    for block_start in range(0, width, block_size):
        block_end = min(block_start + block_size, width)
        carry = block_carry
        for i in range(block_start, block_end):
            # carry into bit i+1
            carry = generate[i] | (propagate[i] & carry)
            carries.append(carry)
        block_carry = carries[-1]

    sum_bits = [propagate[i] ^ carries[i] for i in range(width)]
    return sum_bits, carries[width]


def add_ints(a: int, b: int, width: int) -> int:
    """Add two integers through the bit-level CPA and wrap to ``width`` bits.

    Convenience wrapper used by the PE functional model.
    """
    a_bits = int_to_bits(wrap_to_width(a, width), width)
    b_bits = int_to_bits(wrap_to_width(b, width), width)
    sum_bits, _ = ripple_carry_add(a_bits, b_bits, width=width)
    return bits_to_int(sum_bits)


def ripple_carry_gate_count(width: int) -> int:
    """Number of 2-input-gate equivalents in a ``width``-bit ripple CPA.

    A full adder is counted as 5 gate equivalents (2 XOR, 2 AND, 1 OR),
    the conventional standard-cell approximation used for area estimates.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    return 5 * width


def ripple_carry_logic_depth(width: int) -> int:
    """Logic depth (in gate levels) of a ``width``-bit ripple-carry CPA."""
    if width <= 0:
        raise ValueError("width must be positive")
    # Two gate levels per full adder along the carry chain, plus the final
    # sum XOR.
    return 2 * width + 1


def lookahead_logic_depth(width: int, block_size: int = 4) -> int:
    """Approximate logic depth of a block carry-lookahead CPA.

    Depth grows with the number of blocks traversed (one AND-OR level per
    block) plus constant levels for P/G generation and the final sum XOR.
    The timing layer uses this to justify ``d_add`` being far smaller than
    a rippled 64-bit addition while still growing (slowly) with width.
    """
    if width <= 0 or block_size <= 0:
        raise ValueError("width and block_size must be positive")
    blocks = math.ceil(width / block_size)
    return 2 + 2 * blocks + 1
