"""3:2 carry-save adders and carry-save accumulation chains.

The key micro-architectural idea that makes transparent pipeline collapsing
practical (paper Section III-B) is that, inside a collapsed group of k PEs,
the k products are *not* added with k carry-propagate adders in series.
Instead each PE contributes one 3:2 carry-save adder (CSA) stage and only
the last PE of the group resolves the running (sum, carry) pair with its
carry-propagate adder.  The critical path therefore grows by only
``k * (d_CSA + 2 d_mux)`` rather than ``k * d_add`` (Eq. 5).

This module models that datapath functionally, at the bit level:

* :func:`carry_save_add` -- one 3:2 CSA stage: three operands in,
  (sum, carry) pair out, no horizontal carry propagation.
* :func:`carry_save_accumulate` -- a chain of CSA stages absorbing a list
  of addends into a running carry-save pair, exactly as a collapsed column
  of PEs does.
* :func:`carry_save_resolve` -- the final carry-propagate addition
  performed by the last PE of the group.

All values wrap at the accumulator width, mirroring hardware behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.arith.adders import full_adder, ripple_carry_add, ripple_carry_gate_count
from repro.arith.fixed_point import (
    DEFAULT_ACCUM_WIDTH,
    bits_to_int,
    int_to_bits,
    sign_extend,
    wrap_to_width,
)


@dataclass(frozen=True)
class CarrySaveState:
    """A redundant (sum, carry) representation of a partial result.

    ``value`` decodes the pair back into a single two's-complement integer
    (what the carry-propagate adder would produce); it is what tests and
    the PE functional model compare against.
    """

    sum_bits: tuple[int, ...]
    carry_bits: tuple[int, ...]

    @property
    def width(self) -> int:
        return len(self.sum_bits)

    @property
    def value(self) -> int:
        """Resolved integer value of the carry-save pair (wrapped to width)."""
        total = bits_to_int(list(self.sum_bits)) + bits_to_int(list(self.carry_bits))
        return wrap_to_width(total, self.width)

    @classmethod
    def zero(cls, width: int = DEFAULT_ACCUM_WIDTH) -> "CarrySaveState":
        """The all-zero carry-save state (used when a column starts reducing)."""
        if width <= 0:
            raise ValueError("width must be positive")
        zeros = tuple([0] * width)
        return cls(sum_bits=zeros, carry_bits=zeros)

    @classmethod
    def from_int(cls, value: int, width: int = DEFAULT_ACCUM_WIDTH) -> "CarrySaveState":
        """Encode a plain integer as a (value, 0) carry-save pair."""
        bits = tuple(int_to_bits(wrap_to_width(value, width), width))
        zeros = tuple([0] * width)
        return cls(sum_bits=bits, carry_bits=zeros)


def carry_save_add(
    a: Sequence[int], b: Sequence[int], c: Sequence[int], width: int | None = None
) -> CarrySaveState:
    """One 3:2 carry-save adder stage.

    Adds three LSB-first bit vectors and returns a redundant (sum, carry)
    pair such that ``sum + carry == a + b + c`` (mod 2**width).  Each bit
    position is an independent full adder; the carry vector is shifted left
    by one position, with the bit shifted out of the top dropped (wrapping,
    as in a fixed-width datapath).
    """
    if width is None:
        width = max(len(a), len(b), len(c))
    if width <= 0:
        raise ValueError("width must be positive")
    a_bits = sign_extend(a, width)
    b_bits = sign_extend(b, width)
    c_bits = sign_extend(c, width)

    sum_bits = []
    carry_raw = []
    for bit_a, bit_b, bit_c in zip(a_bits, b_bits, c_bits):
        result = full_adder(bit_a, bit_b, bit_c)
        sum_bits.append(result.sum)
        carry_raw.append(result.carry)
    # The carry out of bit i feeds bit i+1; the carry out of the MSB wraps
    # out of the fixed-width datapath and is dropped.
    carry_bits = [0] + carry_raw[: width - 1]
    return CarrySaveState(sum_bits=tuple(sum_bits), carry_bits=tuple(carry_bits))


def carry_save_accumulate(
    addends: Iterable[int],
    width: int = DEFAULT_ACCUM_WIDTH,
    initial: CarrySaveState | None = None,
) -> CarrySaveState:
    """Absorb ``addends`` into a carry-save accumulator, one CSA stage each.

    This is the vertical datapath of a collapsed group of PEs: the running
    (sum, carry) pair and the new product enter a 3:2 CSA; the output pair
    moves (combinationally) to the next PE of the group.

    >>> state = carry_save_accumulate([3, 4, 5], width=16)
    >>> state.value
    12
    """
    state = initial if initial is not None else CarrySaveState.zero(width)
    if state.width != width:
        raise ValueError(
            f"initial state width {state.width} does not match requested width {width}"
        )
    for addend in addends:
        addend_bits = int_to_bits(wrap_to_width(addend, width), width)
        state = carry_save_add(
            list(state.sum_bits), list(state.carry_bits), addend_bits, width=width
        )
    return state


def carry_save_resolve(state: CarrySaveState) -> int:
    """Resolve a carry-save pair with the final carry-propagate adder.

    Models the CPA of the last PE in a collapsed group (paper Fig. 4b):
    the redundant pair is converted to a single two's-complement operand
    before being written into the output pipeline register.
    """
    sum_bits, _ = ripple_carry_add(
        list(state.sum_bits), list(state.carry_bits), width=state.width
    )
    return bits_to_int(sum_bits)


def csa_gate_count(width: int) -> int:
    """Gate-equivalent count of a single ``width``-bit 3:2 CSA stage.

    One full adder (5 gate equivalents) per bit position, no carry chain.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    return 5 * width


def carry_save_chain_gate_count(width: int, stages: int) -> int:
    """Gate-equivalent count of ``stages`` cascaded CSA stages plus final CPA.

    Used by the area model to size the reduction datapath of a collapsed
    group of PEs.
    """
    if stages < 0:
        raise ValueError("stages must be non-negative")
    return stages * csa_gate_count(width) + ripple_carry_gate_count(width)


def csa_logic_depth() -> int:
    """Logic depth of a 3:2 CSA stage: a single full adder (2 gate levels).

    Independent of width -- this is exactly why the paper's collapsed
    critical path grows so slowly with k.
    """
    return 2
