"""Two's-complement fixed-point helpers.

All bit vectors in :mod:`repro.arith` are plain Python lists of 0/1
integers, least-significant bit first.  Using LSB-first ordering keeps the
ripple-carry and carry-save code straightforward (bit ``i`` of every operand
lines up at list index ``i``).

The ArrayFlex evaluation (paper Section IV) uses 32-bit quantized inputs and
weights with 64-bit column accumulation, so the helpers default to those
widths but accept any positive width.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

#: Default operand width used throughout the paper's evaluation (bits).
DEFAULT_INPUT_WIDTH = 32
#: Default accumulator width: products and column sums use double width.
DEFAULT_ACCUM_WIDTH = 64


def _check_width(width: int) -> None:
    if width <= 0:
        raise ValueError(f"bit width must be positive, got {width}")


def wrap_to_width(value: int, width: int) -> int:
    """Wrap ``value`` into the signed two's-complement range of ``width`` bits.

    This mimics what a hardware register of ``width`` bits stores when a
    wider result is written to it: the upper bits are simply dropped.

    >>> wrap_to_width(128, 8)
    -128
    >>> wrap_to_width(-129, 8)
    127
    """
    _check_width(width)
    mask = (1 << width) - 1
    unsigned = value & mask
    if unsigned >= 1 << (width - 1):
        return unsigned - (1 << width)
    return unsigned


def int_to_bits(value: int, width: int) -> list[int]:
    """Encode ``value`` as a two's-complement bit vector (LSB first).

    ``value`` must fit in ``width`` bits; otherwise a :class:`ValueError`
    is raised so that silent truncation never hides a modelling bug.

    >>> int_to_bits(5, 4)
    [1, 0, 1, 0]
    >>> int_to_bits(-1, 4)
    [1, 1, 1, 1]
    """
    _check_width(width)
    low = -(1 << (width - 1))
    high = (1 << (width - 1)) - 1
    if not low <= value <= high:
        raise ValueError(f"value {value} does not fit in {width} signed bits")
    unsigned = value & ((1 << width) - 1)
    return [(unsigned >> i) & 1 for i in range(width)]


def bits_to_int(bits: Sequence[int]) -> int:
    """Decode a two's-complement bit vector (LSB first) into a Python int.

    >>> bits_to_int([1, 0, 1, 0])
    5
    >>> bits_to_int([1, 1, 1, 1])
    -1
    """
    if not bits:
        raise ValueError("cannot decode an empty bit vector")
    for bit in bits:
        if bit not in (0, 1):
            raise ValueError(f"bit vector contains non-binary value {bit!r}")
    unsigned = 0
    for i, bit in enumerate(bits):
        unsigned |= bit << i
    width = len(bits)
    if bits[-1]:
        return unsigned - (1 << width)
    return unsigned


def sign_extend(bits: Sequence[int], width: int) -> list[int]:
    """Sign-extend an LSB-first bit vector to ``width`` bits.

    Extending is what the vertical (reduction) datapath of the PE does when
    a 2W-bit product enters the 2W-bit carry-save chain: the sign bit is
    replicated into the added positions.

    >>> sign_extend([1, 1], 4)   # -1 in 2 bits -> -1 in 4 bits
    [1, 1, 1, 1]
    """
    _check_width(width)
    if len(bits) > width:
        raise ValueError(
            f"cannot sign-extend {len(bits)} bits down to {width} bits"
        )
    extended = list(bits)
    sign = extended[-1] if extended else 0
    extended.extend([sign] * (width - len(extended)))
    return extended


def quantize_symmetric(
    values: np.ndarray, width: int = DEFAULT_INPUT_WIDTH
) -> tuple[np.ndarray, float]:
    """Symmetrically quantize floating-point ``values`` to ``width``-bit ints.

    The paper evaluates "32-bit quantized inputs and weights"; this helper
    converts a floating-point tensor (e.g. CNN activations or weights) into
    integers that the bit-level and cycle-level models consume.

    Returns the integer array (dtype ``int64``) and the scale factor such
    that ``values ≈ quantized * scale``.  An all-zero input returns scale 1.0.
    """
    _check_width(width)
    values = np.asarray(values, dtype=np.float64)
    max_abs = float(np.max(np.abs(values))) if values.size else 0.0
    qmax = (1 << (width - 1)) - 1
    if max_abs == 0.0:
        return np.zeros(values.shape, dtype=np.int64), 1.0
    scale = max_abs / qmax
    quantized = np.clip(np.round(values / scale), -qmax - 1, qmax)
    return quantized.astype(np.int64), scale


def product_width(input_width: int) -> int:
    """Width required to hold the full product of two ``input_width`` operands.

    The PE's vertical connections (carry-save adders and carry-propagate
    adder) use this doubled width (paper Section III-B).
    """
    _check_width(input_width)
    return 2 * input_width


def accumulator_range(width: int = DEFAULT_ACCUM_WIDTH) -> tuple[int, int]:
    """Inclusive (min, max) representable range of a ``width``-bit accumulator."""
    _check_width(width)
    return -(1 << (width - 1)), (1 << (width - 1)) - 1
