"""ArrayFlex reproduction: a systolic array with configurable transparent pipelining.

This package is a full Python reproduction of *ArrayFlex: A Systolic Array
Architecture with Configurable Transparent Pipelining* (DATE 2023):

* :mod:`repro.core` -- the ArrayFlex contribution: latency/clock models
  (Eqs. 1-6), the per-layer pipeline-depth optimizer (Eq. 7), the CNN
  scheduler, the structured :class:`~repro.core.metrics.LayerMetrics`
  result model, the pluggable per-layer activity models
  (:mod:`repro.core.activity`), the energy model and the public
  accelerator facade.
* :mod:`repro.arch`, :mod:`repro.sim` -- the systolic-array substrate: a
  structural PE/array model and a cycle-accurate weight-stationary
  simulator supporting normal and collapsed (shallow) pipelines.
* :mod:`repro.arith` -- bit-level adders, carry-save adders and
  multipliers backing the PE datapath.
* :mod:`repro.timing` -- the calibrated 28 nm technology, delay (Eq. 5),
  STA, area and power models.
* :mod:`repro.nn` -- the CNN workload substrate (ResNet-34, MobileNetV1,
  ConvNeXt-T) and the conv-to-GEMM lowering.
* :mod:`repro.workloads` -- the first-class workload subsystem: the
  string-keyed registry with suite grouping, the transformer front-end
  (BERT-Base / ViT-B/16 prefill, GPT-2-style decode) and the
  batch-scaling adapter for batched inference.
* :mod:`repro.baselines` -- the conventional fixed-pipeline baseline.
* :mod:`repro.backends` -- pluggable execution backends: the analytical
  reference, the batched/cached fast path (identical numbers), the
  calibrated sampled-simulation path (measured estimates with per-layer
  statistical error bounds) and the cycle-accurate measured path, all
  behind one protocol; plus the disk-persistent decision cache
  (:mod:`repro.backends.store`).
* :mod:`repro.serve` -- the serving layer: the versioned
  :class:`~repro.serve.protocol.Request`/``Response`` protocol, the
  deduplicating ``submit()`` service over thread/process executors, and
  the HTTP/JSON scheduler daemon (``python -m repro serve``).
* :mod:`repro.eval` -- the experiment harness regenerating every figure of
  the paper's evaluation.

Quickstart
----------
>>> from repro import ArrayFlexAccelerator
>>> from repro.nn import convnext_tiny
>>> accel = ArrayFlexAccelerator(rows=128, cols=128)
>>> report = accel.compare_with_conventional(convnext_tiny())
>>> 0.05 < report.latency_saving < 0.2
True
"""

from repro.backends import (
    AnalyticalBackend,
    BatchedCachedBackend,
    CycleAccurateBackend,
    DecisionStore,
    ExecutionBackend,
    SampledSimBackend,
    create_backend,
    default_cache_dir,
)
from repro.core.activity import (
    ActivityModel,
    ConstantActivity,
    UtilizationActivity,
    create_activity_model,
)
from repro.core.arrayflex import ArrayFlexAccelerator, ComparisonReport
from repro.core.config import ArrayFlexConfig
from repro.core.metrics import LayerMetrics
from repro.baselines.conventional import ConventionalAccelerator
from repro.nn.gemm_mapping import GemmShape
from repro.serve import Request, Response, ScheduleRequest, SchedulingService
from repro.timing.technology import TechnologyModel
from repro.workloads import (
    TransformerConfig,
    get_suite,
    get_workload,
    list_suites,
    list_workloads,
    register_workload,
)

__version__ = "1.5.0"

__all__ = [
    "ActivityModel",
    "AnalyticalBackend",
    "ArrayFlexAccelerator",
    "ArrayFlexConfig",
    "BatchedCachedBackend",
    "ComparisonReport",
    "ConstantActivity",
    "ConventionalAccelerator",
    "CycleAccurateBackend",
    "DecisionStore",
    "ExecutionBackend",
    "GemmShape",
    "LayerMetrics",
    "SampledSimBackend",
    "UtilizationActivity",
    "create_activity_model",
    "Request",
    "Response",
    "ScheduleRequest",
    "SchedulingService",
    "TechnologyModel",
    "TransformerConfig",
    "create_backend",
    "default_cache_dir",
    "get_suite",
    "get_workload",
    "list_suites",
    "list_workloads",
    "register_workload",
    "__version__",
]
