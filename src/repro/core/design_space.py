"""Design-space exploration around the ArrayFlex design point.

The paper evaluates two array sizes (128x128 and 256x256) and one supported
mode set ({1, 2, 4}).  A natural question for anyone adopting the
architecture is how those choices generalise: would supporting k = 8 help?
Is a rectangular array better for a given workload mix?  How much latency
is left on the table by restricting the mode set?

:class:`DesignSpaceExplorer` answers these questions with the same models
used for the paper experiments: every candidate design point (array
geometry + supported collapse depths) is evaluated over a workload suite
and scored on latency saving, power saving, EDP gain and area overhead
relative to a conventional fixed-pipeline array of the same geometry.

Evaluation runs on a pluggable execution backend (default: the batched /
cached backend, which memoises mode decisions across design points and is
numerically identical to the analytical reference).  Pass ``cache_dir`` to
persist those decisions on disk, so a rerun sweep — another CLI
invocation, a CI job — starts warm and skips the mode search entirely.

Multi-point sweeps fan out through the batch-serving front-end
(:class:`repro.serve.SchedulingService`) over a process pool: pass
``max_workers`` explicitly, or let large candidate sets default to one
worker per CPU.  Workers share warmth through the decision store when a
``cache_dir`` is configured.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import ArrayFlexConfig
from repro.nn.models import CnnModel
from repro.timing.area_model import AreaModel
from repro.timing.technology import TechnologyModel

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.backends import ExecutionBackend, ModelTotals
    from repro.core.activity import ActivityModel
    from repro.workloads.base import Workload

#: Candidate-set size from which ``explore`` fans out over a process pool
#: by default (when ``max_workers`` was not pinned anywhere).  Below this
#: the serial batched path wins outright: it finishes typical sweeps in
#: milliseconds through the totals fast path, while every pool worker
#: pays interpreter spawn + package import before its first point.
AUTO_PARALLEL_MIN_POINTS = 64


@dataclass(frozen=True)
class DesignPoint:
    """One candidate ArrayFlex configuration to evaluate."""

    rows: int
    cols: int
    supported_depths: tuple[int, ...]

    @property
    def label(self) -> str:
        depths = ",".join(str(d) for d in sorted(self.supported_depths))
        return f"{self.rows}x{self.cols} k={{{depths}}}"


@dataclass(frozen=True)
class DesignPointResult:
    """Aggregate metrics of one design point over a workload suite."""

    point: DesignPoint
    latency_saving: float
    power_saving: float
    edp_gain: float
    pe_area_overhead: float
    arrayflex_time_ms: float
    conventional_time_ms: float
    per_model_latency_saving: dict[str, float]

    @property
    def label(self) -> str:
        return self.point.label


class DesignSpaceExplorer:
    """Evaluates and ranks candidate ArrayFlex design points."""

    def __init__(
        self,
        models: list[CnnModel | Workload | str],
        technology: TechnologyModel | None = None,
        backend: ExecutionBackend | str | None = None,
        max_workers: int | None = None,
        cache_dir: str | os.PathLike[str] | None = None,
        activity_model: "ActivityModel | str | None" = None,
    ) -> None:
        from repro.backends import attach_store, create_backend
        from repro.core.activity import create_activity_model

        if not models:
            raise ValueError("the workload suite must contain at least one model")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        #: Workloads scoring every candidate point.  Accepts CNN layer
        #: tables, any :class:`repro.workloads` workload object, or
        #: registry names (``"bert_base"``, ``"resnet34@bs8"``) — names
        #: resolve once here, so sweep identity is fixed at construction.
        self.models = [self._resolve_model(model) for model in models]
        self.technology = technology or TechnologyModel.default_28nm()
        #: Backend evaluating every (design point, model) pair.  Defaults
        #: to the batched/cached backend: bit-identical to the analytical
        #: reference and much faster on sweeps, where workloads repeat.
        #: ``cache_dir`` attaches the disk-persistent decision store.
        self.backend = create_backend(attach_store(backend, cache_dir), default="batched")
        self.max_workers = max_workers
        #: Activity model every candidate configuration is evaluated
        #: under (``None``/"constant" keeps the bit-identical default;
        #: "utilization" prices edge-tile underfill per layer).  Part of
        #: every candidate's ``cache_key``, so cached decisions, store
        #: shards and serving dedup keys never mix activity models.
        self.activity_model = create_activity_model(activity_model)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_model(model: CnnModel | Workload | str) -> CnnModel | Workload:
        if isinstance(model, str):
            from repro.workloads import get_workload

            return get_workload(model)
        return model

    @classmethod
    def from_suite(
        cls, suite: str, batch: int = 1, **kwargs
    ) -> "DesignSpaceExplorer":
        """An explorer over a whole registry suite (``"cnn"``,
        ``"transformers"``, ...), optionally batch-scaled."""
        from repro.workloads import get_suite

        return cls(list(get_suite(suite, batch=batch)), **kwargs)

    # ------------------------------------------------------------------ #
    def evaluate_point(self, point: DesignPoint) -> DesignPointResult:
        """Evaluate one candidate design point over the workload suite."""
        config = self._config_for(point)
        pairs = [
            (
                self._model_totals(model, config, conventional=False),
                self._model_totals(model, config, conventional=True),
            )
            for model in self.models
        ]
        return self._aggregate(point, config, pairs)

    def _config_for(self, point: DesignPoint) -> ArrayFlexConfig:
        return ArrayFlexConfig(
            rows=point.rows,
            cols=point.cols,
            supported_depths=point.supported_depths,
            technology=self.technology,
            activity_model=self.activity_model,
        )

    def _model_totals(
        self, model: "CnnModel | Workload", config: ArrayFlexConfig, conventional: bool
    ) -> "ModelTotals":
        from repro.backends import model_totals

        return model_totals(self.backend, model, config, conventional=conventional)

    def _aggregate(
        self,
        point: DesignPoint,
        config: ArrayFlexConfig,
        pairs: list[tuple["ModelTotals", "ModelTotals"]],
    ) -> DesignPointResult:
        """Fold per-model (ArrayFlex, conventional) totals into one score."""
        area = AreaModel(self.technology)
        total_conv_time = 0.0
        total_af_time = 0.0
        total_conv_energy = 0.0
        total_af_energy = 0.0
        per_model_saving: dict[str, float] = {}

        for model, (arrayflex, conventional) in zip(self.models, pairs):
            per_model_saving[model.name] = 1.0 - arrayflex.time_ns / conventional.time_ns
            total_conv_time += conventional.time_ns
            total_af_time += arrayflex.time_ns
            total_conv_energy += conventional.energy_nj
            total_af_energy += arrayflex.energy_nj

        conv_power = total_conv_energy / total_conv_time
        af_power = total_af_energy / total_af_time
        conv_edp = total_conv_energy * total_conv_time
        af_edp = total_af_energy * total_af_time

        return DesignPointResult(
            point=point,
            latency_saving=1.0 - total_af_time / total_conv_time,
            power_saving=1.0 - af_power / conv_power,
            edp_gain=conv_edp / af_edp,
            pe_area_overhead=area.pe_area_overhead(),
            arrayflex_time_ms=total_af_time / 1e6,
            conventional_time_ms=total_conv_time / 1e6,
            per_model_latency_saving=per_model_saving,
        )

    # ------------------------------------------------------------------ #
    def explore(
        self, points: list[DesignPoint], max_workers: int | None = None
    ) -> list[DesignPointResult]:
        """Evaluate a list of candidate points (in the given order).

        With ``max_workers`` (here or on the constructor) greater than 1,
        the points fan out over the batch-serving front-end's process
        pool; results come back in input order either way.  When no
        worker count was pinned anywhere, sweeps of at least
        :data:`AUTO_PARALLEL_MIN_POINTS` points default to one worker per
        CPU — the production posture for genuinely large sweeps, where
        the per-worker spawn/import cost amortises.
        """
        from repro.obs.trace import get_tracer

        if not points:
            raise ValueError("no design points to explore")
        workers = max_workers if max_workers is not None else self.max_workers
        if (
            workers is None
            and len(points) >= AUTO_PARALLEL_MIN_POINTS
            and self._auto_parallel_safe()
        ):
            workers = os.cpu_count() or 1
        parallel = workers is not None and workers > 1 and len(points) > 1
        with get_tracer().span(
            "explorer.explore",
            points=len(points),
            models=len(self.models),
            parallel=parallel,
        ):
            if parallel:
                return self._explore_parallel(points, workers)
            return [self.evaluate_point(point) for point in points]

    def _auto_parallel_safe(self) -> bool:
        """Whether the *implicit* process-pool fan-out may kick in.

        Explicit ``max_workers`` is always honoured; the automatic default
        is conservative, because a process pool imposes requirements a
        previously-serial call never had: the backend must survive
        pickling (guaranteed for the stock batched backend, not for
        arbitrary protocol implementations) and the ``spawn`` start
        method re-imports ``__main__``, which breaks unguarded scripts —
        so only the ``fork`` method qualifies.
        """
        import multiprocessing

        from repro.backends import BatchedCachedBackend

        import threading

        if not isinstance(self.backend, BatchedCachedBackend):
            return False
        # fork() from a multithreaded process can wedge a child on an
        # orphaned lock; the implicit default never takes that gamble.
        if threading.active_count() > 1:
            return False
        try:
            # allow_none: reading must not fix the start method as a side
            # effect — the host application may still want to choose one.
            method = multiprocessing.get_start_method(allow_none=True)
            if method is None:
                method = multiprocessing.get_all_start_methods()[0]
            return method == "fork"
        except (ValueError, RuntimeError):  # pragma: no cover - exotic platforms
            return False

    def _explore_parallel(
        self, points: list[DesignPoint], workers: int
    ) -> list[DesignPointResult]:
        """Fan the sweep out through the batch-serving front-end.

        Every (point, model) pair becomes two totals-only service
        requests (ArrayFlex and conventional) — workers run the backend's
        totals fast path and ship two floats back instead of pickling
        per-layer schedules.  The service deduplicates repeated pairs,
        the backend instance shipped to each worker carries the parent's
        cache state, and a configured decision store keeps the workers'
        warmth shared across the pool and across runs.
        """
        from repro.serve import SchedulingService

        configs = [self._config_for(point) for point in points]
        with SchedulingService(
            backend=self.backend,
            executor="process",
            # Tasks are per (point, model, baseline), so that product — not
            # the point count — bounds useful parallelism.
            max_workers=min(workers, 2 * len(points) * len(self.models)),
        ) as service:
            pairs = [
                (arrayflex.unwrap(), conventional.unwrap())
                for arrayflex, conventional in service.compare(
                    ((model, config) for config in configs for model in self.models),
                    totals_only=True,
                )
            ]
        span = len(self.models)
        return [
            self._aggregate(point, config, pairs[i * span : (i + 1) * span])
            for i, (point, config) in enumerate(zip(points, configs))
        ]

    def rank(
        self, points: list[DesignPoint], objective: str = "edp_gain"
    ) -> list[DesignPointResult]:
        """Evaluate and sort candidates by an objective (best first).

        Supported objectives: ``edp_gain``, ``latency_saving``,
        ``power_saving``.
        """
        valid = {"edp_gain", "latency_saving", "power_saving"}
        if objective not in valid:
            raise ValueError(f"objective must be one of {sorted(valid)}")
        results = self.explore(points)
        return sorted(results, key=lambda r: getattr(r, objective), reverse=True)

    # ------------------------------------------------------------------ #
    @staticmethod
    def default_candidates() -> list[DesignPoint]:
        """A reasonable sweep around the paper's design points."""
        candidates = []
        for size in (64, 128, 256):
            for depths in ((1, 2), (1, 2, 4), (1, 2, 4, 8)):
                if all(size % d == 0 for d in depths):
                    candidates.append(
                        DesignPoint(rows=size, cols=size, supported_depths=depths)
                    )
        return candidates
