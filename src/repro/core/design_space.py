"""Design-space exploration around the ArrayFlex design point.

The paper evaluates two array sizes (128x128 and 256x256) and one supported
mode set ({1, 2, 4}).  A natural question for anyone adopting the
architecture is how those choices generalise: would supporting k = 8 help?
Is a rectangular array better for a given workload mix?  How much latency
is left on the table by restricting the mode set?

:class:`DesignSpaceExplorer` answers these questions with the same models
used for the paper experiments: every candidate design point (array
geometry + supported collapse depths) is evaluated over a workload suite
and scored on latency saving, power saving, EDP gain and area overhead
relative to a conventional fixed-pipeline array of the same geometry.

Evaluation runs on a pluggable execution backend (default: the batched /
cached backend, which memoises mode decisions across design points and is
numerically identical to the analytical reference).  Multi-point sweeps
can additionally fan out over a process pool: pass ``max_workers`` to the
constructor or to :meth:`DesignSpaceExplorer.explore`.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.config import ArrayFlexConfig
from repro.nn.models import CnnModel
from repro.timing.area_model import AreaModel
from repro.timing.technology import TechnologyModel

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.backends import ExecutionBackend


@dataclass(frozen=True)
class DesignPoint:
    """One candidate ArrayFlex configuration to evaluate."""

    rows: int
    cols: int
    supported_depths: tuple[int, ...]

    @property
    def label(self) -> str:
        depths = ",".join(str(d) for d in sorted(self.supported_depths))
        return f"{self.rows}x{self.cols} k={{{depths}}}"


@dataclass(frozen=True)
class DesignPointResult:
    """Aggregate metrics of one design point over a workload suite."""

    point: DesignPoint
    latency_saving: float
    power_saving: float
    edp_gain: float
    pe_area_overhead: float
    arrayflex_time_ms: float
    conventional_time_ms: float
    per_model_latency_saving: dict[str, float]

    @property
    def label(self) -> str:
        return self.point.label


#: Per-worker explorer built once by :func:`_init_worker`; reused across
#: every design point the worker evaluates, so backend memoisation spans
#: the worker's whole share of the sweep.
_WORKER_EXPLORER: "DesignSpaceExplorer | None" = None


def _init_worker(
    models: list[CnnModel],
    technology: TechnologyModel,
    backend: "ExecutionBackend",
) -> None:
    """Process-pool initializer: build one explorer per worker process.

    The backend *instance* is shipped (pickled) once per worker, so custom
    backend subclasses and non-default configurations (e.g. a tuned cache
    size) survive the fan-out, and whatever cache state the parent already
    accumulated seeds every worker.
    """
    global _WORKER_EXPLORER
    _WORKER_EXPLORER = DesignSpaceExplorer(models, technology, backend=backend)


def _evaluate_point_task(point: DesignPoint) -> DesignPointResult:
    """Process-pool task: evaluate one point on the worker-global explorer."""
    assert _WORKER_EXPLORER is not None, "worker initializer did not run"
    return _WORKER_EXPLORER.evaluate_point(point)


class DesignSpaceExplorer:
    """Evaluates and ranks candidate ArrayFlex design points."""

    def __init__(
        self,
        models: list[CnnModel],
        technology: TechnologyModel | None = None,
        backend: ExecutionBackend | str | None = None,
        max_workers: int | None = None,
    ) -> None:
        from repro.backends import create_backend

        if not models:
            raise ValueError("the workload suite must contain at least one model")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        self.models = models
        self.technology = technology or TechnologyModel.default_28nm()
        #: Backend evaluating every (design point, model) pair.  Defaults
        #: to the batched/cached backend: bit-identical to the analytical
        #: reference and much faster on sweeps, where workloads repeat.
        self.backend = create_backend(backend, default="batched")
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    def evaluate_point(self, point: DesignPoint) -> DesignPointResult:
        """Evaluate one candidate design point over the workload suite."""
        config = ArrayFlexConfig(
            rows=point.rows,
            cols=point.cols,
            supported_depths=point.supported_depths,
            technology=self.technology,
        )
        area = AreaModel(self.technology)

        total_conv_time = 0.0
        total_af_time = 0.0
        total_conv_energy = 0.0
        total_af_energy = 0.0
        per_model_saving: dict[str, float] = {}

        for model in self.models:
            arrayflex = self.backend.schedule_model(model, config)
            conventional = self.backend.schedule_model_conventional(model, config)
            per_model_saving[model.name] = (
                1.0 - arrayflex.total_time_ns / conventional.total_time_ns
            )
            total_conv_time += conventional.total_time_ns
            total_af_time += arrayflex.total_time_ns
            total_conv_energy += conventional.total_energy_nj
            total_af_energy += arrayflex.total_energy_nj

        conv_power = total_conv_energy / total_conv_time
        af_power = total_af_energy / total_af_time
        conv_edp = total_conv_energy * total_conv_time
        af_edp = total_af_energy * total_af_time

        return DesignPointResult(
            point=point,
            latency_saving=1.0 - total_af_time / total_conv_time,
            power_saving=1.0 - af_power / conv_power,
            edp_gain=conv_edp / af_edp,
            pe_area_overhead=area.pe_area_overhead(),
            arrayflex_time_ms=total_af_time / 1e6,
            conventional_time_ms=total_conv_time / 1e6,
            per_model_latency_saving=per_model_saving,
        )

    # ------------------------------------------------------------------ #
    def explore(
        self, points: list[DesignPoint], max_workers: int | None = None
    ) -> list[DesignPointResult]:
        """Evaluate a list of candidate points (in the given order).

        With ``max_workers`` (here or on the constructor) greater than 1,
        the points are fanned out over a process pool; results come back
        in input order either way.
        """
        if not points:
            raise ValueError("no design points to explore")
        workers = max_workers if max_workers is not None else self.max_workers
        if workers is not None and workers > 1 and len(points) > 1:
            return self._explore_parallel(points, workers)
        return [self.evaluate_point(point) for point in points]

    def _explore_parallel(
        self, points: list[DesignPoint], workers: int
    ) -> list[DesignPointResult]:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(points)),
            initializer=_init_worker,
            initargs=(self.models, self.technology, self.backend),
        ) as pool:
            return list(pool.map(_evaluate_point_task, points))

    def rank(
        self, points: list[DesignPoint], objective: str = "edp_gain"
    ) -> list[DesignPointResult]:
        """Evaluate and sort candidates by an objective (best first).

        Supported objectives: ``edp_gain``, ``latency_saving``,
        ``power_saving``.
        """
        valid = {"edp_gain", "latency_saving", "power_saving"}
        if objective not in valid:
            raise ValueError(f"objective must be one of {sorted(valid)}")
        results = self.explore(points)
        return sorted(results, key=lambda r: getattr(r, objective), reverse=True)

    # ------------------------------------------------------------------ #
    @staticmethod
    def default_candidates() -> list[DesignPoint]:
        """A reasonable sweep around the paper's design points."""
        candidates = []
        for size in (64, 128, 256):
            for depths in ((1, 2), (1, 2, 4), (1, 2, 4, 8)):
                if all(size % d == 0 for d in depths):
                    candidates.append(
                        DesignPoint(rows=size, cols=size, supported_depths=depths)
                    )
        return candidates
