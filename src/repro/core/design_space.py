"""Design-space exploration around the ArrayFlex design point.

The paper evaluates two array sizes (128x128 and 256x256) and one supported
mode set ({1, 2, 4}).  A natural question for anyone adopting the
architecture is how those choices generalise: would supporting k = 8 help?
Is a rectangular array better for a given workload mix?  How much latency
is left on the table by restricting the mode set?

:class:`DesignSpaceExplorer` answers these questions with the same models
used for the paper experiments: every candidate design point (array
geometry + supported collapse depths) is evaluated over a workload suite
and scored on latency saving, power saving, EDP gain and area overhead
relative to a conventional fixed-pipeline array of the same geometry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ArrayFlexConfig
from repro.core.scheduler import Scheduler
from repro.nn.models import CnnModel
from repro.timing.area_model import AreaModel
from repro.timing.technology import TechnologyModel


@dataclass(frozen=True)
class DesignPoint:
    """One candidate ArrayFlex configuration to evaluate."""

    rows: int
    cols: int
    supported_depths: tuple[int, ...]

    @property
    def label(self) -> str:
        depths = ",".join(str(d) for d in sorted(self.supported_depths))
        return f"{self.rows}x{self.cols} k={{{depths}}}"


@dataclass(frozen=True)
class DesignPointResult:
    """Aggregate metrics of one design point over a workload suite."""

    point: DesignPoint
    latency_saving: float
    power_saving: float
    edp_gain: float
    pe_area_overhead: float
    arrayflex_time_ms: float
    conventional_time_ms: float
    per_model_latency_saving: dict[str, float]

    @property
    def label(self) -> str:
        return self.point.label


class DesignSpaceExplorer:
    """Evaluates and ranks candidate ArrayFlex design points."""

    def __init__(
        self,
        models: list[CnnModel],
        technology: TechnologyModel | None = None,
    ) -> None:
        if not models:
            raise ValueError("the workload suite must contain at least one model")
        self.models = models
        self.technology = technology or TechnologyModel.default_28nm()

    # ------------------------------------------------------------------ #
    def evaluate_point(self, point: DesignPoint) -> DesignPointResult:
        """Evaluate one candidate design point over the workload suite."""
        config = ArrayFlexConfig(
            rows=point.rows,
            cols=point.cols,
            supported_depths=point.supported_depths,
            technology=self.technology,
        )
        scheduler = Scheduler(config)
        area = AreaModel(self.technology)

        total_conv_time = 0.0
        total_af_time = 0.0
        total_conv_energy = 0.0
        total_af_energy = 0.0
        per_model_saving: dict[str, float] = {}

        for model in self.models:
            arrayflex = scheduler.schedule_model_arrayflex(model)
            conventional = scheduler.schedule_model_conventional(model)
            per_model_saving[model.name] = (
                1.0 - arrayflex.total_time_ns / conventional.total_time_ns
            )
            total_conv_time += conventional.total_time_ns
            total_af_time += arrayflex.total_time_ns
            total_conv_energy += conventional.total_energy_nj
            total_af_energy += arrayflex.total_energy_nj

        conv_power = total_conv_energy / total_conv_time
        af_power = total_af_energy / total_af_time
        conv_edp = total_conv_energy * total_conv_time
        af_edp = total_af_energy * total_af_time

        return DesignPointResult(
            point=point,
            latency_saving=1.0 - total_af_time / total_conv_time,
            power_saving=1.0 - af_power / conv_power,
            edp_gain=conv_edp / af_edp,
            pe_area_overhead=area.pe_area_overhead(),
            arrayflex_time_ms=total_af_time / 1e6,
            conventional_time_ms=total_conv_time / 1e6,
            per_model_latency_saving=per_model_saving,
        )

    # ------------------------------------------------------------------ #
    def explore(self, points: list[DesignPoint]) -> list[DesignPointResult]:
        """Evaluate a list of candidate points (in the given order)."""
        if not points:
            raise ValueError("no design points to explore")
        return [self.evaluate_point(point) for point in points]

    def rank(
        self, points: list[DesignPoint], objective: str = "edp_gain"
    ) -> list[DesignPointResult]:
        """Evaluate and sort candidates by an objective (best first).

        Supported objectives: ``edp_gain``, ``latency_saving``,
        ``power_saving``.
        """
        valid = {"edp_gain", "latency_saving", "power_saving"}
        if objective not in valid:
            raise ValueError(f"objective must be one of {sorted(valid)}")
        results = self.explore(points)
        return sorted(results, key=lambda r: getattr(r, objective), reverse=True)

    # ------------------------------------------------------------------ #
    @staticmethod
    def default_candidates() -> list[DesignPoint]:
        """A reasonable sweep around the paper's design points."""
        candidates = []
        for size in (64, 128, 256):
            for depths in ((1, 2), (1, 2, 4), (1, 2, 4, 8)):
                if all(size % d == 0 for d in depths):
                    candidates.append(
                        DesignPoint(rows=size, cols=size, supported_depths=depths)
                    )
        return candidates
