"""Power, energy and energy-delay-product accounting.

The paper's Fig. 9 reports the *average power* of each accelerator over a
complete CNN run and notes that ArrayFlex spends most of its time in
shallow modes, where the lower clock and the clock-gated transparent
registers more than compensate for the extra switched capacitance.

This module turns per-layer execution times and pipeline modes into:

* per-layer power (mW) and energy (nJ),
* run-level totals: energy, time, *time-weighted average power*
  (total energy / total time, exactly how a power meter averaging over the
  run would report it), and
* the energy-delay product (EDP) used for the paper's 1.4x-1.8x claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.activity import tiling_utilization
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape
from repro.timing.power_model import ArrayPowerBreakdown, PowerModel


@dataclass(frozen=True)
class LayerEnergyReport:
    """Power and energy of one layer executed in one pipeline mode."""

    gemm: GemmShape
    collapse_depth: int
    power_mw: float
    execution_time_ns: float

    @property
    def energy_nj(self) -> float:
        """Energy in nanojoules (mW x ns = pJ; divided by 1000 for nJ)."""
        return self.power_mw * self.execution_time_ns / 1000.0


@dataclass(frozen=True)
class RunEnergyReport:
    """Aggregate energy metrics of a complete model run."""

    total_time_ns: float
    total_energy_nj: float

    @property
    def average_power_mw(self) -> float:
        """Time-weighted average power over the run."""
        if self.total_time_ns == 0:
            return 0.0
        return self.total_energy_nj * 1000.0 / self.total_time_ns

    @property
    def energy_delay_product(self) -> float:
        """EDP in nJ x ns (only ratios between designs are meaningful)."""
        return self.total_energy_nj * self.total_time_ns


class EnergyModel:
    """Computes layer and run energy for both accelerator variants."""

    def __init__(self, config: ArrayFlexConfig) -> None:
        self.config = config
        self.power_model = PowerModel(config.technology)

    # ------------------------------------------------------------------ #
    # Per-layer power
    # ------------------------------------------------------------------ #
    def arrayflex_power_mw(self, collapse_depth: int, frequency_ghz: float) -> float:
        """Array power of ArrayFlex in one pipeline mode at one frequency."""
        return self.power_model.arrayflex_array_power_mw(
            rows=self.config.rows,
            cols=self.config.cols,
            collapse_depth=collapse_depth,
            frequency_ghz=frequency_ghz,
            activity=self.config.activity,
        )

    def conventional_power_mw(self, frequency_ghz: float) -> float:
        """Array power of the conventional baseline at one frequency."""
        return self.power_model.conventional_array_power_mw(
            rows=self.config.rows,
            cols=self.config.cols,
            frequency_ghz=frequency_ghz,
            activity=self.config.activity,
        )

    # ------------------------------------------------------------------ #
    # Activity-aware per-layer power (the LayerMetrics producers)
    # ------------------------------------------------------------------ #
    def layer_utilization(self, gemm: GemmShape) -> float:
        """Occupied-PE fraction of one GEMM on this configuration's array."""
        return tiling_utilization(gemm.m, gemm.n, self.config.rows, self.config.cols)

    def layer_activity(self, gemm: GemmShape) -> float:
        """Effective datapath activity of one layer.

        The configured per-layer activity model's factor, derated by the
        configuration-level ``activity`` scalar.  With the default
        ``ConstantActivity(1.0)`` this is exactly ``config.activity`` —
        the historical constant — bit for bit.
        """
        return self.config.activity * self.config.activity_model.activity(
            gemm, self.config.rows, self.config.cols
        )

    def arrayflex_layer_power(
        self, gemm: GemmShape, collapse_depth: int, frequency_ghz: float
    ) -> tuple[ArrayPowerBreakdown, float, float]:
        """(power breakdown, effective activity, utilization) of one layer."""
        activity = self.layer_activity(gemm)
        breakdown = self.power_model.arrayflex_array_power_breakdown(
            rows=self.config.rows,
            cols=self.config.cols,
            collapse_depth=collapse_depth,
            frequency_ghz=frequency_ghz,
            activity=activity,
        )
        return breakdown, activity, self.layer_utilization(gemm)

    def conventional_layer_power(
        self, gemm: GemmShape, frequency_ghz: float
    ) -> tuple[ArrayPowerBreakdown, float, float]:
        """Conventional-baseline counterpart of :meth:`arrayflex_layer_power`."""
        activity = self.layer_activity(gemm)
        breakdown = self.power_model.conventional_array_power_breakdown(
            rows=self.config.rows,
            cols=self.config.cols,
            frequency_ghz=frequency_ghz,
            activity=activity,
        )
        return breakdown, activity, self.layer_utilization(gemm)

    # ------------------------------------------------------------------ #
    # Per-layer and run reports
    # ------------------------------------------------------------------ #
    def arrayflex_layer_report(
        self,
        gemm: GemmShape,
        collapse_depth: int,
        frequency_ghz: float,
        execution_time_ns: float,
    ) -> LayerEnergyReport:
        return LayerEnergyReport(
            gemm=gemm,
            collapse_depth=collapse_depth,
            power_mw=self.arrayflex_power_mw(collapse_depth, frequency_ghz),
            execution_time_ns=execution_time_ns,
        )

    def conventional_layer_report(
        self, gemm: GemmShape, frequency_ghz: float, execution_time_ns: float
    ) -> LayerEnergyReport:
        return LayerEnergyReport(
            gemm=gemm,
            collapse_depth=1,
            power_mw=self.conventional_power_mw(frequency_ghz),
            execution_time_ns=execution_time_ns,
        )

    @staticmethod
    def run_report(layer_reports: list[LayerEnergyReport]) -> RunEnergyReport:
        """Aggregate a list of per-layer reports into run-level metrics."""
        total_time = sum(report.execution_time_ns for report in layer_reports)
        total_energy = sum(report.energy_nj for report in layer_reports)
        return RunEnergyReport(total_time_ns=total_time, total_energy_nj=total_energy)

    # ------------------------------------------------------------------ #
    # Comparisons
    # ------------------------------------------------------------------ #
    @staticmethod
    def power_saving(conventional: RunEnergyReport, arrayflex: RunEnergyReport) -> float:
        """Fractional average-power saving of ArrayFlex over the baseline."""
        if conventional.average_power_mw == 0:
            return 0.0
        return 1.0 - arrayflex.average_power_mw / conventional.average_power_mw

    @staticmethod
    def edp_gain(conventional: RunEnergyReport, arrayflex: RunEnergyReport) -> float:
        """Energy-delay-product improvement factor (>1 means ArrayFlex wins)."""
        if arrayflex.energy_delay_product == 0:
            return float("inf")
        return conventional.energy_delay_product / arrayflex.energy_delay_product
