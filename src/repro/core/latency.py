"""Cycle-count models of matrix multiplication on the systolic array.

The four latency equations of the paper:

* Eq. (1):  L        = 2R + C + T - 2                 (conventional, per tile)
* Eq. (2):  L_total  = L * ceil(N/R) * ceil(M/C)       (conventional, tiled)
* Eq. (3):  L(k)     = R + R/k + C/k + T - 2           (ArrayFlex, per tile)
* Eq. (4):  L_total(k) = L(k) * ceil(N/R) * ceil(M/C)  (ArrayFlex, tiled)

For collapse depths that do not divide the array dimensions exactly (never
used by the shipped configurations but useful for what-if sweeps) the
``R/k`` and ``C/k`` terms are rounded up, which is what the hardware would
do -- a partially filled group still takes a full cycle.

Every formula here is cross-checked against the cycle-accurate simulator
(:mod:`repro.sim.systolic_sim`) by the test-suite.
"""

from __future__ import annotations

import math

from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import GemmShape


def conventional_tile_cycles(rows: int, cols: int, t_rows: int) -> int:
    """Eq. (1): cycles for one tile on the conventional fixed pipeline."""
    _check_positive(rows=rows, cols=cols, t_rows=t_rows)
    return 2 * rows + cols + t_rows - 2


def arrayflex_tile_cycles(rows: int, cols: int, t_rows: int, collapse_depth: int) -> int:
    """Eq. (3): cycles for one tile with a k-collapsed pipeline.

    ``collapse_depth = 1`` reproduces Eq. (1) exactly.
    """
    _check_positive(rows=rows, cols=cols, t_rows=t_rows, collapse_depth=collapse_depth)
    return (
        rows
        + math.ceil(rows / collapse_depth)
        + math.ceil(cols / collapse_depth)
        + t_rows
        - 2
    )


def arrayflex_tile_cycles_vertical_only(
    rows: int, cols: int, t_rows: int, collapse_depth: int
) -> int:
    """Ablation: collapse only the vertical (reduction) pipeline.

    The horizontal input stream still advances one column per cycle, so only
    the ``R - 1 -> R/k - 1`` reduction saving of Section III is realised:
    ``L = R + R/k + C + T - 2``.
    """
    _check_positive(rows=rows, cols=cols, t_rows=t_rows, collapse_depth=collapse_depth)
    return rows + math.ceil(rows / collapse_depth) + cols + t_rows - 2


def arrayflex_tile_cycles_horizontal_only(
    rows: int, cols: int, t_rows: int, collapse_depth: int
) -> int:
    """Ablation: collapse only the horizontal (broadcast) pipeline.

    The vertical reduction still takes ``R - 1`` cycles:
    ``L = 2R + C/k + T - 2``.
    """
    _check_positive(rows=rows, cols=cols, t_rows=t_rows, collapse_depth=collapse_depth)
    return 2 * rows + math.ceil(cols / collapse_depth) + t_rows - 2


def tile_count(n_dim: int, m_dim: int, rows: int, cols: int) -> int:
    """Number of tiles of a (N, M) weight matrix on an R x C array (Eqs. 2/4)."""
    _check_positive(n_dim=n_dim, m_dim=m_dim, rows=rows, cols=cols)
    return math.ceil(n_dim / rows) * math.ceil(m_dim / cols)


def conventional_total_cycles(gemm: GemmShape, rows: int, cols: int) -> int:
    """Eq. (2): total cycles of a tiled GEMM on the conventional array."""
    per_tile = conventional_tile_cycles(rows, cols, gemm.t)
    return per_tile * tile_count(gemm.n, gemm.m, rows, cols)


def arrayflex_total_cycles(
    gemm: GemmShape, rows: int, cols: int, collapse_depth: int
) -> int:
    """Eq. (4): total cycles of a tiled GEMM with a k-collapsed pipeline."""
    per_tile = arrayflex_tile_cycles(rows, cols, gemm.t, collapse_depth)
    return per_tile * tile_count(gemm.n, gemm.m, rows, cols)


def _check_positive(**values: int) -> None:
    for name, value in values.items():
        if value <= 0:
            raise ValueError(f"{name} must be positive, got {value}")


class LatencyModel:
    """Convenience wrapper binding the latency equations to one configuration."""

    def __init__(self, config: ArrayFlexConfig) -> None:
        self.config = config

    # ------------------------------------------------------------------ #
    # Per-tile
    # ------------------------------------------------------------------ #
    def tile_cycles(self, t_rows: int, collapse_depth: int = 1) -> int:
        """Cycles for one tile at the given collapse depth (Eq. 1 or 3)."""
        return arrayflex_tile_cycles(
            self.config.rows, self.config.cols, t_rows, collapse_depth
        )

    def conventional_tile_cycles(self, t_rows: int) -> int:
        return conventional_tile_cycles(self.config.rows, self.config.cols, t_rows)

    # ------------------------------------------------------------------ #
    # Tiled GEMM
    # ------------------------------------------------------------------ #
    def tile_count(self, gemm: GemmShape) -> int:
        return tile_count(gemm.n, gemm.m, self.config.rows, self.config.cols)

    def total_cycles(self, gemm: GemmShape, collapse_depth: int = 1) -> int:
        """Eq. (4) for this configuration's array size."""
        return arrayflex_total_cycles(
            gemm, self.config.rows, self.config.cols, collapse_depth
        )

    def conventional_total_cycles(self, gemm: GemmShape) -> int:
        """Eq. (2) for this configuration's array size."""
        return conventional_total_cycles(gemm, self.config.rows, self.config.cols)

    # ------------------------------------------------------------------ #
    def cycle_reduction(self, gemm: GemmShape, collapse_depth: int) -> float:
        """Fractional cycle-count reduction of depth k versus the normal pipeline."""
        base = self.total_cycles(gemm, collapse_depth=1)
        collapsed = self.total_cycles(gemm, collapse_depth=collapse_depth)
        return 1.0 - collapsed / base
