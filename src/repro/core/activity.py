"""Pluggable per-layer activity models.

The paper's power argument (Section IV-B, Fig. 9) rests on *switched*
energy per mode, but a switched-capacitance model is only as good as the
activity factor it is fed.  Historically every call site passed the
constant ``activity=1.0`` into :class:`repro.timing.power_model.PowerModel`
— every PE busy every cycle — which cannot express partially idle arrays.

An :class:`ActivityModel` closes that gap: it maps one GEMM layer (plus
the array geometry it is tiled onto) to the average datapath activity of
the run.  Two models ship:

* :class:`ConstantActivity` — the historical behaviour.  With the default
  value of 1.0 it keeps every paper number bit-identical, which is why it
  is the default of :class:`~repro.core.config.ArrayFlexConfig`.
* :class:`UtilizationActivity` — derives activity analytically from the
  GEMM-to-array tiling.  A weight matrix that does not tile the R x C
  array exactly leaves its edge tiles partially empty: the PEs outside
  the occupied N' x M' corner of an edge tile stream zeros and switch no
  datapath logic.  Averaged over the run (every tile of a layer takes the
  same number of cycles), the busy-PE fraction is exactly
  ``(N * M) / (ceil(N/R) * R * ceil(M/C) * C)`` — the occupied fraction
  of the tiled footprint — so datapath energy scales by that factor while
  clock-tree energy (ungated in-flight) does not.

The effective activity handed to the power model is always
``config.activity * model_activity``, so the configuration-level scalar
keeps acting as a global derating factor on top of the per-layer model.

Every model exposes a NumPy ``activity_vector`` alongside the scalar
``activity`` so the batched backend can evaluate whole models in one
vectorised pass; the two paths are required (and property-tested) to be
bit-identical.  ``cache_key()`` is the model's hashable identity — it is
folded into :meth:`ArrayFlexConfig.cache_key`, which makes decision
caches, disk-store shards and serving dedup keys activity-model aware
for free.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid importing the nn package for a type name only
    from repro.nn.gemm_mapping import GemmShape


def tiling_utilization(m: int, n: int, rows: int, cols: int) -> float:
    """Occupied-PE fraction of one GEMM tiled onto an R x C array.

    Each of the ``N * M`` weights occupies exactly one PE in exactly one
    tile, and every tile of a layer runs for the same number of cycles,
    so the time-averaged busy fraction is the occupied share of the
    ``tiles * R * C`` footprint.  Exactly 1.0 iff R | N and C | M.

    Integer ceil-division keeps the arithmetic exact (and identical to
    the batched backend's ``_ceil_div``); the single final division is
    the only floating-point operation, so the scalar and vector paths
    agree bit for bit.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("array dimensions must be positive")
    if m <= 0 or n <= 0:
        raise ValueError("GEMM dimensions must be positive")
    tiles = (-(-n // rows)) * (-(-m // cols))
    return (n * m) / (tiles * rows * cols)


def tiling_utilization_vector(
    m: np.ndarray, n: np.ndarray, rows: int, cols: int
) -> np.ndarray:
    """Vectorised :func:`tiling_utilization` over layer dimension arrays."""
    tiles = (-(-n // rows)) * (-(-m // cols))
    return (n * m) / (tiles * (rows * cols))


class ActivityModel(abc.ABC):
    """Maps one GEMM layer to an average datapath activity in (0, 1]."""

    #: Registry key and CLI spelling of the model.
    name: str = "abstract"

    @abc.abstractmethod
    def activity(self, gemm: "GemmShape", rows: int, cols: int) -> float:
        """Activity factor of one layer on an R x C array (in (0, 1])."""

    @abc.abstractmethod
    def activity_vector(
        self,
        m: np.ndarray,
        n: np.ndarray,
        t: np.ndarray,
        rows: int,
        cols: int,
    ) -> np.ndarray:
        """Per-layer activities for vectors of GEMM dimensions.

        Must equal the scalar :meth:`activity` bit for bit per element —
        the batched backend's parity with the analytical reference
        depends on it.
        """

    @abc.abstractmethod
    def cache_key(self) -> tuple:
        """Hashable identity (folded into ``ArrayFlexConfig.cache_key``)."""


@dataclass(frozen=True)
class ConstantActivity(ActivityModel):
    """The historical fixed activity factor (default 1.0: fully busy)."""

    value: float = 1.0

    name = "constant"

    def __post_init__(self) -> None:
        if not 0.0 < self.value <= 1.0:
            raise ValueError(f"activity must be in (0, 1], got {self.value}")

    def activity(self, gemm: "GemmShape", rows: int, cols: int) -> float:
        return self.value

    def activity_vector(
        self,
        m: np.ndarray,
        n: np.ndarray,
        t: np.ndarray,
        rows: int,
        cols: int,
    ) -> np.ndarray:
        return np.full(len(m), self.value, dtype=np.float64)

    def cache_key(self) -> tuple:
        return (self.name, self.value)


@dataclass(frozen=True)
class UtilizationActivity(ActivityModel):
    """Activity from GEMM-to-array tiling (edge tiles underfill the array)."""

    name = "utilization"

    def activity(self, gemm: "GemmShape", rows: int, cols: int) -> float:
        return tiling_utilization(gemm.m, gemm.n, rows, cols)

    def activity_vector(
        self,
        m: np.ndarray,
        n: np.ndarray,
        t: np.ndarray,
        rows: int,
        cols: int,
    ) -> np.ndarray:
        return tiling_utilization_vector(m, n, rows, cols)

    def cache_key(self) -> tuple:
        return (self.name,)


#: Registry of activity-model constructors, keyed by their CLI names.
ACTIVITY_MODELS: dict[str, type[ActivityModel]] = {
    ConstantActivity.name: ConstantActivity,
    UtilizationActivity.name: UtilizationActivity,
}


def create_activity_model(
    model: ActivityModel | str | None,
) -> ActivityModel:
    """Resolve an activity-model argument (instance, registry name or None).

    ``None`` resolves to ``ConstantActivity(1.0)``, the bit-identical
    historical behaviour.
    """
    if model is None:
        return ConstantActivity()
    if isinstance(model, ActivityModel):
        return model
    try:
        return ACTIVITY_MODELS[model]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown activity model {model!r} (available: {sorted(ACTIVITY_MODELS)})"
        ) from None
