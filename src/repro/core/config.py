"""Accelerator configuration.

:class:`ArrayFlexConfig` bundles everything that characterises one
ArrayFlex instance: the array geometry (R x C), the set of collapse depths
the hardware supports, and the technology model the timing / power / area
estimates are drawn from.

The paper's evaluated instances are 128x128 and 256x256 arrays supporting
k in {1, 2, 4}; :meth:`ArrayFlexConfig.paper_128x128` and
:meth:`ArrayFlexConfig.paper_256x256` build exactly those.  The Fig. 5
motivation experiment uses a 132x132 array so that k = 3 is also legal;
:meth:`ArrayFlexConfig.fig5_132x132` builds that one.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.arch.control import ConfigurationPlane
from repro.core.activity import ActivityModel, ConstantActivity, create_activity_model
from repro.timing.technology import TechnologyModel


@dataclass(frozen=True)
class ArrayFlexConfig:
    """Static configuration of one ArrayFlex accelerator instance."""

    rows: int = 128
    cols: int = 128
    supported_depths: tuple[int, ...] = (1, 2, 4)
    technology: TechnologyModel = field(default_factory=TechnologyModel.default_28nm)
    #: Global datapath activity derating factor used by the power model
    #: (multiplied with the per-layer :attr:`activity_model` factor).
    activity: float = 1.0
    #: Per-layer activity model (see :mod:`repro.core.activity`).  Accepts
    #: an :class:`~repro.core.activity.ActivityModel` instance or a
    #: registry name (``"constant"``, ``"utilization"``); the default
    #: ``ConstantActivity(1.0)`` keeps every paper number bit-identical.
    activity_model: ActivityModel | str = field(default_factory=ConstantActivity)

    def __post_init__(self) -> None:
        # Coerce registry names up front so every consumer sees a model
        # object (the frozen dataclass needs the setattr back door).
        if isinstance(self.activity_model, str) or self.activity_model is None:
            object.__setattr__(
                self, "activity_model", create_activity_model(self.activity_model)
            )
        model = self.activity_model
        if any(
            not callable(getattr(model, method, None))
            for method in ("activity", "activity_vector", "cache_key")
        ):
            raise ValueError(
                "activity_model must provide activity()/activity_vector()/"
                "cache_key() (see repro.core.activity.ActivityModel)"
            )
        if self.rows <= 0 or self.cols <= 0:
            raise ValueError("array dimensions must be positive")
        if not self.supported_depths:
            raise ValueError("at least one collapse depth must be supported")
        if 1 not in self.supported_depths:
            raise ValueError("the normal pipeline (k = 1) must always be supported")
        if len(set(self.supported_depths)) != len(self.supported_depths):
            raise ValueError("supported depths must be unique")
        if not 0.0 < self.activity <= 1.0:
            raise ValueError("activity must be in (0, 1]")
        plane = ConfigurationPlane(self.rows, self.cols)
        for depth in self.supported_depths:
            if not plane.is_legal_depth(depth):
                raise ValueError(
                    f"collapse depth {depth} is illegal for a "
                    f"{self.rows}x{self.cols} array (must divide both dimensions)"
                )

    # ------------------------------------------------------------------ #
    @property
    def num_pes(self) -> int:
        return self.rows * self.cols

    @property
    def max_depth(self) -> int:
        return max(self.supported_depths)

    def sorted_depths(self) -> tuple[int, ...]:
        return tuple(sorted(self.supported_depths))

    def configuration_plane(self) -> ConfigurationPlane:
        return ConfigurationPlane(self.rows, self.cols)

    def cache_key(self) -> tuple:
        """Hashable identity of this configuration (for backend memo keys).

        The dataclass cannot be hashed directly because the technology
        model carries a dict field; this tuple captures everything that
        influences scheduling decisions.  Derived once per (frozen)
        instance — backend caches key every lookup on it.
        """
        cached = getattr(self, "_cache_key", None)
        if cached is None:
            cached = (
                self.rows,
                self.cols,
                self.sorted_depths(),
                self.activity,
                self.activity_model.cache_key(),
                self.technology.cache_key(),
            )
            object.__setattr__(self, "_cache_key", cached)
        return cached

    def with_size(self, rows: int, cols: int) -> "ArrayFlexConfig":
        """Copy of this configuration with a different array size."""
        return replace(self, rows=rows, cols=cols)

    def with_depths(self, depths: tuple[int, ...]) -> "ArrayFlexConfig":
        """Copy of this configuration with a different supported-depth set."""
        return replace(self, supported_depths=depths)

    def with_activity_model(
        self, activity_model: ActivityModel | str | None
    ) -> "ArrayFlexConfig":
        """Copy of this configuration with a different activity model."""
        return replace(self, activity_model=create_activity_model(activity_model))

    # ------------------------------------------------------------------ #
    # The instances used throughout the paper
    # ------------------------------------------------------------------ #
    @classmethod
    def paper_128x128(cls, technology: TechnologyModel | None = None) -> "ArrayFlexConfig":
        """The 128x128 instance of Figs. 7, 8(a) and 9(a)."""
        return cls(
            rows=128,
            cols=128,
            supported_depths=(1, 2, 4),
            technology=technology or TechnologyModel.default_28nm(),
        )

    @classmethod
    def paper_256x256(cls, technology: TechnologyModel | None = None) -> "ArrayFlexConfig":
        """The 256x256 instance of Figs. 8(b) and 9(b)."""
        return cls(
            rows=256,
            cols=256,
            supported_depths=(1, 2, 4),
            technology=technology or TechnologyModel.default_28nm(),
        )

    @classmethod
    def fig5_132x132(cls, technology: TechnologyModel | None = None) -> "ArrayFlexConfig":
        """The 132x132 instance of Fig. 5, where k in {1, 2, 3, 4} are all legal."""
        return cls(
            rows=132,
            cols=132,
            supported_depths=(1, 2, 3, 4),
            technology=technology or TechnologyModel.default_28nm(),
        )
