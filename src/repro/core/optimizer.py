"""Per-layer pipeline-depth selection.

Two selectors are provided, mirroring Section III-C of the paper:

* the *analytical* optimum of Eq. (7),

      k_hat = sqrt( (R + C) / (R + T - 2) * (d_FF + d_mul + d_add) / (d_CSA + 2 d_mux) )

  a continuous value obtained by differentiating Tabs(k) (Eq. 6) with the
  continuous clock model (Eq. 5).  It is cheap, gives the intuition ("large
  T -> stay at k = 1; small T or big arrays -> collapse deeper"), and the
  paper observes that it approximates the discrete optimum "fairly
  accurately";
* the *discrete* search, which evaluates Tabs(k) for every supported
  collapse depth (using the discrete, rounded operating frequencies) and
  picks the argmin.  This is what the scheduler actually uses, and what a
  deployment would programme into the accelerator per layer.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.activity import tiling_utilization
from repro.core.clock import ClockModel
from repro.core.config import ArrayFlexConfig
from repro.core.latency import LatencyModel
from repro.nn.gemm_mapping import GemmShape


@dataclass(frozen=True)
class ModeDecision:
    """The outcome of selecting a pipeline mode for one GEMM."""

    gemm: GemmShape
    collapse_depth: int
    cycles: int
    clock_frequency_ghz: float
    execution_time_ns: float
    analytical_depth: float
    per_depth_time_ns: dict[int, float]
    #: Occupied-PE fraction of the GEMM-to-array tiling (mode-independent;
    #: feeds the activity-aware power paths and the CLI decision report).
    array_utilization: float = 1.0

    @property
    def is_shallow(self) -> bool:
        """True when a shallow (collapsed) pipeline mode was selected."""
        return self.collapse_depth > 1


class PipelineOptimizer:
    """Selects the execution-time-optimal collapse depth per GEMM."""

    def __init__(self, config: ArrayFlexConfig) -> None:
        self.config = config
        self.latency = LatencyModel(config)
        self.clock = ClockModel(config)

    # ------------------------------------------------------------------ #
    # Eq. (7): analytical optimum
    # ------------------------------------------------------------------ #
    def analytical_optimal_depth(self, gemm: GemmShape) -> float:
        """Continuous optimal collapse depth of Eq. (7)."""
        tech = self.config.technology
        rows, cols = self.config.rows, self.config.cols
        size_term = (rows + cols) / (rows + gemm.t - 2)
        delay_term = tech.baseline_path_ps / tech.collapse_increment_ps
        return math.sqrt(size_term * delay_term)

    # ------------------------------------------------------------------ #
    # Discrete search over the supported modes
    # ------------------------------------------------------------------ #
    def evaluate_depth(self, gemm: GemmShape, collapse_depth: int) -> tuple[int, float]:
        """(cycles, absolute time in ns) of one GEMM at one collapse depth."""
        cycles = self.latency.total_cycles(gemm, collapse_depth)
        time_ns = self.clock.execution_time_ns(cycles, collapse_depth)
        return cycles, time_ns

    def best_depth(self, gemm: GemmShape) -> ModeDecision:
        """Pick the supported depth minimising absolute execution time (Eq. 6).

        Ties are broken toward the *shallower* (smaller k) mode, which also
        has the higher clock frequency and therefore the more robust timing
        margin -- the same tie-break a designer would apply.
        """
        per_depth: dict[int, float] = {}
        best: tuple[float, int] | None = None
        for depth in self.config.sorted_depths():
            _, time_ns = self.evaluate_depth(gemm, depth)
            per_depth[depth] = time_ns
            if best is None or time_ns < best[0] - 1e-12:
                best = (time_ns, depth)
        assert best is not None
        best_time, best_k = best
        cycles = self.latency.total_cycles(gemm, best_k)
        return ModeDecision(
            gemm=gemm,
            collapse_depth=best_k,
            cycles=cycles,
            clock_frequency_ghz=self.clock.frequency_ghz(best_k),
            execution_time_ns=best_time,
            analytical_depth=self.analytical_optimal_depth(gemm),
            per_depth_time_ns=per_depth,
            array_utilization=self._utilization(gemm),
        )

    def exhaustive_best_depth(
        self, gemm: GemmShape, max_depth: int | None = None
    ) -> ModeDecision:
        """Discrete search over *every* legal depth of the array, not just the
        supported set.

        Used by the Eq. (7) validation experiment to check how close the
        analytical optimum and the restricted {1, 2, 4} selection come to a
        hardware that could collapse at any divisor depth.
        """
        plane = self.config.configuration_plane()
        depths = plane.legal_depths(max_depth or self.config.max_depth)
        per_depth: dict[int, float] = {}
        best: tuple[float, int] | None = None
        for depth in depths:
            cycles = self.latency.total_cycles(gemm, depth)
            # The continuous Eq. (5) clock is used for unsupported depths.
            period_ns = self.clock.delay_model.clock_period_ps(depth) / 1000.0
            time_ns = cycles * period_ns
            per_depth[depth] = time_ns
            if best is None or time_ns < best[0] - 1e-12:
                best = (time_ns, depth)
        assert best is not None
        best_time, best_k = best
        return ModeDecision(
            gemm=gemm,
            collapse_depth=best_k,
            cycles=self.latency.total_cycles(gemm, best_k),
            clock_frequency_ghz=1000.0 / self.clock.delay_model.clock_period_ps(best_k),
            execution_time_ns=best_time,
            analytical_depth=self.analytical_optimal_depth(gemm),
            per_depth_time_ns=per_depth,
            array_utilization=self._utilization(gemm),
        )

    def _utilization(self, gemm: GemmShape) -> float:
        return tiling_utilization(gemm.m, gemm.n, self.config.rows, self.config.cols)

    # ------------------------------------------------------------------ #
    def decide_model(self, gemms: list[GemmShape]) -> list[ModeDecision]:
        """Per-layer decisions for a whole model."""
        return [self.best_depth(gemm) for gemm in gemms]
