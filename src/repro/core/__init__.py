"""ArrayFlex core: the paper's primary contribution.

This package layers the ArrayFlex-specific models on top of the substrates:

* :mod:`repro.core.config` -- accelerator configuration (array size,
  supported collapse depths, technology, activity model).
* :mod:`repro.core.activity` -- pluggable per-layer activity models
  (constant, tiling-utilization derived).
* :mod:`repro.core.metrics` -- the structured per-layer result model
  (:class:`~repro.core.metrics.LayerMetrics`) shared by every backend.
* :mod:`repro.core.latency` -- cycle-count models, Eqs. (1)-(4).
* :mod:`repro.core.clock` -- per-mode operating points, Eq. (5).
* :mod:`repro.core.optimizer` -- per-layer pipeline-depth selection,
  Eq. (7) and discrete search.
* :mod:`repro.core.scheduler` -- mapping whole CNNs onto the accelerator,
  layer by layer.
* :mod:`repro.core.energy` -- power, energy and energy-delay product.
* :mod:`repro.core.arrayflex` -- the public accelerator facade
  (:class:`~repro.core.arrayflex.ArrayFlexAccelerator`).
"""

from repro.core.activity import (
    ACTIVITY_MODELS,
    ActivityModel,
    ConstantActivity,
    UtilizationActivity,
    create_activity_model,
    tiling_utilization,
)
from repro.core.config import ArrayFlexConfig
from repro.core.clock import ClockModel
from repro.core.latency import LatencyModel
from repro.core.metrics import InvalidWorkloadError, LayerMetrics
from repro.core.optimizer import ModeDecision, PipelineOptimizer
from repro.core.scheduler import LayerSchedule, ModelSchedule, Scheduler
from repro.core.energy import EnergyModel, LayerEnergyReport, RunEnergyReport
from repro.core.arrayflex import ArrayFlexAccelerator, ComparisonReport
from repro.core.design_space import DesignPoint, DesignPointResult, DesignSpaceExplorer

__all__ = [
    "ACTIVITY_MODELS",
    "ActivityModel",
    "ArrayFlexConfig",
    "ConstantActivity",
    "InvalidWorkloadError",
    "LayerMetrics",
    "UtilizationActivity",
    "create_activity_model",
    "tiling_utilization",
    "DesignPoint",
    "DesignPointResult",
    "DesignSpaceExplorer",
    "LatencyModel",
    "ClockModel",
    "PipelineOptimizer",
    "ModeDecision",
    "Scheduler",
    "LayerSchedule",
    "ModelSchedule",
    "EnergyModel",
    "LayerEnergyReport",
    "RunEnergyReport",
    "ArrayFlexAccelerator",
    "ComparisonReport",
]
