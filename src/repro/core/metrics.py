"""The structured per-layer result model shared by every backend.

:class:`LayerMetrics` is the system's central data type: one record per
scheduled layer carrying the decision (collapse depth), the timing
(cycles, frequency, time), the activity inputs of the power model
(effective datapath activity and the geometric array utilization it was
derived from) and a per-component :class:`~repro.timing.power_model.
ArrayPowerBreakdown` instead of a single collapsed scalar.  The
historical flat ``LayerSchedule`` shape survives as back-compat
properties (``power_mw``, ``energy_nj``) and as a module-level alias, so
every consumer of the old record keeps working unchanged.

:class:`ModelSchedule` aggregates the records of one run and now also
exposes run-level energy composition (:meth:`ModelSchedule.
energy_breakdown_nj`) and time-weighted activity/utilization averages.

:func:`resolve_workload` — the single normalisation point for "what is a
model" — also lives here so the backends can consume the data model
without importing the scheduler facade.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence, Union

from repro.core.energy import RunEnergyReport
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import CnnModel
from repro.timing.power_model import ArrayPowerBreakdown

if TYPE_CHECKING:  # runtime dispatch is duck-typed; see resolve_workload
    from repro.workloads.base import Workload

#: Anything every scheduling entry point accepts as a workload: a CNN
#: layer table, any object satisfying the :class:`~repro.workloads.base.
#: Workload` protocol (transformer traces, pre-lowered GEMM workloads),
#: an explicit GEMM list, or a :mod:`repro.workloads` registry name.
WorkloadArgument = Union[
    CnnModel, "Workload", Sequence[GemmShape], str
]


class InvalidWorkloadError(TypeError):
    """A workload argument that cannot be interpreted as a workload at all.

    Raised (instead of a generic falsy-check surprise) when the ``model``
    argument is neither a registry name, nor an object with a ``gemms()``
    lowering, nor an iterable of GEMM shapes.  An *empty* workload is a
    different, legitimate-type failure and stays a :class:`ValueError`.
    """


def resolve_workload(
    model: WorkloadArgument, model_name: str | None = None
) -> tuple[list[GemmShape], str]:
    """Normalise a workload argument into ``(gemms, name)``.

    Accepts a :class:`CnnModel`, any object with a ``gemms()`` lowering
    and a ``name`` (the :class:`~repro.workloads.base.Workload`
    protocol), a registry name string (resolved through
    :func:`repro.workloads.get_workload`, including ``@bs<N>`` batch
    suffixes), or an explicit iterable of GEMM shapes.  Shared by the
    scheduler and every execution backend so all entry points agree on
    what a "model" is.

    Raises :class:`ValueError` when the workload resolves to an *empty*
    GEMM list, and :class:`InvalidWorkloadError` (a :class:`TypeError`)
    naming the offending ``model`` argument when it is not a workload
    shape at all — the two failure modes are deliberately distinct.
    """
    if isinstance(model, str):
        from repro.workloads import get_workload  # deferred: heavier import

        model = get_workload(model)
    gemms = getattr(model, "gemms", None)
    if callable(gemms):
        name = model_name or getattr(model, "name", "custom")
        resolved = list(gemms())
        if not resolved:
            raise ValueError(f"workload {name!r} lowered to an empty list of GEMMs")
        return resolved, name
    try:
        resolved = list(model)
    except TypeError:
        raise InvalidWorkloadError(
            f"model argument {model!r} of type {type(model).__name__} is not a "
            "workload: expected a CnnModel, a Workload object, a repro.workloads "
            "registry name, or an iterable of GemmShape"
        ) from None
    if not resolved:
        raise ValueError(
            "model argument resolved to an empty list of GEMMs "
            "(cannot schedule an empty workload)"
        )
    return resolved, model_name or "custom"


@dataclass(frozen=True)
class LayerMetrics:
    """Everything decided and measured for one layer.

    ``activity`` is the effective datapath activity the power model was
    evaluated at (``config.activity`` x the configured activity model's
    per-layer factor); ``array_utilization`` is the geometric occupied-PE
    fraction of the GEMM-to-array tiling, recorded for every layer
    regardless of which activity model priced it.  ``power`` carries the
    per-component mW breakdown; ``power_mw``/``energy_nj`` reproduce the
    historical flat record's API exactly.

    ``error_bound`` is the relative statistical uncertainty of ``cycles``
    (and therefore of the time/energy figures derived from it) reported
    by estimating backends — the sampled-simulation backend guarantees
    ``|cycles - exact| <= error_bound * exact``.  Exact backends leave it
    ``None``; an exhaustive or degenerate-exact sample reports ``0.0``.
    It deliberately does not participate in equality (``compare=False``):
    it is metadata about how a number was obtained, not part of the
    schedule's numeric identity, so an exhaustively-sampled schedule
    compares bit-identical to the cycle-accurate one.
    """

    index: int
    gemm: GemmShape
    collapse_depth: int
    cycles: int
    clock_frequency_ghz: float
    execution_time_ns: float
    activity: float
    array_utilization: float
    power: ArrayPowerBreakdown
    analytical_depth: float = 0.0
    error_bound: float | None = field(default=None, compare=False)

    @property
    def power_mw(self) -> float:
        """Total array power (mW) — the historical scalar, bit-identical."""
        return self.power.total_mw

    @property
    def energy_nj(self) -> float:
        return self.power_mw * self.execution_time_ns / 1000.0

    @property
    def datapath_energy_nj(self) -> float:
        """Energy of the activity-scaled datapath components only."""
        return self.power.datapath_mw * self.execution_time_ns / 1000.0

    def energy_breakdown_nj(self) -> dict[str, float]:
        """Per-component energy of this layer (nJ), plus the exact total."""
        time = self.execution_time_ns
        return {
            component: power_mw * time / 1000.0
            for component, power_mw in self.power.as_dict().items()
        }


#: Back-compat alias: the flat per-layer record every pre-refactor call
#: site imported.  Same object — old imports keep working.
LayerSchedule = LayerMetrics


@dataclass
class ModelSchedule:
    """The complete schedule of one model on one accelerator."""

    model_name: str
    accelerator: str
    rows: int
    cols: int
    layers: list[LayerMetrics] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_time_ns(self) -> float:
        return sum(layer.execution_time_ns for layer in self.layers)

    @property
    def total_time_ms(self) -> float:
        return self.total_time_ns / 1e6

    @property
    def total_energy_nj(self) -> float:
        return sum(layer.energy_nj for layer in self.layers)

    @property
    def average_power_mw(self) -> float:
        if self.total_time_ns == 0:
            return 0.0
        return self.total_energy_nj * 1000.0 / self.total_time_ns

    @property
    def energy_delay_product(self) -> float:
        return self.total_energy_nj * self.total_time_ns

    # ------------------------------------------------------------------ #
    def energy_breakdown_nj(self) -> dict[str, float]:
        """Run-level energy composition: per-component nJ over all layers.

        The ``"total"`` entry sums the layers' exact ``energy_nj`` terms
        (same order as :attr:`total_energy_nj`); the component entries sum
        the per-component figures, which reproduce the total up to float
        rounding (see :class:`~repro.timing.power_model.ArrayPowerBreakdown`).
        """
        composition: dict[str, float] = {}
        for layer in self.layers:
            for component, energy in layer.energy_breakdown_nj().items():
                composition[component] = composition.get(component, 0.0) + energy
        composition["total"] = self.total_energy_nj
        return composition

    def average_activity(self) -> float:
        """Time-weighted average effective activity over the run."""
        return self._time_weighted("activity")

    def average_utilization(self) -> float:
        """Time-weighted average array utilization over the run."""
        return self._time_weighted("array_utilization")

    def max_error_bound(self) -> float:
        """Largest per-layer relative ``error_bound`` of the run.

        ``0.0`` for schedules produced by exact backends (whose layers
        carry ``error_bound=None``) and for exhaustively-sampled runs.
        """
        return max(
            (layer.error_bound or 0.0 for layer in self.layers), default=0.0
        )

    def combined_error_bound(self) -> float | None:
        """Model-level relative error bound: time-weighted per-layer mean.

        Each layer's time is within its own relative bound, so the total
        time is within the execution-time-weighted combination — the same
        statistic the sampled backend's ``schedule_model_totals`` fast
        path reports, computed here from a materialised schedule.  Exact
        strata mix correctly with sampled ones: a layer with
        ``error_bound=None`` (exact backend) or ``0.0`` (exhaustively
        sampled) contributes zero width at its time weight.  ``None``
        when *every* layer is exact, matching the fast paths' convention
        that only estimating runs carry a bound.
        """
        if all(layer.error_bound is None for layer in self.layers):
            return None
        total = self.total_time_ns
        if total == 0:
            return 0.0
        return (
            sum(
                (layer.error_bound or 0.0) * layer.execution_time_ns
                for layer in self.layers
            )
            / total
        )

    def _time_weighted(self, attribute: str) -> float:
        total = self.total_time_ns
        if total == 0:
            return 0.0
        return (
            sum(
                getattr(layer, attribute) * layer.execution_time_ns
                for layer in self.layers
            )
            / total
        )

    # ------------------------------------------------------------------ #
    def depth_histogram(self) -> dict[int, int]:
        """Number of layers executed at each collapse depth."""
        histogram: dict[int, int] = {}
        for layer in self.layers:
            histogram[layer.collapse_depth] = histogram.get(layer.collapse_depth, 0) + 1
        return histogram

    def time_share_by_depth(self) -> dict[int, float]:
        """Fraction of the run's time spent in each collapse depth."""
        total = self.total_time_ns
        shares: dict[int, float] = {}
        if total == 0:
            return shares
        for layer in self.layers:
            shares[layer.collapse_depth] = (
                shares.get(layer.collapse_depth, 0.0) + layer.execution_time_ns / total
            )
        return shares

    def to_energy_report(self) -> RunEnergyReport:
        return RunEnergyReport(
            total_time_ns=self.total_time_ns, total_energy_nj=self.total_energy_nj
        )
