"""Public accelerator facade.

:class:`ArrayFlexAccelerator` is the one-stop API most users need:

>>> from repro import ArrayFlexAccelerator
>>> from repro.nn import resnet34
>>> accel = ArrayFlexAccelerator(rows=128, cols=128)
>>> comparison = accel.compare_with_conventional(resnet34())
>>> round(comparison.latency_saving, 3) > 0
True

It wraps the configuration, the per-layer optimizer, the scheduler, the
energy model and (optionally) the cycle-accurate functional simulator, and
it exposes the conventional fixed-pipeline baseline for side-by-side
comparisons -- the comparison the whole paper is about.

Scheduling is delegated to a pluggable :class:`repro.backends.ExecutionBackend`:

>>> from repro import ArrayFlexAccelerator
>>> from repro.backends import BatchedCachedBackend
>>> accel = ArrayFlexAccelerator(rows=128, cols=128, backend=BatchedCachedBackend())

keeps the exact numbers of the default analytical backend while making
repeated and sweep-style workloads much faster; ``backend="cycle"``
swaps in the cycle-accurate measured path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.activity import ActivityModel, create_activity_model
from repro.core.config import ArrayFlexConfig
from repro.core.clock import ClockModel
from repro.core.energy import EnergyModel
from repro.core.optimizer import ModeDecision, PipelineOptimizer
from repro.core.scheduler import (
    LayerSchedule,
    ModelSchedule,
    Scheduler,
    WorkloadArgument,
)
from repro.nn.gemm_mapping import GemmShape
from repro.sim.tiling import TiledGemmResult, run_tiled_gemm
from repro.timing.area_model import AreaModel
from repro.timing.technology import TechnologyModel

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from repro.backends import ExecutionBackend


@dataclass(frozen=True)
class ComparisonReport:
    """Side-by-side result of running one model on both accelerators."""

    model_name: str
    conventional: ModelSchedule
    arrayflex: ModelSchedule

    @property
    def latency_saving(self) -> float:
        """Fractional execution-time reduction of ArrayFlex vs the baseline."""
        base = self.conventional.total_time_ns
        if base == 0:
            return 0.0
        return 1.0 - self.arrayflex.total_time_ns / base

    @property
    def power_saving(self) -> float:
        """Fractional average-power reduction of ArrayFlex vs the baseline."""
        base = self.conventional.average_power_mw
        if base == 0:
            return 0.0
        return 1.0 - self.arrayflex.average_power_mw / base

    @property
    def edp_gain(self) -> float:
        """Energy-delay-product improvement factor (paper: 1.4x-1.8x)."""
        arrayflex_edp = self.arrayflex.energy_delay_product
        if arrayflex_edp == 0:
            return float("inf")
        return self.conventional.energy_delay_product / arrayflex_edp

    def summary(self) -> dict[str, float]:
        return {
            "latency_saving": self.latency_saving,
            "power_saving": self.power_saving,
            "edp_gain": self.edp_gain,
            "conventional_time_ms": self.conventional.total_time_ms,
            "arrayflex_time_ms": self.arrayflex.total_time_ms,
            "conventional_power_mw": self.conventional.average_power_mw,
            "arrayflex_power_mw": self.arrayflex.average_power_mw,
        }


class ArrayFlexAccelerator:
    """The configurable-pipeline systolic-array accelerator (the paper's design)."""

    def __init__(
        self,
        rows: int = 128,
        cols: int = 128,
        supported_depths: tuple[int, ...] = (1, 2, 4),
        technology: TechnologyModel | None = None,
        config: ArrayFlexConfig | None = None,
        backend: ExecutionBackend | str | None = None,
        cache_dir: str | None = None,
        activity_model: "ActivityModel | str | None" = None,
    ) -> None:
        if config is not None:
            if activity_model is not None:
                raise ValueError(
                    "pass activity_model inside config=... or as the keyword, not both"
                )
            self.config = config
        else:
            self.config = ArrayFlexConfig(
                rows=rows,
                cols=cols,
                supported_depths=supported_depths,
                technology=technology or TechnologyModel.default_28nm(),
                #: ``None`` keeps the bit-identical ConstantActivity(1.0)
                #: default; "utilization" derives per-layer activity from
                #: the GEMM-to-array tiling (see repro.core.activity).
                activity_model=create_activity_model(activity_model),
            )
        from repro.backends import attach_store, create_backend

        #: The execution backend scheduling runs on this accelerator.  May
        #: be an :class:`~repro.backends.ExecutionBackend` instance or a
        #: registry name ("analytical", "batched", "sampled", "cycle");
        #: defaults to the reference analytical backend.  ``cache_dir``
        #: attaches the disk-persistent decision store (and implies the
        #: batched backend unless a sampled backend, which owns its own
        #: decision cache, was requested).
        self.backend = create_backend(attach_store(backend, cache_dir))
        self._scheduler: Scheduler | None = None
        self.optimizer = PipelineOptimizer(self.config)
        self.clock = ClockModel(self.config)
        self.energy = EnergyModel(self.config)
        self.area = AreaModel(self.config.technology)

    @property
    def scheduler(self) -> Scheduler:
        """The pre-backend per-layer scheduler (kept for compatibility).

        Scheduling now routes through :attr:`backend`; this is built
        lazily for callers that still reach into the scheduler's model
        stack directly.
        """
        if self._scheduler is None:
            self._scheduler = Scheduler(self.config)
        return self._scheduler

    # ------------------------------------------------------------------ #
    # Analytical execution (latency / power / energy models)
    # ------------------------------------------------------------------ #
    def decide(self, gemm: GemmShape | tuple[int, int, int]) -> ModeDecision:
        """Pick the optimal pipeline mode for one GEMM (Eq. 6 argmin)."""
        return self.optimizer.best_depth(self._to_gemm(gemm))

    def run_gemm(self, gemm: GemmShape | tuple[int, int, int]) -> LayerSchedule:
        """Schedule one GEMM with the optimal pipeline mode."""
        return self.backend.schedule_layer(self._to_gemm(gemm), self.config, index=1)

    def run_model(self, model: WorkloadArgument) -> ModelSchedule:
        """Schedule every layer of a workload with per-layer mode selection.

        Accepts a CNN layer table, any :class:`repro.workloads` workload
        object (e.g. a transformer trace), a registry name string
        (``"bert_base"``, ``"resnet34@bs8"``) or an explicit GEMM list.
        """
        return self.backend.schedule_model(model, self.config)

    def run_model_conventional(self, model: WorkloadArgument) -> ModelSchedule:
        """Schedule the same model on the conventional fixed-pipeline baseline."""
        return self.backend.schedule_model_conventional(model, self.config)

    def compare_with_conventional(
        self, model: WorkloadArgument
    ) -> ComparisonReport:
        """Run a model on both accelerators and report the savings."""
        arrayflex = self.run_model(model)
        conventional = self.run_model_conventional(model)
        return ComparisonReport(
            model_name=arrayflex.model_name,
            conventional=conventional,
            arrayflex=arrayflex,
        )

    # ------------------------------------------------------------------ #
    # Functional (cycle-accurate) execution
    # ------------------------------------------------------------------ #
    def execute_gemm(
        self,
        a_matrix: np.ndarray,
        b_matrix: np.ndarray,
        collapse_depth: int | None = None,
    ) -> TiledGemmResult:
        """Execute ``A @ B`` on the cycle-accurate simulator.

        When ``collapse_depth`` is None the optimizer picks the mode from
        the GEMM dimensions.  This is bit-true and cycle-true but orders of
        magnitude slower than the analytical path; use it for validation
        and for modest matrix sizes.
        """
        a_matrix = np.asarray(a_matrix)
        b_matrix = np.asarray(b_matrix)
        t_rows, n_dim = a_matrix.shape
        m_dim = b_matrix.shape[1]
        if collapse_depth is None:
            decision = self.decide(GemmShape(m=m_dim, n=n_dim, t=t_rows, name="execute"))
            collapse_depth = decision.collapse_depth
        return run_tiled_gemm(
            a_matrix,
            b_matrix,
            rows=self.config.rows,
            cols=self.config.cols,
            collapse_depth=collapse_depth,
            configurable=True,
        )

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #
    def frequency_table(self) -> dict[str, float]:
        """Operating frequencies (GHz) of the baseline and every supported mode."""
        return self.clock.frequency_table()

    def area_report(self) -> dict[str, float]:
        """PE and array area figures, including the reconfigurability overhead."""
        return {
            "conventional_pe_um2": self.area.conventional_pe_area().total,
            "arrayflex_pe_um2": self.area.arrayflex_pe_area().total,
            "pe_area_overhead": self.area.pe_area_overhead(),
            "conventional_array_mm2": self.area.array_area_mm2(
                self.config.rows, self.config.cols, configurable=False
            ),
            "arrayflex_array_mm2": self.area.array_area_mm2(
                self.config.rows, self.config.cols, configurable=True
            ),
        }

    # ------------------------------------------------------------------ #
    @staticmethod
    def _to_gemm(gemm: GemmShape | tuple[int, int, int]) -> GemmShape:
        if isinstance(gemm, GemmShape):
            return gemm
        m, n, t = gemm
        return GemmShape(m=m, n=n, t=t, name="adhoc")
