"""Mapping whole CNNs onto the accelerators, layer by layer.

The scheduler glues the substrates together: every layer of a model is
lowered to a GEMM, the optimizer picks the pipeline mode (ArrayFlex) or the
single fixed mode (conventional baseline), the latency and clock models
give the execution time, and the energy model gives power and energy.

The resulting :class:`ModelSchedule` is the data behind Figs. 7, 8 and 9:
per-layer execution times and modes, run totals, average power and EDP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence, Union

from repro.core.clock import ClockModel
from repro.core.config import ArrayFlexConfig
from repro.core.energy import EnergyModel, LayerEnergyReport, RunEnergyReport
from repro.core.latency import LatencyModel
from repro.core.optimizer import ModeDecision, PipelineOptimizer
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import CnnModel

if TYPE_CHECKING:  # runtime dispatch is duck-typed; see resolve_workload
    from repro.workloads.base import Workload

#: Anything every scheduling entry point accepts as a workload: a CNN
#: layer table, any object satisfying the :class:`~repro.workloads.base.
#: Workload` protocol (transformer traces, pre-lowered GEMM workloads),
#: an explicit GEMM list, or a :mod:`repro.workloads` registry name.
WorkloadArgument = Union[
    CnnModel, "Workload", Sequence[GemmShape], str
]


def resolve_workload(
    model: WorkloadArgument, model_name: str | None = None
) -> tuple[list[GemmShape], str]:
    """Normalise a workload argument into ``(gemms, name)``.

    Accepts a :class:`CnnModel`, any object with a ``gemms()`` lowering
    and a ``name`` (the :class:`~repro.workloads.base.Workload`
    protocol), a registry name string (resolved through
    :func:`repro.workloads.get_workload`, including ``@bs<N>`` batch
    suffixes), or an explicit list of GEMM shapes.  Shared by the
    scheduler and every execution backend so all entry points agree on
    what a "model" is.
    """
    if isinstance(model, str):
        from repro.workloads import get_workload  # deferred: heavier import

        model = get_workload(model)
    gemms = getattr(model, "gemms", None)
    if callable(gemms):
        name = model_name or getattr(model, "name", "custom")
        resolved = list(gemms())
        if not resolved:
            raise ValueError(f"workload {name!r} lowered to an empty list of GEMMs")
        return resolved, name
    if not model:
        raise ValueError("cannot schedule an empty list of GEMMs")
    return list(model), model_name or "custom"


@dataclass(frozen=True)
class LayerSchedule:
    """Everything decided and measured for one layer."""

    index: int
    gemm: GemmShape
    collapse_depth: int
    cycles: int
    clock_frequency_ghz: float
    execution_time_ns: float
    power_mw: float
    analytical_depth: float = 0.0

    @property
    def energy_nj(self) -> float:
        return self.power_mw * self.execution_time_ns / 1000.0


@dataclass
class ModelSchedule:
    """The complete schedule of one model on one accelerator."""

    model_name: str
    accelerator: str
    rows: int
    cols: int
    layers: list[LayerSchedule] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_time_ns(self) -> float:
        return sum(layer.execution_time_ns for layer in self.layers)

    @property
    def total_time_ms(self) -> float:
        return self.total_time_ns / 1e6

    @property
    def total_energy_nj(self) -> float:
        return sum(layer.energy_nj for layer in self.layers)

    @property
    def average_power_mw(self) -> float:
        if self.total_time_ns == 0:
            return 0.0
        return self.total_energy_nj * 1000.0 / self.total_time_ns

    @property
    def energy_delay_product(self) -> float:
        return self.total_energy_nj * self.total_time_ns

    # ------------------------------------------------------------------ #
    def depth_histogram(self) -> dict[int, int]:
        """Number of layers executed at each collapse depth."""
        histogram: dict[int, int] = {}
        for layer in self.layers:
            histogram[layer.collapse_depth] = histogram.get(layer.collapse_depth, 0) + 1
        return histogram

    def time_share_by_depth(self) -> dict[int, float]:
        """Fraction of the run's time spent in each collapse depth."""
        total = self.total_time_ns
        shares: dict[int, float] = {}
        if total == 0:
            return shares
        for layer in self.layers:
            shares[layer.collapse_depth] = (
                shares.get(layer.collapse_depth, 0.0) + layer.execution_time_ns / total
            )
        return shares

    def to_energy_report(self) -> RunEnergyReport:
        return RunEnergyReport(
            total_time_ns=self.total_time_ns, total_energy_nj=self.total_energy_nj
        )


class Scheduler:
    """Schedules models on ArrayFlex (per-layer mode selection) or the baseline."""

    def __init__(self, config: ArrayFlexConfig) -> None:
        self.config = config
        self.latency = LatencyModel(config)
        self.clock = ClockModel(config)
        self.optimizer = PipelineOptimizer(config)
        self.energy = EnergyModel(config)

    # ------------------------------------------------------------------ #
    # ArrayFlex
    # ------------------------------------------------------------------ #
    def schedule_gemm_arrayflex(self, index: int, gemm: GemmShape) -> LayerSchedule:
        """Schedule one GEMM on ArrayFlex with the optimal pipeline mode."""
        decision: ModeDecision = self.optimizer.best_depth(gemm)
        power = self.energy.arrayflex_power_mw(
            decision.collapse_depth, decision.clock_frequency_ghz
        )
        return LayerSchedule(
            index=index,
            gemm=gemm,
            collapse_depth=decision.collapse_depth,
            cycles=decision.cycles,
            clock_frequency_ghz=decision.clock_frequency_ghz,
            execution_time_ns=decision.execution_time_ns,
            power_mw=power,
            analytical_depth=decision.analytical_depth,
        )

    def schedule_model_arrayflex(
        self, model: WorkloadArgument, model_name: str | None = None
    ) -> ModelSchedule:
        """Schedule a whole model on ArrayFlex (one decision per layer)."""
        gemms, name = self._resolve(model, model_name)
        schedule = ModelSchedule(
            model_name=name,
            accelerator="ArrayFlex",
            rows=self.config.rows,
            cols=self.config.cols,
        )
        for index, gemm in enumerate(gemms, start=1):
            schedule.layers.append(self.schedule_gemm_arrayflex(index, gemm))
        return schedule

    # ------------------------------------------------------------------ #
    # Conventional baseline
    # ------------------------------------------------------------------ #
    def schedule_gemm_conventional(self, index: int, gemm: GemmShape) -> LayerSchedule:
        """Schedule one GEMM on the fixed-pipeline baseline (always k = 1)."""
        cycles = self.latency.conventional_total_cycles(gemm)
        frequency = self.clock.conventional_frequency_ghz()
        time_ns = self.clock.conventional_execution_time_ns(cycles)
        power = self.energy.conventional_power_mw(frequency)
        return LayerSchedule(
            index=index,
            gemm=gemm,
            collapse_depth=1,
            cycles=cycles,
            clock_frequency_ghz=frequency,
            execution_time_ns=time_ns,
            power_mw=power,
            analytical_depth=1.0,
        )

    def schedule_model_conventional(
        self, model: WorkloadArgument, model_name: str | None = None
    ) -> ModelSchedule:
        """Schedule a whole model on the conventional baseline."""
        gemms, name = self._resolve(model, model_name)
        schedule = ModelSchedule(
            model_name=name,
            accelerator="Conventional",
            rows=self.config.rows,
            cols=self.config.cols,
        )
        for index, gemm in enumerate(gemms, start=1):
            schedule.layers.append(self.schedule_gemm_conventional(index, gemm))
        return schedule

    # ------------------------------------------------------------------ #
    def layer_energy_reports(self, schedule: ModelSchedule) -> list[LayerEnergyReport]:
        """Re-expressed per-layer reports (used by the evaluation harness)."""
        return [
            LayerEnergyReport(
                gemm=layer.gemm,
                collapse_depth=layer.collapse_depth,
                power_mw=layer.power_mw,
                execution_time_ns=layer.execution_time_ns,
            )
            for layer in schedule.layers
        ]

    @staticmethod
    def _resolve(
        model: WorkloadArgument, model_name: str | None
    ) -> tuple[list[GemmShape], str]:
        return resolve_workload(model, model_name)
