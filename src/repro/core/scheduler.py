"""Mapping whole CNNs onto the accelerators, layer by layer.

Historically this module owned both the per-layer result model *and* a
private re-implementation of the per-layer scheduling loops.  Both have
moved: the data model (:class:`~repro.core.metrics.LayerMetrics`,
:class:`~repro.core.metrics.ModelSchedule`, :func:`~repro.core.metrics.
resolve_workload`) lives in :mod:`repro.core.metrics`, and the scheduling
logic lives — exactly once — in the execution backends
(:mod:`repro.backends.base` / :mod:`repro.backends.analytical`).

:class:`Scheduler` remains as a thin facade over
:class:`~repro.backends.analytical.AnalyticalBackend` bound to one
configuration, because a large body of call sites (the baselines, the
experiment harness, tests, downstream users) still speaks its API.  It
keeps exposing the per-configuration model stack (``latency``, ``clock``,
``optimizer``, ``energy``) it always had.

The resulting :class:`ModelSchedule` is the data behind Figs. 7, 8 and 9:
per-layer execution times and modes, run totals, average power and EDP —
now with per-component energy breakdowns and activity/utilization per
layer (see :mod:`repro.core.metrics`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.clock import ClockModel
from repro.core.config import ArrayFlexConfig
from repro.core.energy import EnergyModel, LayerEnergyReport
from repro.core.latency import LatencyModel

# Re-exported for the many call sites that import the data model from
# here; the canonical home is repro.core.metrics.
from repro.core.metrics import (  # noqa: F401  (public re-exports)
    InvalidWorkloadError,
    LayerMetrics,
    LayerSchedule,
    ModelSchedule,
    WorkloadArgument,
    resolve_workload,
)
from repro.core.optimizer import PipelineOptimizer
from repro.nn.gemm_mapping import GemmShape

if TYPE_CHECKING:  # deferred at runtime: backends import this module
    from repro.backends.analytical import AnalyticalBackend

__all__ = [
    "InvalidWorkloadError",
    "LayerMetrics",
    "LayerSchedule",
    "ModelSchedule",
    "Scheduler",
    "WorkloadArgument",
    "resolve_workload",
]


class Scheduler:
    """Configuration-bound facade over the reference analytical backend.

    Schedules models on ArrayFlex (per-layer mode selection) or the
    conventional baseline.  The actual loops live in
    :class:`~repro.backends.base.ExecutionBackend`; this class only binds
    them to one :class:`ArrayFlexConfig` and preserves the historical
    call signatures.
    """

    def __init__(self, config: ArrayFlexConfig) -> None:
        self.config = config
        self.latency = LatencyModel(config)
        self.clock = ClockModel(config)
        self.optimizer = PipelineOptimizer(config)
        self.energy = EnergyModel(config)
        # Deferred import: repro.backends imports this module for the
        # shared data model, so the dependency must stay one-way at
        # import time.
        from repro.backends.analytical import AnalyticalBackend

        self._backend: AnalyticalBackend = AnalyticalBackend()

    # ------------------------------------------------------------------ #
    # ArrayFlex
    # ------------------------------------------------------------------ #
    def schedule_gemm_arrayflex(self, index: int, gemm: GemmShape) -> LayerMetrics:
        """Schedule one GEMM on ArrayFlex with the optimal pipeline mode."""
        return self._backend.schedule_layer(gemm, self.config, index=index)

    def schedule_model_arrayflex(
        self, model: WorkloadArgument, model_name: str | None = None
    ) -> ModelSchedule:
        """Schedule a whole model on ArrayFlex (one decision per layer)."""
        return self._backend.schedule_model(model, self.config, model_name=model_name)

    # ------------------------------------------------------------------ #
    # Conventional baseline
    # ------------------------------------------------------------------ #
    def schedule_gemm_conventional(self, index: int, gemm: GemmShape) -> LayerMetrics:
        """Schedule one GEMM on the fixed-pipeline baseline (always k = 1)."""
        return self._backend.schedule_layer_conventional(gemm, self.config, index=index)

    def schedule_model_conventional(
        self, model: WorkloadArgument, model_name: str | None = None
    ) -> ModelSchedule:
        """Schedule a whole model on the conventional baseline."""
        return self._backend.schedule_model_conventional(
            model, self.config, model_name=model_name
        )

    # ------------------------------------------------------------------ #
    def layer_energy_reports(self, schedule: ModelSchedule) -> list[LayerEnergyReport]:
        """Re-expressed per-layer reports (used by the evaluation harness)."""
        return [
            LayerEnergyReport(
                gemm=layer.gemm,
                collapse_depth=layer.collapse_depth,
                power_mw=layer.power_mw,
                execution_time_ns=layer.execution_time_ns,
            )
            for layer in schedule.layers
        ]
