"""Per-mode clock model bound to an accelerator configuration.

Thin, configuration-aware layer over :class:`repro.timing.delay_model.DelayModel`:
it exposes the operating points of the conventional baseline and of every
supported ArrayFlex pipeline mode, and converts cycle counts into absolute
execution time (Eq. 6: ``Tabs(k) = Ltotal(k) x Tclock(k)``).
"""

from __future__ import annotations

from repro.core.config import ArrayFlexConfig
from repro.timing.delay_model import DelayModel, OperatingPoint


class ClockModel:
    """Operating points and time conversion for one ArrayFlex configuration."""

    def __init__(self, config: ArrayFlexConfig) -> None:
        self.config = config
        self.delay_model = DelayModel(config.technology)
        self._points: dict[int, OperatingPoint] = {
            depth: self.delay_model.arrayflex_operating_point(depth)
            for depth in config.sorted_depths()
        }
        self._conventional = self.delay_model.conventional_operating_point()

    # ------------------------------------------------------------------ #
    # Operating points
    # ------------------------------------------------------------------ #
    def conventional_point(self) -> OperatingPoint:
        """The fixed-pipeline baseline's operating point (2 GHz by default)."""
        return self._conventional

    def arrayflex_point(self, collapse_depth: int) -> OperatingPoint:
        """The operating point of one supported ArrayFlex pipeline mode."""
        try:
            return self._points[collapse_depth]
        except KeyError:
            raise ValueError(
                f"collapse depth {collapse_depth} is not supported by this "
                f"configuration (supported: {self.config.sorted_depths()})"
            ) from None

    def all_arrayflex_points(self) -> list[OperatingPoint]:
        return [self._points[d] for d in self.config.sorted_depths()]

    # ------------------------------------------------------------------ #
    # Frequencies / periods
    # ------------------------------------------------------------------ #
    def frequency_ghz(self, collapse_depth: int) -> float:
        return self.arrayflex_point(collapse_depth).clock_frequency_ghz

    def period_ns(self, collapse_depth: int) -> float:
        return self.arrayflex_point(collapse_depth).clock_period_ps / 1000.0

    def conventional_frequency_ghz(self) -> float:
        return self._conventional.clock_frequency_ghz

    def conventional_period_ns(self) -> float:
        return self._conventional.clock_period_ps / 1000.0

    # ------------------------------------------------------------------ #
    # Execution time (Eq. 6)
    # ------------------------------------------------------------------ #
    def execution_time_ns(self, cycles: int, collapse_depth: int) -> float:
        """Absolute time of ``cycles`` in the given ArrayFlex pipeline mode."""
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        return cycles * self.period_ns(collapse_depth)

    def conventional_execution_time_ns(self, cycles: int) -> float:
        """Absolute time of ``cycles`` on the conventional baseline."""
        if cycles < 0:
            raise ValueError("cycle count must be non-negative")
        return cycles * self.conventional_period_ns()

    # ------------------------------------------------------------------ #
    def frequency_table(self) -> dict[str, float]:
        """Reported operating frequencies (GHz), as quoted in Section IV."""
        table = {"conventional": self.conventional_frequency_ghz()}
        for depth in self.config.sorted_depths():
            table[f"arrayflex_k{depth}"] = self.frequency_ghz(depth)
        return table
