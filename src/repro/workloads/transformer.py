"""Transformer/LLM GEMM traces: attention and MLP lowering per phase.

The paper evaluates the configurable-pipeline array only on CNNs, but its
per-layer mode decision (Eq. 6) is defined on raw GEMM shapes — nothing in
the decision math is CNN-specific.  This module lowers transformer
inference to the same ``(M, N, T)`` currency:

Every transformer layer contributes six GEMMs, with the streamed dimension
T carrying the token count:

=====================  ==========================  =======================
GEMM                   weight matrix (N x M)       streamed rows T
=====================  ==========================  =======================
``qkv``                hidden x 3*hidden           tokens
``scores`` (QK^T)      head_dim x kv_len           batch * heads * q_len
``context`` (x V)      kv_len x head_dim           batch * heads * q_len
``out``                hidden x hidden             tokens
``mlp_up``             hidden x intermediate       tokens
``mlp_down``           intermediate x hidden       tokens
=====================  ==========================  =======================

Two phases differ only in what "tokens" means:

* **prefill** processes the whole prompt at once: ``tokens = batch *
  seq_len`` and attention runs queries against keys of the same length
  (``q_len = kv_len = seq_len``).  Encoder-only models (BERT, ViT) are
  pure prefill.
* **decode** generates one token per sequence against a KV cache:
  ``tokens = batch`` (T = batch, exactly as the ROADMAP's batched-
  inference item prescribes), ``q_len = 1`` and ``kv_len = context_len``.

The attention score/context GEMMs fold the head dimension into T (heads
are independent streams over the same weight tile), the standard
batch-along-T treatment that keeps every GEMM dense and the decision
cache shape-keyed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.gemm_mapping import GemmShape
from repro.nn.layers import LayerKind
from repro.workloads.registry import register_workload
from repro.workloads.synthetic import WorkloadSuite

#: Phase tags of a :class:`TransformerModel`.
PHASES = ("prefill", "decode")


@dataclass(frozen=True)
class TransformerConfig:
    """Dimensions of a (decoder- or encoder-style) transformer stack.

    ``seq_len`` is the prompt/sequence length a prefill processes;
    ``context_len`` is the KV-cache length a decode step attends over
    (defaults to ``seq_len``); ``batch`` scales the streamed T dimension
    of every GEMM — prefill streams ``batch * seq_len`` token rows,
    decode streams ``batch`` rows.
    """

    hidden_size: int
    num_layers: int
    num_heads: int
    intermediate_size: int
    seq_len: int
    batch: int = 1
    context_len: int | None = None

    def __post_init__(self) -> None:
        if min(
            self.hidden_size,
            self.num_layers,
            self.num_heads,
            self.intermediate_size,
            self.seq_len,
            self.batch,
        ) <= 0:
            raise ValueError("all transformer dimensions must be positive")
        if self.hidden_size % self.num_heads:
            raise ValueError(
                f"hidden_size {self.hidden_size} must divide into {self.num_heads} heads"
            )
        if self.context_len is not None and self.context_len <= 0:
            raise ValueError("context_len must be positive")

    # ------------------------------------------------------------------ #
    @property
    def head_dim(self) -> int:
        return self.hidden_size // self.num_heads

    @property
    def kv_len(self) -> int:
        """Length of the key/value sequence attention runs against."""
        return self.context_len if self.context_len is not None else self.seq_len

    # ------------------------------------------------------------------ #
    def layer_gemms(self, phase: str, layer_index: int) -> list[GemmShape]:
        """The six GEMMs of one transformer layer in one phase."""
        if phase not in PHASES:
            raise ValueError(f"phase must be one of {PHASES}, got {phase!r}")
        hidden = self.hidden_size
        q_len = self.seq_len if phase == "prefill" else 1
        tokens = self.batch * q_len
        prefix = f"{'enc' if phase == 'prefill' else 'dec'}{layer_index}"

        def linear(name: str, m: int, n: int, t: int) -> GemmShape:
            return GemmShape(m=m, n=n, t=t, name=f"{prefix}_{name}", kind=LayerKind.LINEAR)

        attention_rows = self.batch * self.num_heads * q_len
        return [
            linear("qkv", 3 * hidden, hidden, tokens),
            linear("scores", self.kv_len, self.head_dim, attention_rows),
            linear("context", self.head_dim, self.kv_len, attention_rows),
            linear("out", hidden, hidden, tokens),
            linear("mlp_up", self.intermediate_size, hidden, tokens),
            linear("mlp_down", hidden, self.intermediate_size, tokens),
        ]

    def gemms(self, phase: str) -> list[GemmShape]:
        """The full per-layer trace of the stack in one phase."""
        shapes: list[GemmShape] = []
        for layer_index in range(1, self.num_layers + 1):
            shapes.extend(self.layer_gemms(phase, layer_index))
        return shapes


@dataclass(frozen=True)
class TransformerModel:
    """A named transformer workload: one config lowered in one phase.

    ``prologue`` / ``epilogue`` carry the non-repeated GEMMs around the
    layer stack (a ViT patch embedding, a GPT LM head, a classifier).
    Satisfies the :class:`~repro.workloads.base.Workload` protocol, so it
    flows through every backend / serving / sweep entry point unchanged.
    """

    name: str
    config: TransformerConfig
    phase: str = "prefill"
    prologue: tuple[GemmShape, ...] = field(default_factory=tuple)
    epilogue: tuple[GemmShape, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.phase not in PHASES:
            raise ValueError(f"phase must be one of {PHASES}, got {self.phase!r}")

    def gemms(self) -> list[GemmShape]:
        """The ordered GEMM trace (lowered once per instance, like CnnModel)."""
        cached = getattr(self, "_gemms_cache", None)
        if cached is None:
            cached = (
                tuple(self.prologue)
                + tuple(self.config.gemms(self.phase))
                + tuple(self.epilogue)
            )
            object.__setattr__(self, "_gemms_cache", cached)
        return list(cached)

    @property
    def num_layers(self) -> int:
        """Number of GEMMs in the trace (the scheduler's layer count)."""
        return len(self.gemms())

    @property
    def total_macs(self) -> int:
        return sum(shape.macs for shape in self.gemms())


# ---------------------------------------------------------------------- #
# Named workloads
# ---------------------------------------------------------------------- #
def bert_base(seq_len: int = 128, batch: int = 1) -> TransformerModel:
    """BERT-Base [Devlin et al., 2019] encoder prefill: 12 layers, h=768."""
    return TransformerModel(
        name="BERT-Base",
        config=TransformerConfig(
            hidden_size=768,
            num_layers=12,
            num_heads=12,
            intermediate_size=3072,
            seq_len=seq_len,
            batch=batch,
        ),
        phase="prefill",
    )


def vit_b16(input_resolution: int = 224, batch: int = 1) -> TransformerModel:
    """ViT-B/16 [Dosovitskiy et al., 2021] inference at 224x224.

    The 16x16 patch embedding is itself a GEMM (one token row per patch,
    kernel volume 3*16*16 = 768) and the encoder runs over the patches
    plus the class token; the classifier head closes the trace.
    """
    patch = 16
    if input_resolution % patch:
        raise ValueError(f"input resolution must be a multiple of {patch}")
    num_patches = (input_resolution // patch) ** 2
    hidden = 768
    return TransformerModel(
        name="ViT-B/16",
        config=TransformerConfig(
            hidden_size=hidden,
            num_layers=12,
            num_heads=12,
            intermediate_size=3072,
            seq_len=num_patches + 1,  # class token
            batch=batch,
        ),
        phase="prefill",
        prologue=(
            GemmShape(
                m=hidden,
                n=3 * patch * patch,
                t=batch * num_patches,
                name="patch_embed",
                kind=LayerKind.CONV,
            ),
        ),
        epilogue=(
            GemmShape(m=1000, n=hidden, t=batch, name="head", kind=LayerKind.LINEAR),
        ),
    )


def gpt2_decode(context_len: int = 1024, batch: int = 1) -> TransformerModel:
    """GPT-2-style decoder [Radford et al., 2019] autoregressive decode.

    One generated token per sequence attending over a ``context_len`` KV
    cache; the vocabulary projection (LM head) closes the trace.  Decode
    streams T = batch rows through every projection — the small-T regime
    where deep collapse modes pay off most.
    """
    hidden = 768
    return TransformerModel(
        name="GPT-2-decode",
        config=TransformerConfig(
            hidden_size=hidden,
            num_layers=12,
            num_heads=12,
            intermediate_size=3072,
            seq_len=1,
            batch=batch,
            context_len=context_len,
        ),
        phase="decode",
        epilogue=(
            GemmShape(m=50257, n=hidden, t=batch, name="lm_head", kind=LayerKind.LINEAR),
        ),
    )


def transformer_suite(batch: int = 1) -> WorkloadSuite:
    """The transformer evaluation mix: two prefill encoders plus a decoder."""
    return WorkloadSuite(
        name=f"transformer-suite-bs{batch}",
        models=(bert_base(batch=batch), vit_b16(batch=batch), gpt2_decode(batch=batch)),
    )


register_workload(
    "bert_base",
    bert_base,
    suite="transformers",
    description="BERT-Base encoder prefill (12 layers, h=768, seq 128)",
    aliases=("BERT-Base",),
)
register_workload(
    "vit_b16",
    vit_b16,
    suite="transformers",
    description="ViT-B/16 at 224x224 (patch embed + 12 encoder layers + head)",
    aliases=("ViT-B/16",),
)
register_workload(
    "gpt2_decode",
    gpt2_decode,
    suite="transformers",
    description="GPT-2-style decode step over a 1024-token KV cache (+ LM head)",
    aliases=("GPT-2-decode",),
)
