"""Registry entries for the CNN model zoo.

The paper's three evaluated CNNs form the ``cnn`` suite (what
``paper_suite()`` runs); the extra zoo models form ``cnn_extended``.
Display names are registered as aliases, so both ``resnet34`` and
``ResNet-34`` resolve.
"""

from __future__ import annotations

from repro.nn.models import convnext_tiny, mobilenet_v1, resnet34, resnet50, vgg16
from repro.workloads.registry import register_workload

register_workload(
    "resnet34",
    resnet34,
    suite="cnn",
    description="ResNet-34 at 224x224 (paper Section IV workload)",
    aliases=("ResNet-34",),
)
register_workload(
    "mobilenet_v1",
    mobilenet_v1,
    suite="cnn",
    description="MobileNetV1 at 224x224 (paper Section IV workload)",
    aliases=("MobileNetV1",),
)
register_workload(
    "convnext_tiny",
    convnext_tiny,
    suite="cnn",
    description="ConvNeXt-T at 224x224 (paper Section IV workload)",
    aliases=("ConvNeXt-T",),
)
register_workload(
    "resnet50",
    resnet50,
    suite="cnn_extended",
    description="ResNet-50 bottleneck trunk (beyond-paper CNN)",
    aliases=("ResNet-50",),
)
register_workload(
    "vgg16",
    vgg16,
    suite="cnn_extended",
    description="VGG-16, the classic large-T stress case (beyond-paper CNN)",
    aliases=("VGG-16",),
)
