"""Batched inference as a workload-to-workload adapter.

Batch-1 inference streams T rows through the array per GEMM; a batch of B
independent inputs streams B times as many rows through the *same* weight
tile — so batched inference is exactly the original trace with every T
scaled by B, as the ROADMAP prescribes.  The adapter is generic over the
:class:`~repro.workloads.base.Workload` protocol: CNNs get B images'
output pixels per layer, transformer prefill gets ``B * seq_len`` token
rows, decode gets T = B.

Scaling T changes the Eq. (6)/(7) trade-off (fill/drain amortises over
more streamed rows, pushing the optimum toward shallower modes), which is
what makes batch a first-class axis of the design space rather than a
post-hoc multiplier on batch-1 results.
"""

from __future__ import annotations

from dataclasses import replace

from repro.workloads.base import GemmWorkload, Workload


def batched_name(name: str, batch: int) -> str:
    """Display/registry identity of a batch-scaled workload."""
    return f"{name}@bs{batch}"


def batched_workload(workload: Workload, batch: int) -> Workload:
    """Map a workload to batched inference by scaling every GEMM's T.

    ``batch == 1`` returns the workload unchanged (bit-identical
    scheduling identity for everything that exists today); otherwise the
    result is a pre-lowered :class:`GemmWorkload` named
    ``"<name>@bs<batch>"``, so serving dedup keys and decision-store
    entries distinguish batch sizes.
    """
    if batch < 1:
        raise ValueError(f"batch must be at least 1, got {batch}")
    if batch == 1:
        return workload
    return GemmWorkload(
        name=batched_name(workload.name, batch),
        shapes=tuple(replace(gemm, t=gemm.t * batch) for gemm in workload.gemms()),
    )
