"""First-class workload subsystem.

The paper's per-layer mode decision is defined on raw GEMM shapes, so any
workload that lowers to an ordered GEMM list can run through the whole
stack — accelerator facade, execution backends, batch serving,
design-space sweeps, CLI.  This package makes that a first-class notion:

* :mod:`repro.workloads.base` — the :class:`Workload` protocol (``name``
  + ``gemms()``) and the pre-lowered :class:`GemmWorkload` carrier;
* :mod:`repro.workloads.registry` — the string-keyed registry
  (:func:`register_workload` / :func:`get_workload` /
  :func:`list_workloads`) with suite grouping, which every CLI/serving
  entry point resolves names through;
* :mod:`repro.workloads.cnn` — registry entries for the CNN model zoo
  (suites ``cnn`` and ``cnn_extended``);
* :mod:`repro.workloads.transformer` — the transformer front-end:
  :class:`TransformerConfig`, per-layer attention/MLP lowering with
  distinct prefill and decode phases, and the BERT-Base / ViT-B/16 /
  GPT-2-decode named workloads (suite ``transformers``);
* :mod:`repro.workloads.batching` — the batch-scaling adapter mapping any
  workload to batched inference (T scaled by the batch size);
* :mod:`repro.workloads.synthetic` — workload suites and synthetic GEMM
  generators (promoted from ``repro.nn.workloads``).

>>> from repro.workloads import get_workload, list_workloads
>>> "bert_base" in list_workloads()
True
>>> len(get_workload("bert_base").gemms())
72
>>> get_workload("gpt2_decode@bs8").gemms()[0].t
8
"""

from repro.workloads.base import GemmWorkload, Workload
from repro.workloads.registry import (
    UnknownWorkloadError,
    WorkloadEntry,
    get_suite,
    get_workload,
    list_suites,
    list_workloads,
    normalise_name,
    register_workload,
    workload_entry,
)
from repro.workloads.synthetic import (
    WorkloadSuite,
    paper_suite,
    random_gemm_shapes,
    random_int_matrices,
    synthetic_gemm_sweep,
)

# Built-in registrations (import order matters: registry first, then the
# modules that populate it).
import repro.workloads.cnn  # noqa: F401  (registers the CNN zoo)
from repro.workloads.batching import batched_name, batched_workload
from repro.workloads.transformer import (
    TransformerConfig,
    TransformerModel,
    bert_base,
    gpt2_decode,
    transformer_suite,
    vit_b16,
)

__all__ = [
    "Workload",
    "GemmWorkload",
    "WorkloadEntry",
    "UnknownWorkloadError",
    "register_workload",
    "get_workload",
    "get_suite",
    "list_workloads",
    "list_suites",
    "workload_entry",
    "normalise_name",
    "WorkloadSuite",
    "paper_suite",
    "synthetic_gemm_sweep",
    "random_gemm_shapes",
    "random_int_matrices",
    "TransformerConfig",
    "TransformerModel",
    "bert_base",
    "vit_b16",
    "gpt2_decode",
    "transformer_suite",
    "batched_workload",
    "batched_name",
]
