"""Workload suites and synthetic GEMM generators (package-level home).

The definitions live in :mod:`repro.nn.workloads` — that module predates
this package, is imported during ``repro.nn`` initialisation and therefore
must stay free of ``repro.workloads`` imports — and are re-exported here
so the workloads package presents one coherent API surface.  New code
should import from :mod:`repro.workloads`.
"""

from __future__ import annotations

from repro.nn.workloads import (
    WorkloadSuite,
    paper_suite,
    random_gemm_shapes,
    random_int_matrices,
    synthetic_gemm_sweep,
)

__all__ = [
    "WorkloadSuite",
    "paper_suite",
    "synthetic_gemm_sweep",
    "random_gemm_shapes",
    "random_int_matrices",
]
