"""The workload contract: anything that lowers to an ordered GEMM list.

The whole scheduling stack — the accelerator facade, every execution
backend, the serving front-end, the design-space explorer — consumes
workloads through exactly one interface: a ``name`` and an ordered list
of :class:`~repro.nn.gemm_mapping.GemmShape` objects.  GEMM lists are the
common currency; per-layer mode decisions are defined on raw (M, N, T)
shapes, so a workload class is "supported" the moment it can lower
itself.  CNNs (:class:`~repro.nn.models.CnnModel`) lower by im2col,
transformers (:class:`~repro.workloads.transformer.TransformerModel`) by
phase-aware attention/MLP tracing, and pre-lowered traces are carried by
:class:`GemmWorkload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.nn.gemm_mapping import GemmShape


@runtime_checkable
class Workload(Protocol):
    """Structural type of a schedulable workload.

    Implementations only need a display ``name`` and a ``gemms()``
    lowering; :class:`~repro.nn.models.CnnModel` satisfies this protocol
    unchanged, which is what lets registry workloads and legacy model
    objects flow through the same entry points.
    """

    name: str

    def gemms(self) -> list[GemmShape]: ...


@dataclass(frozen=True)
class GemmWorkload:
    """A workload that *is* its GEMM trace (already lowered).

    The carrier for pre-lowered traces: batch-scaled workloads, imported
    traces, ad-hoc shape lists that should participate in registry /
    serving identity by name.  ``gemms()`` returns a fresh list over the
    shared frozen shapes, mirroring :meth:`CnnModel.gemms`.
    """

    name: str
    shapes: tuple[GemmShape, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.shapes:
            raise ValueError(f"workload {self.name!r} has no GEMMs")

    def gemms(self) -> list[GemmShape]:
        return list(self.shapes)

    @property
    def num_layers(self) -> int:
        return len(self.shapes)

    @property
    def total_macs(self) -> int:
        return sum(shape.macs for shape in self.shapes)
