"""String-keyed workload registry with suite grouping.

Every built-in workload — the paper's CNNs, the extended CNN zoo, the
transformer front-end — registers itself here under a normalised string
key, grouped into *suites* (``cnn``, ``cnn_extended``, ``transformers``).
Call sites resolve names through :func:`get_workload`, which is what lets
the CLI, the serving front-end and the design-space explorer accept plain
strings everywhere a workload object is accepted.

The registry is entry-point friendly: factories are zero-argument (all
parameters defaulted) callables, so an external package can expose its
own workloads by calling :func:`register_workload` at import time (for
example from a ``repro.workloads`` setuptools entry point) and they
become addressable from the CLI and the serving API with no further
wiring.

Names are normalised case-insensitively (``-``, ``/`` and spaces map to
``_``), so ``get_workload("ResNet-34")`` and ``get_workload("resnet34")``
resolve identically once the alias is registered.  A trailing ``@bs<N>``
suffix requests batched inference: ``get_workload("gpt2_decode@bs8")``
returns the decode trace with T scaled by a batch of 8 (see
:mod:`repro.workloads.batching`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.workloads.base import Workload

#: Suite assigned when ``register_workload`` is not told otherwise.
DEFAULT_SUITE = "misc"

#: Separator of the inline batch-request suffix (``name@bs8``).
_BATCH_SUFFIX = "@bs"


class UnknownWorkloadError(ValueError):
    """Raised when a name resolves to no registered workload."""


@dataclass(frozen=True)
class WorkloadEntry:
    """One registration: the factory plus its catalogue metadata."""

    key: str
    factory: Callable[..., Workload]
    suite: str
    description: str = ""
    aliases: tuple[str, ...] = ()


_REGISTRY: dict[str, WorkloadEntry] = {}
_ALIASES: dict[str, str] = {}


def normalise_name(name: str) -> str:
    """The canonical registry spelling of a workload name."""
    key = name.strip().lower()
    for char in ("-", "/", " "):
        key = key.replace(char, "_")
    return key


def register_workload(
    name: str,
    factory: Callable[..., Workload] | None = None,
    *,
    suite: str = DEFAULT_SUITE,
    description: str = "",
    aliases: tuple[str, ...] = (),
    replace: bool = False,
) -> Callable:
    """Register a workload factory under a string key.

    Usable directly (``register_workload("bert_base", bert_base, ...)``)
    or as a decorator (``@register_workload("bert_base", ...)``).  Keys
    and aliases share one namespace; re-registration is an error unless
    ``replace=True`` (the escape hatch for tests and plugins that shadow
    a built-in).
    """
    if factory is None:
        return lambda fn: register_workload(
            name, fn, suite=suite, description=description, aliases=aliases, replace=replace
        )
    key = normalise_name(name)
    entry = WorkloadEntry(
        key=key,
        factory=factory,
        suite=suite,
        description=description,
        aliases=tuple(normalise_name(alias) for alias in aliases),
    )
    for candidate in (key, *entry.aliases):
        if _BATCH_SUFFIX in candidate:
            # get_workload strips '@bs...' before resolving, so such a
            # name could be registered but never looked up again.
            raise ValueError(
                f"workload name {candidate!r} may not contain {_BATCH_SUFFIX!r} "
                f"(reserved for batch suffixes)"
            )
    taken = set(_REGISTRY) | set(_ALIASES)
    if not replace:
        for candidate in (key, *entry.aliases):
            if candidate in taken:
                raise ValueError(f"workload name {candidate!r} is already registered")
    else:
        # Retire the replaced entry's aliases: a shadowing registration
        # must not keep resolving under names it never claimed.  The key
        # itself may currently be an alias of *another* entry (shadowing
        # a built-in by its display name); drop that too, or the new
        # registration would be unreachable behind the alias.
        for alias in [a for a, target in _ALIASES.items() if target == key]:
            del _ALIASES[alias]
        _ALIASES.pop(key, None)
    _REGISTRY[key] = entry
    for alias in entry.aliases:
        _ALIASES[alias] = key
    return factory


def workload_entry(name: str) -> WorkloadEntry:
    """The registration behind a name (follows aliases, raises when unknown)."""
    key = normalise_name(name)
    key = _ALIASES.get(key, key)
    entry = _REGISTRY.get(key)
    if entry is None:
        raise UnknownWorkloadError(
            f"unknown workload {name!r} (available: {list_workloads()})"
        )
    return entry


def get_workload(name: str, *, batch: int = 1, **kwargs) -> Workload:
    """Build a registered workload by name.

    ``batch`` (or an inline ``@bs<N>`` suffix on the name) maps the
    workload to batched inference by scaling every GEMM's streamed T
    dimension; ``kwargs`` pass through to the factory for parameterised
    builds (``get_workload("bert_base", seq_len=384)``).
    """
    marker = name.lower().rfind(_BATCH_SUFFIX)
    if marker >= 0:
        # Matched on the lowercased name: the suffix is as case-insensitive
        # as the workload names themselves ("resnet34@BS2" works).
        suffix = name[marker + len(_BATCH_SUFFIX):]
        name = name[:marker]
        try:
            inline_batch = int(suffix)
        except ValueError:
            raise UnknownWorkloadError(
                f"malformed batch suffix {_BATCH_SUFFIX}{suffix!r} (expected e.g. 'name@bs8')"
            ) from None
        if batch != 1:
            raise ValueError("give the batch inline or as batch=, not both")
        batch = inline_batch
    workload = workload_entry(name).factory(**kwargs)
    if batch == 1:
        return workload
    from repro.workloads.batching import batched_workload

    return batched_workload(workload, batch)


def list_workloads(suite: str | None = None) -> list[str]:
    """Sorted registry keys, optionally restricted to one suite."""
    return sorted(
        key for key, entry in _REGISTRY.items() if suite is None or entry.suite == suite
    )


def list_suites() -> dict[str, list[str]]:
    """Suite name -> sorted workload keys, for every non-empty suite."""
    suites: dict[str, list[str]] = {}
    for key, entry in _REGISTRY.items():
        suites.setdefault(entry.suite, []).append(key)
    return {suite: sorted(keys) for suite, keys in sorted(suites.items())}


def get_suite(suite: str, *, batch: int = 1) -> list[Workload]:
    """Build every workload of one suite (sorted by key)."""
    keys = list_workloads(suite)
    if not keys:
        raise UnknownWorkloadError(
            f"unknown workload suite {suite!r} (available: {sorted(list_suites())})"
        )
    return [get_workload(key, batch=batch) for key in keys]
