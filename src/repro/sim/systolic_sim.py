"""NumPy-vectorised cycle-accurate simulator of tile executions.

The simulator advances the array state cycle by cycle, exactly following
the weight-stationary dataflow of :mod:`repro.arch.dataflow`:

* the activations of a tile of A enter from the west edge with the
  mode-dependent skew (one cycle per collapsed *group* of rows);
* inside a collapsed group the activation is broadcast across its k columns
  and the k products are reduced combinationally, so the only stateful
  elements are the pipeline registers at group boundaries;
* the partial sums advance one row *group* per cycle and are captured at
  the south edge together with the tag (the ``t`` index) of the activation
  that produced them.

Because only group-boundary registers hold state, the per-cycle update is a
handful of NumPy operations over (rows × column-groups) and
(row-groups × columns) arrays, which keeps the simulator fast enough to
simulate full tiles of 128×128 arrays while remaining bit-true in the
integer domain.

The simulator reports the *measured* cycle count; the test-suite checks it
against the closed-form Eqs. (1) and (3), and the computed product against
``A @ B``.

Two entry points share that update:

* :meth:`CycleAccurateSystolicArray.simulate_tile` runs one tile — the
  scalar reference path;
* :meth:`CycleAccurateSystolicArray.simulate_tiles` runs a *batch* of
  tiles that stream the same depth T, stacking the tiles on a leading
  batch axis and replaying the register trajectory in closed form
  instead of stepping it.  The control path (tags, skew, capture
  schedule, activity counts) depends only on the geometry, the mode and
  T — never on the operand values or on how much of the array a tile
  fills — so it is derived once per distinct (geometry, mode, T) and
  cached; the value path is a pure delay network whose south-edge
  captures reduce to the padded integer product (the derivation is in
  the method body).  Outputs and every
  :class:`~repro.sim.stats.SimulationStats` field are bit-identical to
  running the tiles one at a time through the stepping path
  (property-tested in ``tests/test_sim_batched.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.arch.dataflow import WeightStationaryDataflow
from repro.sim.stats import SimulationStats
from repro.sim.trace import CycleTrace


@dataclass
class TileSimResult:
    """Output and measurements of one simulated tile."""

    output: np.ndarray
    stats: SimulationStats
    collapse_depth: int

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles


@dataclass
class _TileControl:
    """The operand-independent control schedule of a depth-T tile run.

    Everything here follows from (R, C, k, T) alone: the west-edge tag
    schedule, which (cycle, column) pairs capture an output and for which
    tag, and how many PEs see a live tag each cycle.  The batched
    simulation path computes it once per distinct (geometry, mode, T) and
    reuses it across every tile, batch and call (see ``_control_cache``).
    """

    compute_cycles: int
    weight_load_cycles: int
    #: ``counts_below[c]`` = number of south-edge capture events hitting a
    #: column < c over the whole run, so a tile using ``cols_used`` columns
    #: performs ``counts_below[cols_used]`` accumulator updates.
    capture_counts_below: np.ndarray
    #: Total PE-cycles with a live (non-bubble) tag over the whole run.
    active_pe_cycles: int


class CycleAccurateSystolicArray:
    """Cycle-accurate weight-stationary systolic array (scalar or batched).

    Parameters
    ----------
    rows, cols:
        Physical array dimensions (R, C).
    collapse_depth:
        Pipeline mode k.  Must divide both dimensions (k = 1 reproduces the
        conventional fixed pipeline's dataflow).
    configurable:
        When True the array is an ArrayFlex instance and bypassed registers
        are counted as clock gated; when False it models the conventional
        array (k must be 1 and every register is clocked every cycle).
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        collapse_depth: int = 1,
        configurable: bool = True,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        if collapse_depth < 1:
            raise ValueError("collapse depth must be >= 1")
        if rows % collapse_depth or cols % collapse_depth:
            raise ValueError(
                f"collapse depth {collapse_depth} must divide array dimensions "
                f"{rows}x{cols}"
            )
        if not configurable and collapse_depth != 1:
            raise ValueError("the conventional array only supports k = 1")
        self.rows = rows
        self.cols = cols
        self.collapse_depth = collapse_depth
        self.configurable = configurable
        self.dataflow = WeightStationaryDataflow(rows, cols, collapse_depth)

    # ------------------------------------------------------------------ #
    def simulate_tile(
        self,
        a_tile: np.ndarray,
        b_tile: np.ndarray,
        trace: CycleTrace | None = None,
    ) -> TileSimResult:
        """Simulate one tile: weight preload followed by skewed streaming.

        ``a_tile`` has shape (T, rows_used), ``b_tile`` has shape
        (rows_used, cols_used); the returned output has shape
        (T, cols_used) and equals the exact integer product.
        """
        a_tile = np.asarray(a_tile, dtype=np.int64)
        b_tile = np.asarray(b_tile, dtype=np.int64)
        if a_tile.ndim != 2 or b_tile.ndim != 2:
            raise ValueError("a_tile and b_tile must be two-dimensional")
        if a_tile.shape[1] != b_tile.shape[0]:
            raise ValueError(
                f"inner dimensions do not match: {a_tile.shape} x {b_tile.shape}"
            )
        t_rows, rows_used = a_tile.shape
        cols_used = b_tile.shape[1]
        if rows_used > self.rows or cols_used > self.cols:
            raise ValueError(
                f"tile ({rows_used}x{cols_used}) does not fit the "
                f"{self.rows}x{self.cols} array"
            )

        k = self.collapse_depth
        n_row_groups = self.rows // k
        n_col_groups = self.cols // k
        col_group_of = np.arange(self.cols) // k
        row_group_starts = np.arange(0, self.rows, k)

        weights = np.zeros((self.rows, self.cols), dtype=np.int64)
        weights[:rows_used, :cols_used] = b_tile

        stats = SimulationStats()
        stats.tiles_executed = 1
        stats.weight_load_cycles = self.dataflow.weight_load_cycles()
        stats.sram_reads += int(rows_used * cols_used)  # weight words
        stats.sram_reads += int(t_rows * rows_used)  # activation words
        if trace is not None:
            trace.record(0, CycleTrace.PHASE, weight_load_cycles=stats.weight_load_cycles)

        stream = self.dataflow.build_skewed_stream(a_tile)
        tag_schedule = self.dataflow.west_edge_schedule(t_rows)
        compute_cycles = self.dataflow.compute_cycles(t_rows)

        # Group-boundary pipeline registers (the only stateful elements).
        h_regs = np.zeros((self.rows, n_col_groups), dtype=np.int64)
        h_tag_regs = np.full((self.rows, n_col_groups), -1, dtype=np.int64)
        v_regs = np.zeros((n_row_groups, self.cols), dtype=np.int64)

        output = np.zeros((t_rows, self.cols), dtype=np.int64)
        col_indices = np.arange(self.cols)

        # Register-instance counts for activity accounting: every PE owns
        # one horizontal and one vertical pipeline register; only those at
        # group boundaries are clocked in shallow mode.
        total_regs = 2 * self.rows * self.cols
        clocked_regs = self.rows * n_col_groups + n_row_groups * self.cols
        if not self.configurable:
            clocked_regs = total_regs

        for cycle in range(compute_cycles):
            west_vals = stream[cycle]
            west_tags = tag_schedule[cycle]

            # Horizontal visibility per (row, column-group): the first group
            # sees the west edge, later groups see the boundary register of
            # the group to their west (value captured at the previous edge).
            vis_vals = np.empty((self.rows, n_col_groups), dtype=np.int64)
            vis_tags = np.empty((self.rows, n_col_groups), dtype=np.int64)
            vis_vals[:, 0] = west_vals
            vis_tags[:, 0] = west_tags
            if n_col_groups > 1:
                vis_vals[:, 1:] = h_regs[:, :-1]
                vis_tags[:, 1:] = h_tag_regs[:, :-1]

            # Broadcast across the k columns of each group and multiply by
            # the stationary weights.
            expanded_vals = vis_vals[:, col_group_of]
            expanded_tags = vis_tags[:, col_group_of]
            products = expanded_vals * weights

            # Vertical reduction: each row group adds its k products to the
            # partial sum registered below the group above.
            group_sums = np.add.reduceat(products, row_group_starts, axis=0)
            psum_in = np.zeros_like(v_regs)
            if n_row_groups > 1:
                psum_in[1:] = v_regs[:-1]
            new_v = psum_in + group_sums

            # South-edge capture: the bottom group's register is written
            # this cycle with the finished column sum for the activation
            # tag visible at the bottom row.
            bottom_tags = expanded_tags[self.rows - 1]
            valid = (bottom_tags >= 0) & (bottom_tags < t_rows)
            if np.any(valid):
                output[bottom_tags[valid], col_indices[valid]] = new_v[-1][valid]
                stats.accumulator_updates += int(np.count_nonzero(valid[:cols_used]))
                if trace is not None:
                    trace.record(
                        cycle,
                        CycleTrace.OUTPUT_CAPTURED,
                        outputs=int(np.count_nonzero(valid[:cols_used])),
                    )
            if trace is not None and np.any(west_tags >= 0):
                trace.record(
                    cycle,
                    CycleTrace.INPUT_INJECTED,
                    words=int(np.count_nonzero(west_tags >= 0)),
                )

            # Activity accounting.
            active_pes = int(np.count_nonzero(expanded_tags >= 0))
            stats.active_pe_cycles += active_pes
            stats.total_pe_cycles += self.rows * self.cols
            stats.mac_operations += active_pes
            stats.clocked_register_cycles += clocked_regs
            stats.gated_register_cycles += total_regs - clocked_regs

            # Clock edge: capture group-boundary registers.
            h_regs = vis_vals
            h_tag_regs = vis_tags
            v_regs = new_v

        stats.compute_cycles = compute_cycles
        stats.sram_writes += int(t_rows * cols_used)  # results written back
        return TileSimResult(
            output=output[:, :cols_used],
            stats=stats,
            collapse_depth=k,
        )

    # ------------------------------------------------------------------ #
    #: Memory budget of one batched call: int64 elements held by the
    #: largest transient (the skewed stream, ``tiles x cycles x rows``).
    #: 2^22 elements = 32 MiB — small enough to stay cache-friendly,
    #: large enough that realistic batches are never split.
    MAX_BATCH_ELEMENTS = 1 << 22

    #: Most-recently-used control schedules, keyed (rows, cols, k, T).
    #: Sampled probes and calibration runs revisit a handful of depths over
    #: and over; the cache makes the control side of those runs free.
    _control_cache: OrderedDict[tuple[int, int, int, int], _TileControl] = OrderedDict()
    _CONTROL_CACHE_SIZE = 64

    def max_batch_tiles(self, t_rows: int) -> int:
        """How many depth-T tiles one batched call should carry at most.

        Callers with more same-T tiles than this chunk their batches;
        the results are bit-identical either way, this only bounds the
        transient memory of a single :meth:`simulate_tiles` call.
        """
        cycles = self.dataflow.compute_cycles(t_rows)
        return max(1, self.MAX_BATCH_ELEMENTS // (cycles * self.rows))

    def _tile_control(self, t_rows: int) -> _TileControl:
        """The shared control schedule for a depth-``t_rows`` run (cached).

        Derived in one vectorised pass from the west-edge tag schedule:
        the tag visible at row r, column group g, cycle c is the tag that
        entered row r at cycle c - g (the horizontal tag pipeline is a
        pure delay line), so south-edge captures, per-column capture
        counts and active-PE totals all follow by shifting and summing
        the schedule — no per-cycle stepping and no operand values.
        """
        key = (self.rows, self.cols, self.collapse_depth, t_rows)
        cache = CycleAccurateSystolicArray._control_cache
        hit = cache.get(key)
        if hit is not None:
            cache.move_to_end(key)
            return hit

        k = self.collapse_depth
        n_col_groups = self.cols // k
        compute_cycles = self.dataflow.compute_cycles(t_rows)
        tag_schedule = self.dataflow.west_edge_schedule(t_rows)

        # South-edge capture schedule.  The tag under column `col` at
        # cycle c is the last row's west tag of cycle c - group(col).
        col_group_of = np.arange(self.cols) // k
        last_row_tags = tag_schedule[:, self.rows - 1]
        src = np.arange(compute_cycles)[:, None] - col_group_of[None, :]
        bottom_tags = np.where(
            src >= 0, last_row_tags[np.clip(src, 0, compute_cycles - 1)], -1
        )
        valid = (bottom_tags >= 0) & (bottom_tags < t_rows)
        capture_counts_below = np.concatenate(
            ([0], np.cumsum(np.count_nonzero(valid, axis=0)))
        )

        # Active-PE accounting: column group g sees the west tags of
        # cycle c - g, and each live tag activates the k PEs of its group.
        live_per_cycle = np.count_nonzero(tag_schedule >= 0, axis=1)
        prefix = np.concatenate(([0], np.cumsum(live_per_cycle)))
        windows = np.clip(compute_cycles - np.arange(n_col_groups), 0, compute_cycles)
        active_pe_cycles = int(k * prefix[windows].sum())

        control = _TileControl(
            compute_cycles=compute_cycles,
            weight_load_cycles=self.dataflow.weight_load_cycles(),
            capture_counts_below=capture_counts_below,
            active_pe_cycles=active_pe_cycles,
        )
        cache[key] = control
        if len(cache) > self._CONTROL_CACHE_SIZE:
            cache.popitem(last=False)
        return control

    def simulate_tiles(
        self,
        a_tiles,
        b_tiles,
    ) -> list[TileSimResult]:
        """Simulate a batch of tiles that stream the same depth T.

        ``a_tiles`` is a sequence of (T, rows_used_i) operand arrays (or
        one stacked (n_tiles, T, rows_used) array); ``b_tiles`` is the
        matching sequence of (rows_used_i, cols_used_i) weight tiles (or
        one stacked 3-D array), or a single 2-D tile shared by the whole
        batch.  Tiles may fill different fractions of the array — only
        the streamed depth T must agree, because T (with the geometry and
        mode) fixes the schedule that all control state follows.

        Returns one :class:`TileSimResult` per tile, in order, with the
        output and every :class:`SimulationStats` field bit-identical to
        ``[self.simulate_tile(a, b) for a, b in zip(a_tiles, b_tiles)]``.
        """
        a_list = [np.asarray(a, dtype=np.int64) for a in a_tiles]
        if not a_list:
            return []
        if isinstance(b_tiles, np.ndarray) and b_tiles.ndim == 2:
            b_list = [np.asarray(b_tiles, dtype=np.int64)] * len(a_list)
        else:
            b_list = [np.asarray(b, dtype=np.int64) for b in b_tiles]
        if len(b_list) != len(a_list):
            raise ValueError(
                f"got {len(a_list)} A tiles but {len(b_list)} B tiles"
            )
        for a_tile, b_tile in zip(a_list, b_list):
            if a_tile.ndim != 2 or b_tile.ndim != 2:
                raise ValueError("every tile must be two-dimensional")
            if a_tile.shape[1] != b_tile.shape[0]:
                raise ValueError(
                    f"inner dimensions do not match: "
                    f"{a_tile.shape} x {b_tile.shape}"
                )
            if a_tile.shape[1] > self.rows or b_tile.shape[1] > self.cols:
                raise ValueError(
                    f"tile ({a_tile.shape[1]}x{b_tile.shape[1]}) does not "
                    f"fit the {self.rows}x{self.cols} array"
                )
        t_rows = a_list[0].shape[0]
        if any(a.shape[0] != t_rows for a in a_list):
            raise ValueError(
                "all tiles of one batch must stream the same depth T"
            )

        n_tiles = len(a_list)
        rows_used = np.array([a.shape[1] for a in a_list], dtype=np.int64)
        cols_used = np.array([b.shape[1] for b in b_list], dtype=np.int64)

        k = self.collapse_depth
        n_row_groups = self.rows // k
        n_col_groups = self.cols // k

        weights = np.zeros((n_tiles, self.rows, self.cols), dtype=np.int64)
        for i, b_tile in enumerate(b_list):
            weights[i, : b_tile.shape[0], : b_tile.shape[1]] = b_tile

        # The shared control schedule: tags, skew, capture cycles and
        # activity counts are the same for every tile of the batch (they
        # never read operand values) — computed once and cached.
        control = self._tile_control(t_rows)
        compute_cycles = control.compute_cycles

        # The value datapath has a closed-form trajectory, so the batch
        # never steps registers cycle by cycle.  Both pipelines are pure
        # delay lines: column group g sees the west stream of cycle
        # c - g, and the partial sum entering row group p at cycle c was
        # produced by group p - 1 at cycle c - 1.  Chasing a south-edge
        # capture back through both delays, the value captured for tag t
        # at column `col` is
        #
        #     sum_p sum_{r in group p} stream[t + p, r] * W[r, col]
        #       = sum_r A[t, r] * W[r, col]          (stream[t + group(r), r]
        #                                             is exactly A[t, r])
        #
        # i.e. the padded integer product.  int64 addition wraps
        # associatively, so the matmul is bit-identical to the scalar
        # path's register stepping in any summation order — the property
        # test in tests/test_sim_batched.py pins exactly that.
        a_padded = np.zeros((n_tiles, t_rows, self.rows), dtype=np.int64)
        for i, a_tile in enumerate(a_list):
            a_padded[i, :, : a_tile.shape[1]] = a_tile
        output = np.matmul(a_padded, weights)
        accumulator_updates = control.capture_counts_below[cols_used]

        total_regs = 2 * self.rows * self.cols
        clocked_regs = self.rows * n_col_groups + n_row_groups * self.cols
        if not self.configurable:
            clocked_regs = total_regs

        results: list[TileSimResult] = []
        for i in range(n_tiles):
            stats = SimulationStats()
            stats.tiles_executed = 1
            stats.weight_load_cycles = control.weight_load_cycles
            stats.compute_cycles = compute_cycles
            stats.sram_reads = int(rows_used[i] * cols_used[i]) + int(
                t_rows * rows_used[i]
            )
            stats.sram_writes = int(t_rows * cols_used[i])
            stats.mac_operations = control.active_pe_cycles
            stats.active_pe_cycles = control.active_pe_cycles
            stats.total_pe_cycles = compute_cycles * self.rows * self.cols
            stats.clocked_register_cycles = compute_cycles * clocked_regs
            stats.gated_register_cycles = compute_cycles * (total_regs - clocked_regs)
            stats.accumulator_updates = int(accumulator_updates[i])
            results.append(
                TileSimResult(
                    output=output[i, :, : cols_used[i]].copy(),
                    stats=stats,
                    collapse_depth=k,
                )
            )
        return results

    # ------------------------------------------------------------------ #
    def expected_tile_cycles(self, t_rows: int) -> int:
        """Closed-form cycle count the simulation is expected to measure."""
        return self.dataflow.tile_latency_cycles(t_rows)
