"""NumPy-vectorised cycle-accurate simulator of one tile execution.

The simulator advances the array state cycle by cycle, exactly following
the weight-stationary dataflow of :mod:`repro.arch.dataflow`:

* the activations of a tile of A enter from the west edge with the
  mode-dependent skew (one cycle per collapsed *group* of rows);
* inside a collapsed group the activation is broadcast across its k columns
  and the k products are reduced combinationally, so the only stateful
  elements are the pipeline registers at group boundaries;
* the partial sums advance one row *group* per cycle and are captured at
  the south edge together with the tag (the ``t`` index) of the activation
  that produced them.

Because only group-boundary registers hold state, the per-cycle update is a
handful of NumPy operations over (rows × column-groups) and
(row-groups × columns) arrays, which keeps the simulator fast enough to
simulate full tiles of 128×128 arrays while remaining bit-true in the
integer domain.

The simulator reports the *measured* cycle count; the test-suite checks it
against the closed-form Eqs. (1) and (3), and the computed product against
``A @ B``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.arch.dataflow import WeightStationaryDataflow
from repro.sim.stats import SimulationStats
from repro.sim.trace import CycleTrace


@dataclass
class TileSimResult:
    """Output and measurements of one simulated tile."""

    output: np.ndarray
    stats: SimulationStats
    collapse_depth: int

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles


class CycleAccurateSystolicArray:
    """Cycle-accurate weight-stationary systolic array (one tile at a time).

    Parameters
    ----------
    rows, cols:
        Physical array dimensions (R, C).
    collapse_depth:
        Pipeline mode k.  Must divide both dimensions (k = 1 reproduces the
        conventional fixed pipeline's dataflow).
    configurable:
        When True the array is an ArrayFlex instance and bypassed registers
        are counted as clock gated; when False it models the conventional
        array (k must be 1 and every register is clocked every cycle).
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        collapse_depth: int = 1,
        configurable: bool = True,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        if collapse_depth < 1:
            raise ValueError("collapse depth must be >= 1")
        if rows % collapse_depth or cols % collapse_depth:
            raise ValueError(
                f"collapse depth {collapse_depth} must divide array dimensions "
                f"{rows}x{cols}"
            )
        if not configurable and collapse_depth != 1:
            raise ValueError("the conventional array only supports k = 1")
        self.rows = rows
        self.cols = cols
        self.collapse_depth = collapse_depth
        self.configurable = configurable
        self.dataflow = WeightStationaryDataflow(rows, cols, collapse_depth)

    # ------------------------------------------------------------------ #
    def simulate_tile(
        self,
        a_tile: np.ndarray,
        b_tile: np.ndarray,
        trace: CycleTrace | None = None,
    ) -> TileSimResult:
        """Simulate one tile: weight preload followed by skewed streaming.

        ``a_tile`` has shape (T, rows_used), ``b_tile`` has shape
        (rows_used, cols_used); the returned output has shape
        (T, cols_used) and equals the exact integer product.
        """
        a_tile = np.asarray(a_tile, dtype=np.int64)
        b_tile = np.asarray(b_tile, dtype=np.int64)
        if a_tile.ndim != 2 or b_tile.ndim != 2:
            raise ValueError("a_tile and b_tile must be two-dimensional")
        if a_tile.shape[1] != b_tile.shape[0]:
            raise ValueError(
                f"inner dimensions do not match: {a_tile.shape} x {b_tile.shape}"
            )
        t_rows, rows_used = a_tile.shape
        cols_used = b_tile.shape[1]
        if rows_used > self.rows or cols_used > self.cols:
            raise ValueError(
                f"tile ({rows_used}x{cols_used}) does not fit the "
                f"{self.rows}x{self.cols} array"
            )

        k = self.collapse_depth
        n_row_groups = self.rows // k
        n_col_groups = self.cols // k
        col_group_of = np.arange(self.cols) // k
        row_group_starts = np.arange(0, self.rows, k)

        weights = np.zeros((self.rows, self.cols), dtype=np.int64)
        weights[:rows_used, :cols_used] = b_tile

        stats = SimulationStats()
        stats.tiles_executed = 1
        stats.weight_load_cycles = self.dataflow.weight_load_cycles()
        stats.sram_reads += int(rows_used * cols_used)  # weight words
        stats.sram_reads += int(t_rows * rows_used)  # activation words
        if trace is not None:
            trace.record(0, CycleTrace.PHASE, weight_load_cycles=stats.weight_load_cycles)

        stream = self.dataflow.build_skewed_stream(a_tile)
        tag_schedule = self.dataflow.west_edge_schedule(t_rows)
        compute_cycles = self.dataflow.compute_cycles(t_rows)

        # Group-boundary pipeline registers (the only stateful elements).
        h_regs = np.zeros((self.rows, n_col_groups), dtype=np.int64)
        h_tag_regs = np.full((self.rows, n_col_groups), -1, dtype=np.int64)
        v_regs = np.zeros((n_row_groups, self.cols), dtype=np.int64)

        output = np.zeros((t_rows, self.cols), dtype=np.int64)
        col_indices = np.arange(self.cols)

        # Register-instance counts for activity accounting: every PE owns
        # one horizontal and one vertical pipeline register; only those at
        # group boundaries are clocked in shallow mode.
        total_regs = 2 * self.rows * self.cols
        clocked_regs = self.rows * n_col_groups + n_row_groups * self.cols
        if not self.configurable:
            clocked_regs = total_regs

        for cycle in range(compute_cycles):
            west_vals = stream[cycle]
            west_tags = tag_schedule[cycle]

            # Horizontal visibility per (row, column-group): the first group
            # sees the west edge, later groups see the boundary register of
            # the group to their west (value captured at the previous edge).
            vis_vals = np.empty((self.rows, n_col_groups), dtype=np.int64)
            vis_tags = np.empty((self.rows, n_col_groups), dtype=np.int64)
            vis_vals[:, 0] = west_vals
            vis_tags[:, 0] = west_tags
            if n_col_groups > 1:
                vis_vals[:, 1:] = h_regs[:, :-1]
                vis_tags[:, 1:] = h_tag_regs[:, :-1]

            # Broadcast across the k columns of each group and multiply by
            # the stationary weights.
            expanded_vals = vis_vals[:, col_group_of]
            expanded_tags = vis_tags[:, col_group_of]
            products = expanded_vals * weights

            # Vertical reduction: each row group adds its k products to the
            # partial sum registered below the group above.
            group_sums = np.add.reduceat(products, row_group_starts, axis=0)
            psum_in = np.zeros_like(v_regs)
            if n_row_groups > 1:
                psum_in[1:] = v_regs[:-1]
            new_v = psum_in + group_sums

            # South-edge capture: the bottom group's register is written
            # this cycle with the finished column sum for the activation
            # tag visible at the bottom row.
            bottom_tags = expanded_tags[self.rows - 1]
            valid = (bottom_tags >= 0) & (bottom_tags < t_rows)
            if np.any(valid):
                output[bottom_tags[valid], col_indices[valid]] = new_v[-1][valid]
                stats.accumulator_updates += int(np.count_nonzero(valid[:cols_used]))
                if trace is not None:
                    trace.record(
                        cycle,
                        CycleTrace.OUTPUT_CAPTURED,
                        outputs=int(np.count_nonzero(valid[:cols_used])),
                    )
            if trace is not None and np.any(west_tags >= 0):
                trace.record(
                    cycle,
                    CycleTrace.INPUT_INJECTED,
                    words=int(np.count_nonzero(west_tags >= 0)),
                )

            # Activity accounting.
            active_pes = int(np.count_nonzero(expanded_tags >= 0))
            stats.active_pe_cycles += active_pes
            stats.total_pe_cycles += self.rows * self.cols
            stats.mac_operations += active_pes
            stats.clocked_register_cycles += clocked_regs
            stats.gated_register_cycles += total_regs - clocked_regs

            # Clock edge: capture group-boundary registers.
            h_regs = vis_vals
            h_tag_regs = vis_tags
            v_regs = new_v

        stats.compute_cycles = compute_cycles
        stats.sram_writes += int(t_rows * cols_used)  # results written back
        return TileSimResult(
            output=output[:, :cols_used],
            stats=stats,
            collapse_depth=k,
        )

    # ------------------------------------------------------------------ #
    def expected_tile_cycles(self, t_rows: int) -> int:
        """Closed-form cycle count the simulation is expected to measure."""
        return self.dataflow.tile_latency_cycles(t_rows)
