"""Cycle-accurate simulation of the weight-stationary systolic array.

This package is the SCALE-Sim-style substrate of the reproduction: a fast,
NumPy-vectorised, cycle-by-cycle simulator of the weight-stationary
dataflow for both the conventional fixed pipeline (k = 1) and ArrayFlex's
collapsed (shallow) pipelines (k >= 2).

Modules
-------
* :mod:`repro.sim.systolic_sim` -- the per-tile cycle simulator.  It
  produces the exact integer GEMM result, the exact cycle count (which the
  tests compare against Eqs. 1 and 3), PE-utilisation statistics and the
  clocked/gated register counts that anchor the power model.
* :mod:`repro.sim.tiling` -- decomposition of an arbitrary (T, N, M) GEMM
  into array-sized tiles (Fig. 1(c)) and the tiled execution driver with
  south-edge accumulation.
* :mod:`repro.sim.engine` -- a small phase-based simulation engine
  (weight load, streaming, drain) with hooks for tracing.
* :mod:`repro.sim.trace` -- per-cycle traces of array activity.
* :mod:`repro.sim.stats` -- aggregated simulation statistics.
"""

from repro.sim.stats import SimulationStats
from repro.sim.systolic_sim import CycleAccurateSystolicArray, TileSimResult
from repro.sim.tiling import TileSpec, TiledGemmResult, TilingPlan, run_tiled_gemm
from repro.sim.trace import CycleTrace, TraceEvent
from repro.sim.engine import SimulationEngine, SimulationPhase

__all__ = [
    "CycleAccurateSystolicArray",
    "TileSimResult",
    "TilingPlan",
    "TileSpec",
    "TiledGemmResult",
    "run_tiled_gemm",
    "SimulationStats",
    "CycleTrace",
    "TraceEvent",
    "SimulationEngine",
    "SimulationPhase",
]
