"""A small phase-based simulation engine.

The cycle simulator in :mod:`repro.sim.systolic_sim` handles one tile; this
engine strings tiles (and their phases) together, keeps a global cycle
counter, and gives callers hook points -- which the examples use to print
progress and the tests use to check phase ordering and cycle bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from collections.abc import Callable

import numpy as np

from repro.obs.trace import get_tracer
from repro.sim.stats import SimulationStats
from repro.sim.systolic_sim import CycleAccurateSystolicArray
from repro.sim.tiling import TilingPlan


class SimulationPhase(Enum):
    """Phases of executing one tile on the weight-stationary array."""

    WEIGHT_LOAD = "weight_load"
    STREAM = "stream"
    DRAIN = "drain"


@dataclass
class PhaseRecord:
    """One executed phase: which tile, which phase, how many cycles."""

    tile_index: int
    phase: SimulationPhase
    cycles: int
    start_cycle: int

    @property
    def end_cycle(self) -> int:
        return self.start_cycle + self.cycles


class SimulationEngine:
    """Drives a tiled GEMM through the cycle-accurate array, phase by phase."""

    def __init__(
        self,
        rows: int,
        cols: int,
        collapse_depth: int = 1,
        configurable: bool = True,
        on_phase: Callable[[PhaseRecord], None] | None = None,
    ) -> None:
        self.array = CycleAccurateSystolicArray(
            rows=rows,
            cols=cols,
            collapse_depth=collapse_depth,
            configurable=configurable,
        )
        self.rows = rows
        self.cols = cols
        self.collapse_depth = collapse_depth
        self.on_phase = on_phase
        self.global_cycle = 0
        self.phase_log: list[PhaseRecord] = []

    # ------------------------------------------------------------------ #
    def _record_phase(self, tile_index: int, phase: SimulationPhase, cycles: int) -> None:
        record = PhaseRecord(
            tile_index=tile_index,
            phase=phase,
            cycles=cycles,
            start_cycle=self.global_cycle,
        )
        self.phase_log.append(record)
        self.global_cycle += cycles
        if self.on_phase is not None:
            self.on_phase(record)

    # ------------------------------------------------------------------ #
    def run_gemm(self, a_matrix: np.ndarray, b_matrix: np.ndarray) -> tuple[np.ndarray, SimulationStats]:
        """Run A @ B tile by tile, logging phases; returns (output, stats)."""
        a_matrix = np.asarray(a_matrix, dtype=np.int64)
        b_matrix = np.asarray(b_matrix, dtype=np.int64)
        t_rows, n_dim = a_matrix.shape
        m_dim = b_matrix.shape[1]
        plan = TilingPlan(n_dim=n_dim, m_dim=m_dim, rows=self.rows, cols=self.cols)

        output = np.zeros((t_rows, m_dim), dtype=np.int64)
        stats = SimulationStats()
        k = self.collapse_depth

        specs = plan.tiles()
        chunk = self.array.max_batch_tiles(t_rows)
        with get_tracer().span(
            "engine.run_gemm",
            rows=self.rows,
            cols=self.cols,
            depth=k,
            tiles=plan.total_tiles,
        ):
            for start in range(0, len(specs), chunk):
                batch = specs[start : start + chunk]
                a_tiles = [a_matrix[:, s.n_start : s.n_stop] for s in batch]
                b_tiles = [
                    b_matrix[s.n_start : s.n_stop, s.m_start : s.m_stop]
                    for s in batch
                ]
                with get_tracer().span(
                    "engine.tile_batch", first_tile=start, tiles=len(batch)
                ) as span:
                    results = self.array.simulate_tiles(a_tiles, b_tiles)

                # Split the measured compute cycles into the streaming window
                # (first to last west-edge injection) and the drain tail;
                # every tile of the batch streams the same T, so the split
                # is shared.
                stream_cycles = t_rows + self.rows // k - 1
                drain_cycles = results[0].stats.compute_cycles - stream_cycles
                span.set(
                    weight_load_cycles=results[0].stats.weight_load_cycles,
                    stream_cycles=stream_cycles,
                    drain_cycles=max(drain_cycles, 0),
                )
                for offset, (spec, result) in enumerate(zip(batch, results)):
                    tile_index = start + offset
                    output[:, spec.m_start : spec.m_stop] += result.output
                    stats.merge(result.stats)
                    self._record_phase(
                        tile_index,
                        SimulationPhase.WEIGHT_LOAD,
                        result.stats.weight_load_cycles,
                    )
                    self._record_phase(
                        tile_index, SimulationPhase.STREAM, stream_cycles
                    )
                    self._record_phase(
                        tile_index, SimulationPhase.DRAIN, max(drain_cycles, 0)
                    )

        return output, stats

    # ------------------------------------------------------------------ #
    def phase_cycles(self, phase: SimulationPhase) -> int:
        """Total cycles spent in one phase across all executed tiles."""
        return sum(record.cycles for record in self.phase_log if record.phase is phase)
