"""Tiled matrix multiplication (paper Fig. 1(c)).

When the GEMM dimensions exceed the array size (N > R and/or M > C) the
multiplication is executed tile by tile.  Each tile multiplies a
(T × R) slice of A by an (R × C) slice of B; the partial sums reaching the
south edge are accumulated into the output accumulators sitting below the
array.  The number of tiles is ``ceil(N / R) × ceil(M / C)`` and the total
cycle count is the per-tile latency times that number (Eqs. 2 and 4).

This module provides the tiling plan, a tiled execution driver running the
cycle-accurate simulator over batches of tiles, and the resulting
aggregate statistics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.arch.memory import AccumulatorBank
from repro.sim.stats import SimulationStats
from repro.sim.systolic_sim import CycleAccurateSystolicArray


@dataclass(frozen=True)
class TileSpec:
    """One tile of the tiled GEMM: slices of the N and M dimensions."""

    n_start: int
    n_stop: int
    m_start: int
    m_stop: int

    @property
    def n_size(self) -> int:
        return self.n_stop - self.n_start

    @property
    def m_size(self) -> int:
        return self.m_stop - self.m_start


class TilingPlan:
    """Decomposition of a (T, N, M) GEMM onto an R × C array."""

    def __init__(self, n_dim: int, m_dim: int, rows: int, cols: int) -> None:
        if min(n_dim, m_dim, rows, cols) <= 0:
            raise ValueError("all dimensions must be positive")
        self.n_dim = n_dim
        self.m_dim = m_dim
        self.rows = rows
        self.cols = cols

    @property
    def n_tiles_vertical(self) -> int:
        """Number of tiles along the reduction dimension N: ceil(N / R)."""
        return math.ceil(self.n_dim / self.rows)

    @property
    def n_tiles_horizontal(self) -> int:
        """Number of tiles along the output dimension M: ceil(M / C)."""
        return math.ceil(self.m_dim / self.cols)

    @property
    def total_tiles(self) -> int:
        """Total tile count of Eq. (2)/(4): ceil(N/R) x ceil(M/C)."""
        return self.n_tiles_vertical * self.n_tiles_horizontal

    def shape_populations(self) -> dict[tuple[int, int], int]:
        """Tile counts per ``(n_size, m_size)`` shape, in closed form.

        Equals ``Counter((s.n_size, s.m_size) for s in plan.tiles())``
        without materialising the specs — the sampled backend's strata
        only need the counts, not the tile coordinates.
        """

        def axis(dim: int, step: int) -> dict[int, int]:
            full, edge = divmod(dim, step)
            counts = {step: full} if full else {}
            if edge:
                counts[edge] = 1
            return counts

        return {
            (n_size, m_size): n_count * m_count
            for n_size, n_count in axis(self.n_dim, self.rows).items()
            for m_size, m_count in axis(self.m_dim, self.cols).items()
        }

    def tiles(self) -> list[TileSpec]:
        """All tiles in execution order (M-major, then N)."""
        specs: list[TileSpec] = []
        for m_start in range(0, self.m_dim, self.cols):
            m_stop = min(m_start + self.cols, self.m_dim)
            for n_start in range(0, self.n_dim, self.rows):
                n_stop = min(n_start + self.rows, self.n_dim)
                specs.append(
                    TileSpec(
                        n_start=n_start, n_stop=n_stop, m_start=m_start, m_stop=m_stop
                    )
                )
        return specs


@dataclass
class TiledGemmResult:
    """Result and measurements of a complete tiled GEMM."""

    output: np.ndarray
    stats: SimulationStats
    tiles: int
    collapse_depth: int

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles


def run_tiled_gemm(
    a_matrix: np.ndarray,
    b_matrix: np.ndarray,
    rows: int,
    cols: int,
    collapse_depth: int = 1,
    configurable: bool = True,
) -> TiledGemmResult:
    """Execute ``A @ B`` tile by tile on the cycle-accurate simulator.

    ``a_matrix`` has shape (T, N) and ``b_matrix`` shape (N, M).  Partial
    sums of tiles sharing the same output columns are accumulated in an
    :class:`~repro.arch.memory.AccumulatorBank`, exactly as in Fig. 1(a).
    """
    a_matrix = np.asarray(a_matrix, dtype=np.int64)
    b_matrix = np.asarray(b_matrix, dtype=np.int64)
    if a_matrix.ndim != 2 or b_matrix.ndim != 2:
        raise ValueError("a_matrix and b_matrix must be two-dimensional")
    if a_matrix.shape[1] != b_matrix.shape[0]:
        raise ValueError(
            f"inner dimensions do not match: {a_matrix.shape} x {b_matrix.shape}"
        )
    t_rows, n_dim = a_matrix.shape
    m_dim = b_matrix.shape[1]

    plan = TilingPlan(n_dim=n_dim, m_dim=m_dim, rows=rows, cols=cols)
    array = CycleAccurateSystolicArray(
        rows=rows,
        cols=cols,
        collapse_depth=collapse_depth,
        configurable=configurable,
    )
    accumulators = AccumulatorBank(cols=m_dim, t_rows=t_rows)
    stats = SimulationStats()

    specs = plan.tiles()
    chunk = array.max_batch_tiles(t_rows)
    for start in range(0, len(specs), chunk):
        batch = specs[start : start + chunk]
        a_tiles = [a_matrix[:, s.n_start : s.n_stop] for s in batch]
        b_tiles = [
            b_matrix[s.n_start : s.n_stop, s.m_start : s.m_stop] for s in batch
        ]
        for spec, result in zip(batch, array.simulate_tiles(a_tiles, b_tiles)):
            accumulators.accumulate_block(result.output, col_offset=spec.m_start)
            stats.merge(result.stats)

    return TiledGemmResult(
        output=accumulators.read_result(),
        stats=stats,
        tiles=plan.total_tiles,
        collapse_depth=collapse_depth,
    )
