"""Aggregated statistics of a cycle-accurate simulation run."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SimulationStats:
    """Counters accumulated while simulating one or more tiles.

    The register counters distinguish *clocked* register-cycles (a pipeline
    register received a clock edge) from *gated* register-cycles (the
    register was transparent and its clock was gated), because that split
    is what turns into clock-power savings in
    :mod:`repro.timing.power_model`.
    """

    weight_load_cycles: int = 0
    compute_cycles: int = 0
    mac_operations: int = 0
    active_pe_cycles: int = 0
    total_pe_cycles: int = 0
    clocked_register_cycles: int = 0
    gated_register_cycles: int = 0
    sram_reads: int = 0
    sram_writes: int = 0
    accumulator_updates: int = 0
    tiles_executed: int = 0
    extra: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def total_cycles(self) -> int:
        return self.weight_load_cycles + self.compute_cycles

    @property
    def pe_utilization(self) -> float:
        """Fraction of PE-cycles during the compute phase doing useful MACs."""
        if self.total_pe_cycles == 0:
            return 0.0
        return self.active_pe_cycles / self.total_pe_cycles

    @property
    def gated_register_fraction(self) -> float:
        total = self.clocked_register_cycles + self.gated_register_cycles
        if total == 0:
            return 0.0
        return self.gated_register_cycles / total

    # ------------------------------------------------------------------ #
    def merge(self, other: "SimulationStats") -> "SimulationStats":
        """Accumulate another run's counters into this one (returns self)."""
        self.weight_load_cycles += other.weight_load_cycles
        self.compute_cycles += other.compute_cycles
        self.mac_operations += other.mac_operations
        self.active_pe_cycles += other.active_pe_cycles
        self.total_pe_cycles += other.total_pe_cycles
        self.clocked_register_cycles += other.clocked_register_cycles
        self.gated_register_cycles += other.gated_register_cycles
        self.sram_reads += other.sram_reads
        self.sram_writes += other.sram_writes
        self.accumulator_updates += other.accumulator_updates
        self.tiles_executed += other.tiles_executed
        for key, value in other.extra.items():
            self.extra[key] = self.extra.get(key, 0.0) + value
        return self

    def as_dict(self) -> dict[str, float]:
        return {
            "weight_load_cycles": self.weight_load_cycles,
            "compute_cycles": self.compute_cycles,
            "total_cycles": self.total_cycles,
            "mac_operations": self.mac_operations,
            "active_pe_cycles": self.active_pe_cycles,
            "total_pe_cycles": self.total_pe_cycles,
            "pe_utilization": self.pe_utilization,
            "clocked_register_cycles": self.clocked_register_cycles,
            "gated_register_cycles": self.gated_register_cycles,
            "gated_register_fraction": self.gated_register_fraction,
            "sram_reads": self.sram_reads,
            "sram_writes": self.sram_writes,
            "accumulator_updates": self.accumulator_updates,
            "tiles_executed": self.tiles_executed,
        }
