"""Per-cycle traces of array activity.

Traces are optional (they cost memory proportional to the number of cycles)
and are mainly consumed by tests, debugging sessions and the examples that
want to show *when* outputs pop out of the south edge of the array.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event of a simulation cycle."""

    cycle: int
    kind: str
    detail: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        details = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[cycle {self.cycle:5d}] {self.kind}: {details}"


class CycleTrace:
    """An append-only, filterable log of :class:`TraceEvent` records."""

    #: Event kinds emitted by the simulator.
    WEIGHT_LOAD = "weight_load"
    INPUT_INJECTED = "input_injected"
    OUTPUT_CAPTURED = "output_captured"
    PHASE = "phase"

    def __init__(self, enabled: bool = True, max_events: int | None = None) -> None:
        self.enabled = enabled
        self.max_events = max_events
        self._events: list[TraceEvent] = []
        self.dropped_events = 0

    def record(self, cycle: int, kind: str, **detail: int) -> None:
        """Append one event (silently dropped when tracing is disabled/full)."""
        if not self.enabled:
            return
        if self.max_events is not None and len(self._events) >= self.max_events:
            self.dropped_events += 1
            return
        self._events.append(TraceEvent(cycle=cycle, kind=kind, detail=dict(detail)))

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """All events, optionally filtered by kind."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event.kind == kind]

    def first_cycle(self, kind: str) -> int | None:
        """Cycle of the first event of the given kind, or None."""
        for event in self._events:
            if event.kind == kind:
                return event.cycle
        return None

    def last_cycle(self, kind: str) -> int | None:
        """Cycle of the last event of the given kind, or None."""
        result: int | None = None
        for event in self._events:
            if event.kind == kind:
                result = event.cycle
        return result

    def summary(self) -> dict[str, int]:
        """Event counts per kind."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
