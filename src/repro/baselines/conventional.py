"""The conventional fixed-pipeline systolic array baseline.

The paper compares ArrayFlex against "a traditional fixed-pipeline systolic
array": same array geometry and dataflow, but

* no pipeline configurability -- it always runs the normal pipeline
  (k = 1),
* no carry-save adders or bypass multiplexers on the critical path, so it
  closes timing at the full 2 GHz,
* no clock gating of pipeline registers while a tile is in flight.

:class:`ConventionalAccelerator` exposes the same API shape as
:class:`repro.core.arrayflex.ArrayFlexAccelerator` so that experiments can
swap one for the other.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import ArrayFlexConfig
from repro.core.clock import ClockModel
from repro.core.energy import EnergyModel
from repro.core.scheduler import LayerSchedule, ModelSchedule, Scheduler
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import CnnModel
from repro.sim.tiling import TiledGemmResult, run_tiled_gemm
from repro.timing.area_model import AreaModel
from repro.timing.technology import TechnologyModel


class ConventionalAccelerator:
    """Fixed-pipeline weight-stationary systolic array (the paper's baseline)."""

    def __init__(
        self,
        rows: int = 128,
        cols: int = 128,
        technology: TechnologyModel | None = None,
    ) -> None:
        # The baseline re-uses the shared configuration object but only the
        # normal pipeline mode of it.
        self.config = ArrayFlexConfig(
            rows=rows,
            cols=cols,
            supported_depths=(1,),
            technology=technology or TechnologyModel.default_28nm(),
        )
        self.scheduler = Scheduler(self.config)
        self.clock = ClockModel(self.config)
        self.energy = EnergyModel(self.config)
        self.area = AreaModel(self.config.technology)

    # ------------------------------------------------------------------ #
    def run_gemm(self, gemm: GemmShape | tuple[int, int, int]) -> LayerSchedule:
        """Schedule one GEMM on the fixed pipeline at the full clock."""
        return self.scheduler.schedule_gemm_conventional(1, self._to_gemm(gemm))

    def run_model(self, model: CnnModel | list[GemmShape]) -> ModelSchedule:
        """Schedule every layer of a model (no per-layer choices to make)."""
        return self.scheduler.schedule_model_conventional(model)

    def execute_gemm(self, a_matrix: np.ndarray, b_matrix: np.ndarray) -> TiledGemmResult:
        """Execute ``A @ B`` on the cycle-accurate simulator (always k = 1)."""
        a_matrix = np.asarray(a_matrix)
        b_matrix = np.asarray(b_matrix)
        return run_tiled_gemm(
            a_matrix,
            b_matrix,
            rows=self.config.rows,
            cols=self.config.cols,
            collapse_depth=1,
            configurable=False,
        )

    # ------------------------------------------------------------------ #
    def frequency_ghz(self) -> float:
        """The baseline's single operating frequency (2 GHz by default)."""
        return self.clock.conventional_frequency_ghz()

    def array_power_mw(self) -> float:
        """Array power at the baseline operating point."""
        return self.energy.conventional_power_mw(self.frequency_ghz())

    def pe_area_um2(self) -> float:
        """Area of one conventional PE."""
        return self.area.conventional_pe_area().total

    # ------------------------------------------------------------------ #
    @staticmethod
    def _to_gemm(gemm: GemmShape | tuple[int, int, int]) -> GemmShape:
        if isinstance(gemm, GemmShape):
            return gemm
        m, n, t = gemm
        return GemmShape(m=m, n=n, t=t, name="adhoc")
