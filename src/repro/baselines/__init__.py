"""Baseline accelerators the paper compares against."""

from repro.baselines.conventional import ConventionalAccelerator

__all__ = ["ConventionalAccelerator"]
