"""The reference analytical backend.

Wraps the closed-form model stack of :mod:`repro.core` — the latency
equations (Eqs. 1–4), the discrete Eq. (6) mode search, the Eq. (5) clock
model and the activity-aware power model — exactly as the original
per-layer scheduler used them.  This is the fidelity reference every
other backend is tested against, and the default backend of
:class:`repro.ArrayFlexAccelerator`.
"""

from __future__ import annotations

from repro.backends.base import ExecutionBackend, LayerResult
from repro.core.config import ArrayFlexConfig
from repro.core.metrics import LayerMetrics
from repro.core.optimizer import ModeDecision
from repro.nn.gemm_mapping import GemmShape


class AnalyticalBackend(ExecutionBackend):
    """Per-layer closed-form scheduling (the paper's evaluation path)."""

    name = "analytical"

    def schedule_layer(
        self, gemm: GemmShape, config: ArrayFlexConfig, index: int = 1
    ) -> LayerResult:
        parts = self.components(config)
        decision: ModeDecision = parts.optimizer.best_depth(gemm)
        power, activity, utilization = parts.energy.arrayflex_layer_power(
            gemm, decision.collapse_depth, decision.clock_frequency_ghz
        )
        return LayerMetrics(
            index=index,
            gemm=gemm,
            collapse_depth=decision.collapse_depth,
            cycles=decision.cycles,
            clock_frequency_ghz=decision.clock_frequency_ghz,
            execution_time_ns=decision.execution_time_ns,
            activity=activity,
            array_utilization=utilization,
            power=power,
            analytical_depth=decision.analytical_depth,
        )
