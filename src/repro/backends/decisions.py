"""The shared per-(GEMM, configuration) decision record and its store codec.

Both decision-caching backends — :class:`~repro.backends.batched.
BatchedCachedBackend` and :class:`~repro.backends.sampled.
SampledSimBackend` — memoise the outcome of one mode decision as a
:class:`Decision` and spill it to the :class:`~repro.backends.store.
DecisionStore` as one JSON row.  Keeping the record and the row codec in
one module guarantees the two backends can never drift apart on the
on-disk layout: a row written by either is readable by the other's codec
(though never *looked up* by the other — the sampled backend's store
shards are keyed by its sampling parameters on top of the configuration
key, see :meth:`SampledSimBackend.store_config_key`).

The row layout is versioned through :data:`repro.backends.store.
DECISION_MODEL_VERSION`; widening it (as the ``error_bound`` column did)
bumps that version and purges every stale shard on the next write.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.metrics import LayerMetrics
from repro.nn.gemm_mapping import GemmShape
from repro.timing.power_model import ArrayPowerBreakdown


@dataclass(frozen=True)
class Decision:
    """Cached outcome of one (GEMM, configuration) mode decision.

    ``error_bound`` is the relative statistical uncertainty of ``cycles``
    reported by estimating backends (the sampled-simulation backend);
    exact backends leave it ``None``.  See
    :attr:`repro.core.metrics.LayerMetrics.error_bound`.
    """

    collapse_depth: int
    cycles: int
    clock_frequency_ghz: float
    execution_time_ns: float
    analytical_depth: float
    activity: float
    array_utilization: float
    power: ArrayPowerBreakdown
    error_bound: float | None = None

    @property
    def power_mw(self) -> float:
        return self.power.total_mw


def decision_to_row(decision: Decision) -> list:
    """The JSON-serialisable store row of one decision.

    Floats round-trip bit-exactly through JSON (repr-based encoding), so a
    decision read back from disk equals the freshly solved one.  The row
    layout is versioned through :data:`repro.backends.store.
    DECISION_MODEL_VERSION` — widening it (as the activity-aware refactor
    and the ``error_bound`` column did) bumps that version and purges
    every stale shard.
    """
    power = decision.power
    return [
        decision.collapse_depth,
        decision.cycles,
        decision.clock_frequency_ghz,
        decision.execution_time_ns,
        decision.analytical_depth,
        decision.activity,
        decision.array_utilization,
        power.multiplier,
        power.carry_propagate_adder,
        power.carry_save_adder,
        power.bypass_muxes,
        power.register_data,
        power.register_clock,
        power.leakage,
        power.total_mw,
        decision.error_bound,
    ]


def decision_from_row(row: list) -> Decision:
    return Decision(
        collapse_depth=int(row[0]),
        cycles=int(row[1]),
        clock_frequency_ghz=float(row[2]),
        execution_time_ns=float(row[3]),
        analytical_depth=float(row[4]),
        activity=float(row[5]),
        array_utilization=float(row[6]),
        power=ArrayPowerBreakdown(
            multiplier=float(row[7]),
            carry_propagate_adder=float(row[8]),
            carry_save_adder=float(row[9]),
            bypass_muxes=float(row[10]),
            register_data=float(row[11]),
            register_clock=float(row[12]),
            leakage=float(row[13]),
            total_mw=float(row[14]),
        ),
        error_bound=None if row[15] is None else float(row[15]),
    )


def decision_to_layer(index: int, gemm: GemmShape, decision: Decision) -> LayerMetrics:
    """Rehydrate one cached decision into the standard per-layer record."""
    return LayerMetrics(
        index=index,
        gemm=gemm,
        collapse_depth=decision.collapse_depth,
        cycles=decision.cycles,
        clock_frequency_ghz=decision.clock_frequency_ghz,
        execution_time_ns=decision.execution_time_ns,
        activity=decision.activity,
        array_utilization=decision.array_utilization,
        power=decision.power,
        analytical_depth=decision.analytical_depth,
        error_bound=decision.error_bound,
    )
