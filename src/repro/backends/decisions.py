"""The shared per-(GEMM, configuration) decision record and its store codec.

Both decision-caching backends — :class:`~repro.backends.batched.
BatchedCachedBackend` and :class:`~repro.backends.sampled.
SampledSimBackend` — memoise the outcome of one mode decision as a
:class:`Decision` and spill it to the :class:`~repro.backends.store.
DecisionStore` as one row.  Keeping the record and the row codec in
one module guarantees the two backends can never drift apart on the
on-disk layout: a row written by either is readable by the other's codec
(though never *looked up* by the other — the sampled backend's store
shards are keyed by its sampling parameters on top of the configuration
key, see :meth:`SampledSimBackend.store_config_key`).

On disk a shard is one NumPy structured array (:data:`DECISION_DTYPE`):
the three GEMM dimensions followed by the sixteen columns of
:func:`decision_to_row`.  Every column is an ``int64`` or ``float64``, so
values round-trip bit-exactly, and the nullable ``error_bound`` column
encodes ``None`` as ``NaN`` (the sampled backend never reports a NaN
bound — its estimator computes finite ratios — so the encoding is
unambiguous).  The array form is what makes the store's zero-copy read
path possible: shards are memory-mapped read-only and rows are
materialised one at a time through :func:`record_to_row`, only when a
backend actually misses its in-memory LRU.

The row layout is versioned through :data:`repro.backends.store.
DECISION_MODEL_VERSION`; widening it (as the ``error_bound`` column did)
bumps that version and purges every stale shard on the next write.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.metrics import LayerMetrics
from repro.nn.gemm_mapping import GemmShape
from repro.timing.power_model import ArrayPowerBreakdown

#: Columns of one store row (see :func:`decision_to_row`): seven decision
#: scalars, the eight :class:`ArrayPowerBreakdown` components, and the
#: nullable ``error_bound``.
DECISION_ROW_WIDTH = 16

#: The columnar on-disk layout of one decision: the within-shard GEMM key
#: (m, n, t) followed by the :func:`decision_to_row` columns, in order.
DECISION_DTYPE = np.dtype(
    [
        ("m", np.int64),
        ("n", np.int64),
        ("t", np.int64),
        ("collapse_depth", np.int64),
        ("cycles", np.int64),
        ("clock_frequency_ghz", np.float64),
        ("execution_time_ns", np.float64),
        ("analytical_depth", np.float64),
        ("activity", np.float64),
        ("array_utilization", np.float64),
        ("power_multiplier", np.float64),
        ("power_carry_propagate_adder", np.float64),
        ("power_carry_save_adder", np.float64),
        ("power_bypass_muxes", np.float64),
        ("power_register_data", np.float64),
        ("power_register_clock", np.float64),
        ("power_leakage", np.float64),
        ("power_total_mw", np.float64),
        ("error_bound", np.float64),
    ]
)


@dataclass(frozen=True)
class Decision:
    """Cached outcome of one (GEMM, configuration) mode decision.

    ``error_bound`` is the relative statistical uncertainty of ``cycles``
    reported by estimating backends (the sampled-simulation backend);
    exact backends leave it ``None``.  See
    :attr:`repro.core.metrics.LayerMetrics.error_bound`.
    """

    collapse_depth: int
    cycles: int
    clock_frequency_ghz: float
    execution_time_ns: float
    analytical_depth: float
    activity: float
    array_utilization: float
    power: ArrayPowerBreakdown
    error_bound: float | None = None

    @property
    def power_mw(self) -> float:
        return self.power.total_mw


def decision_to_row(decision: Decision) -> list:
    """The JSON-serialisable store row of one decision.

    Floats round-trip bit-exactly through JSON (repr-based encoding), so a
    decision read back from disk equals the freshly solved one.  The row
    layout is versioned through :data:`repro.backends.store.
    DECISION_MODEL_VERSION` — widening it (as the activity-aware refactor
    and the ``error_bound`` column did) bumps that version and purges
    every stale shard.
    """
    power = decision.power
    return [
        decision.collapse_depth,
        decision.cycles,
        decision.clock_frequency_ghz,
        decision.execution_time_ns,
        decision.analytical_depth,
        decision.activity,
        decision.array_utilization,
        power.multiplier,
        power.carry_propagate_adder,
        power.carry_save_adder,
        power.bypass_muxes,
        power.register_data,
        power.register_clock,
        power.leakage,
        power.total_mw,
        decision.error_bound,
    ]


def decision_from_row(row: list) -> Decision:
    return Decision(
        collapse_depth=int(row[0]),
        cycles=int(row[1]),
        clock_frequency_ghz=float(row[2]),
        execution_time_ns=float(row[3]),
        analytical_depth=float(row[4]),
        activity=float(row[5]),
        array_utilization=float(row[6]),
        power=ArrayPowerBreakdown(
            multiplier=float(row[7]),
            carry_propagate_adder=float(row[8]),
            carry_save_adder=float(row[9]),
            bypass_muxes=float(row[10]),
            register_data=float(row[11]),
            register_clock=float(row[12]),
            leakage=float(row[13]),
            total_mw=float(row[14]),
        ),
        error_bound=None if row[15] is None else float(row[15]),
    )


def rows_to_records(decisions: dict[tuple, list]) -> np.ndarray:
    """Encode ``{(m, n, t): row}`` decisions as one structured array.

    The inverse of :func:`record_to_row` per entry; malformed keys or rows
    are rejected loudly (a store must never persist a shard it cannot read
    back).  ``error_bound`` ``None`` is encoded as ``NaN``.
    """
    records = np.empty(len(decisions), dtype=DECISION_DTYPE)
    for position, (key, row) in enumerate(decisions.items()):
        if not (isinstance(key, tuple) and len(key) == 3):
            raise ValueError(f"within-shard key must be an (m, n, t) tuple, got {key!r}")
        if len(row) != DECISION_ROW_WIDTH:
            raise ValueError(
                f"decision row must have {DECISION_ROW_WIDTH} columns, got {len(row)}"
            )
        error_bound = row[DECISION_ROW_WIDTH - 1]
        records[position] = (
            int(key[0]),
            int(key[1]),
            int(key[2]),
            *row[: DECISION_ROW_WIDTH - 1],
            math.nan if error_bound is None else float(error_bound),
        )
    return records


def record_to_row(record: np.void) -> list:
    """Decode one structured-array record back into the canonical row.

    Bit-exact: every column is an ``int64``/``float64``, so the list this
    returns equals the one :func:`rows_to_records` encoded, with the
    ``NaN`` sentinel of the ``error_bound`` column mapped back to ``None``
    — ready for :func:`decision_from_row`.
    """
    # .item() already yields native Python ints/floats per the dtype, so
    # slicing the tuple is the whole decode (this runs once per LRU miss
    # on the warm path — keep it lean).
    values = record.item()
    error_bound = values[18]
    row = list(values[3:18])
    row.append(None if math.isnan(error_bound) else error_bound)
    return row


def records_index(array: np.ndarray) -> dict[tuple[int, int, int], int]:
    """Map every (m, n, t) key of a shard array to its row position.

    This is the only whole-shard pass of the warm read path: three column
    reads plus one dict build, no per-row Python object materialisation.
    Later duplicates win, matching dict-merge semantics.
    """
    return dict(
        zip(
            zip(array["m"].tolist(), array["n"].tolist(), array["t"].tolist()),
            range(len(array)),
        )
    )


def decision_to_layer(index: int, gemm: GemmShape, decision: Decision) -> LayerMetrics:
    """Rehydrate one cached decision into the standard per-layer record."""
    return LayerMetrics(
        index=index,
        gemm=gemm,
        collapse_depth=decision.collapse_depth,
        cycles=decision.cycles,
        clock_frequency_ghz=decision.clock_frequency_ghz,
        execution_time_ns=decision.execution_time_ns,
        activity=decision.activity,
        array_utilization=decision.array_utilization,
        power=decision.power,
        analytical_depth=decision.analytical_depth,
        error_bound=decision.error_bound,
    )
