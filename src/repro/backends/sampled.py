"""Calibrated sampled-simulation backend.

:class:`~repro.backends.cycle_accurate.CycleAccurateBackend` buys its
confidence by simulating tiles in full, which is far too slow for the
transformer suites and 64+-point design-space sweeps the rest of the
system treats as routine.  :class:`SampledSimBackend` sits between the
``batched`` and ``cycle`` fidelities: it *measures* cycles on the same
cycle-accurate engine, but only for a small, deterministic, seeded sample
of each layer's tile population, and extrapolates to the full layer with
an explicit statistical error bound.

How one layer is estimated
--------------------------

1. **Enumerate the tile population.**  The layer's GEMM is decomposed by
   :class:`repro.sim.tiling.TilingPlan` into ``ceil(N/R) x ceil(M/C)``
   tiles, grouped into *strata* by distinct tile shape ``(N', M')`` — the
   full interior tiles plus up to three partially-filled edge/corner
   shapes.
2. **Stratified sampling with Neyman allocation.**  The layer's tile
   budget is ``sum_s min(P_s, max(min_tiles_per_shape, ceil(
   sample_fraction * P_s)))`` — the same total as uniform per-stratum
   allocation.  It is spent in two phases: a small seeded *pilot* of
   ``min(P_s, max(2, min_tiles_per_shape))`` tiles per stratum
   estimates each stratum's cycle variance, then the remaining budget is
   split across non-exhaustive strata in proportion to
   ``P_s * sqrt(var_s)`` (the Neyman-optimal split, largest-remainder
   rounded, clamped to each population).  When the pilot variances are
   all equal — including the all-zero case this engine's
   data-independent timing produces — the allocation degenerates to
   exactly the uniform per-stratum sizes, so the exact-engine numbers
   are unchanged by the two-phase machinery.  Sampled tile operands are
   synthesised from ``sample_seed`` and the sample index — the same
   synthetic-measurement convention as the cycle backend — which makes
   every measurement a pure function of ``(geometry, mode, T, tile
   shape, seed, index)`` and therefore reusable across layers and
   shareable through the memo.
3. **Calibrated streaming probes.**  Simulating a tile costs time
   proportional to its streamed dimension T.  For large T the backend
   calibrates each stratum's T-response once — three truncated probes
   (``max_probe_t``, 1.5x and 2x that) that must be exactly collinear
   with an integer slope, because the hardware's tile latency is affine
   in T (Eqs. (1)/(3)); a non-affine measurement *fails loudly* instead
   of extrapolating a wrong model.  Each sampled tile is then measured
   at the base probe length only and extrapolated with the calibrated
   slope.  All measurements — probes and samples alike — run through
   the batched :meth:`~repro.sim.systolic_sim
   .CycleAccurateSystolicArray.simulate_tiles` engine path, grouped
   across strata per streamed depth, and every simulation verifies the
   functional product against NumPy.
4. **Extrapolate with an error bound.**  The layer estimate is the
   stratified-sampling estimator ``sum_s P_s * mean_s`` and the reported
   :attr:`~repro.core.metrics.LayerMetrics.error_bound` is the relative
   half-width of its normal-theory confidence interval, with finite
   population correction:  ``z * sqrt(sum_s P_s^2 (1 - n_s/P_s) var_s /
   n_s) / estimate``.  Exhaustively sampled layers (fewer tiles than the
   sample size, or ``sample_fraction=1.0``) degenerate to exact cycle
   measurement and report ``error_bound == 0.0`` — and are bit-identical
   to the cycle backend.  In this simulator per-tile cycle counts are
   content-independent (the control path never looks at data), so
   observed variances are zero and the estimates are exact in practice;
   the variance machinery is what *detects* it rather than assumes it,
   and keeps the bound honest if the engine ever grows data-dependent
   timing.

``error_target`` switches on auto-calibration: after the initial
allocation the per-stratum samples keep doubling (deterministically —
growing a sample extends the same seeded sequence) until the estimated
relative error falls below the target or the sample is exhaustive.
Cycles measured in earlier rounds are kept within the call, so each
doubling round only simulates the *new* sample indices.

Mode selection still uses the Eq. (6) discrete search and the power/time
figures still come from the shared operating-point and energy models —
exactly like the cycle backend — so the only estimated quantity is the
cycle count, and the ``error_bound`` applies verbatim to the derived
time/energy figures.

Decisions are memoised in an LRU and optionally spilled to a
:class:`~repro.backends.store.DecisionStore`; the store shard key and the
:class:`~repro.serve.SchedulingService` dedup key both fold in
:meth:`decision_identity` (seed, fraction, sample sizes, probe cap), so a
row written under one seed/fraction can never be served for another.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.backends.base import ExecutionBackend, LayerResult, ModelTotals
from repro.backends.decisions import (
    Decision,
    decision_from_row,
    decision_to_layer,
    decision_to_row,
)
from repro.backends.store import DecisionStore
from repro.core.config import ArrayFlexConfig
from repro.core.metrics import WorkloadArgument, resolve_workload
from repro.nn.gemm_mapping import GemmShape
from repro.nn.workloads import random_int_matrices
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer
from repro.sim.systolic_sim import CycleAccurateSystolicArray
from repro.sim.tiling import TilingPlan


@dataclass(frozen=True)
class StratumEstimate:
    """Sampling outcome of one tile-shape stratum of one layer."""

    n_size: int
    m_size: int
    population: int
    sampled: int
    mean_cycles: float
    cycle_variance: float

    @property
    def exhaustive(self) -> bool:
        return self.sampled >= self.population


@dataclass(frozen=True)
class LayerCycleEstimate:
    """Extrapolated cycle count of one layer, with its uncertainty.

    ``error_bound`` is relative: the estimator guarantees
    ``|cycles - exact| <= error_bound * exact`` at the configured
    confidence level (exactly, not just in expectation, whenever the
    per-stratum variance is zero — which the engine's data-independent
    timing makes the observed case).
    """

    cycles: int
    error_bound: float
    exhaustive: bool
    simulated_tiles: int
    total_tiles: int
    strata: tuple[StratumEstimate, ...]


class SampledSimBackend(ExecutionBackend):
    """Cycle-level estimates from a seeded stratified sample of tiles."""

    name = "sampled"

    #: Bound on memoised per-tile measurements (LRU-evicted beyond this).
    MAX_TILE_MEASUREMENTS = 8192
    #: Normal-theory confidence multiplier of the reported error bound
    #: (1.96 = the conventional 95% interval).
    CONFIDENCE_Z = 1.96

    def __init__(
        self,
        sample_fraction: float = 0.05,
        min_tiles_per_shape: int = 2,
        sample_seed: int = 0,
        error_target: float | None = None,
        max_probe_t: int | None = 32,
        cache_size: int = 65536,
        store: DecisionStore | None = None,
    ) -> None:
        super().__init__()
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        if min_tiles_per_shape < 1:
            raise ValueError("min_tiles_per_shape must be at least 1")
        if sample_seed < 0:
            raise ValueError("sample_seed must be non-negative")
        if error_target is not None and error_target < 0.0:
            raise ValueError("error_target must be non-negative (or None)")
        if max_probe_t is not None and max_probe_t < 2:
            raise ValueError("max_probe_t must be at least 2 (or None to disable)")
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.sample_fraction = sample_fraction
        self.min_tiles_per_shape = min_tiles_per_shape
        self.sample_seed = sample_seed
        #: Auto-calibration target: keep growing the sample until the
        #: estimated relative error is at most this (None: fixed sample).
        self.error_target = error_target
        #: Streamed-dimension probe cap: layers with T > 2x this are
        #: measured through three truncated probes and a verified affine
        #: extrapolation along T.  None simulates every tile at full T.
        self.max_probe_t = max_probe_t
        self.cache_size = cache_size
        #: Optional disk persistence layer; see :mod:`repro.backends.store`.
        self.store = store
        self._cache: OrderedDict[tuple, Decision] = OrderedDict()
        #: The cache counters as registry instruments (same surface as
        #: the batched backend; the serving layer attaches this registry).
        self.metrics = MetricsRegistry()
        self._hits = self.metrics.counter("backend_cache_hits_total", backend=self.name)
        self._misses = self.metrics.counter(
            "backend_cache_misses_total", backend=self.name
        )
        self._store_hits = self.metrics.counter(
            "backend_cache_store_hits_total", backend=self.name
        )
        self._lock = threading.RLock()
        self._tile_cycles: OrderedDict[tuple, int] = OrderedDict()
        self._measure_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Pickling (locks cannot cross process boundaries)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state.pop("_lock", None)
        state.pop("_measure_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._lock = threading.RLock()
        self._measure_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Identity (dedup / store keying)
    # ------------------------------------------------------------------ #
    def decision_identity(self) -> tuple:
        """Sampling parameters that change this backend's numbers.

        Folded into serving dedup keys and into every store shard key
        (see :meth:`store_config_key`): the same workload estimated under
        a different seed, fraction, sample floor, probe cap or error
        target is a different computation, never a shared one.
        """
        return (
            self.name,
            self.sample_seed,
            self.sample_fraction,
            self.min_tiles_per_shape,
            self.error_target,
            self.max_probe_t,
        )

    def store_config_key(self, config: ArrayFlexConfig) -> tuple:
        """The :class:`DecisionStore` shard key of one configuration.

        The configuration's own ``cache_key`` plus
        :meth:`decision_identity`, so sampled rows can never collide with
        the batched backend's rows for the same configuration, nor with
        sampled rows produced under different sampling parameters.
        """
        return (*config.cache_key(), self.decision_identity())

    # ------------------------------------------------------------------ #
    # Protocol implementation
    # ------------------------------------------------------------------ #
    def schedule_layer(
        self, gemm: GemmShape, config: ArrayFlexConfig, index: int = 1
    ) -> LayerResult:
        return decision_to_layer(index, gemm, self._decide(gemm, config))

    def _decide(self, gemm: GemmShape, config: ArrayFlexConfig) -> Decision:
        """One cached (LRU -> store -> estimate) mode decision."""
        config_key = self.store_config_key(config)
        key = (gemm.m, gemm.n, gemm.t, config_key)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits.inc()
                return cached
        if self.store is not None:
            row = self.store.get(config_key, gemm.m, gemm.n, gemm.t)
            if row is not None:
                decision = decision_from_row(row)
                self._remember(key, decision, from_store=True)
                return decision
        decision = self._solve(gemm, config)
        if self.store is not None:
            # Buffered append: one layer is one row, so writing through
            # DecisionStore.put batches a whole model's worth of fresh
            # decisions into a single shard merge (flushed at the store's
            # row threshold and at every model boundary below) instead of
            # a read-merge-replace cycle per layer.
            self.store.put(
                config_key,
                DecisionStore.gemm_key(gemm.m, gemm.n, gemm.t),
                decision_to_row(decision),
            )
        self._remember(key, decision, from_store=False)
        return decision

    def schedule_model(
        self,
        model,
        config: ArrayFlexConfig,
        model_name: str | None = None,
    ):
        """Schedule every layer, then flush buffered store rows to disk.

        The flush makes "a finished model run is persisted" hold for the
        buffered write path exactly like it did for the old
        write-per-decision path: a second process (or a rerun) starts warm
        from everything this schedule derived.
        """
        schedule = super().schedule_model(model, config, model_name=model_name)
        self.flush_store()
        return schedule

    def schedule_model_totals(
        self,
        model: WorkloadArgument,
        config: ArrayFlexConfig,
        model_name: str | None = None,
        conventional: bool = False,
    ) -> ModelTotals:
        """Totals without materialising per-layer schedule objects.

        Mirrors the batched backend's fast path: sweeps aggregate nothing
        but total time and energy, so this accumulates the cached
        per-layer decisions directly — same values, same left-to-right
        summation order as the :class:`~repro.core.metrics.ModelSchedule`
        property sums — and additionally carries a combined model-level
        ``error_bound``: the execution-time-weighted mean of the
        per-layer relative bounds, which bounds the relative error of the
        total time (each layer's time is within its own bound, so the
        total is within their time-weighted combination).  The
        conventional baseline involves no sampling, so it delegates to
        the generic exact path.
        """
        if conventional:
            return super().schedule_model_totals(
                model, config, model_name=model_name, conventional=True
            )
        gemms, name = resolve_workload(model, model_name)
        with get_tracer().span(
            "backend.model_totals",
            backend=self.name,
            model=name,
            layers=len(gemms),
        ):
            time_ns = 0.0
            energy_nj = 0.0
            weighted_bound = 0.0
            for gemm in gemms:
                decision = self._decide(gemm, config)
                layer_time = decision.execution_time_ns
                time_ns += layer_time
                energy_nj += decision.power_mw * layer_time / 1000.0
                weighted_bound += (decision.error_bound or 0.0) * layer_time
            self.flush_store()
        bound = weighted_bound / time_ns if time_ns > 0.0 else 0.0
        return ModelTotals(
            time_ns=time_ns, energy_nj=energy_nj, error_bound=bound
        )

    def _remember(self, key: tuple, decision: Decision, from_store: bool) -> None:
        with self._lock:
            if from_store:
                self._store_hits.inc()
            else:
                self._misses.inc()
            self._cache[key] = decision
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    def _solve(self, gemm: GemmShape, config: ArrayFlexConfig) -> Decision:
        """Estimate one layer: Eq. (6) mode policy + sampled measurement."""
        with get_tracer().span(
            "backend.solve_layer", backend=self.name, gemm=gemm.name or repr(gemm)
        ):
            return self._solve_traced(gemm, config)

    def _solve_traced(self, gemm: GemmShape, config: ArrayFlexConfig) -> Decision:
        parts = self.components(config)
        mode = parts.optimizer.best_depth(gemm)
        depth = mode.collapse_depth
        estimate = self.estimate_layer_cycles(config, gemm, depth)
        frequency = parts.clock.frequency_ghz(depth)
        power, activity, utilization = parts.energy.arrayflex_layer_power(
            gemm, depth, frequency
        )
        return Decision(
            collapse_depth=depth,
            cycles=estimate.cycles,
            clock_frequency_ghz=frequency,
            execution_time_ns=parts.clock.execution_time_ns(estimate.cycles, depth),
            analytical_depth=mode.analytical_depth,
            activity=activity,
            array_utilization=utilization,
            power=power,
            error_bound=estimate.error_bound,
        )

    # ------------------------------------------------------------------ #
    # The estimator
    # ------------------------------------------------------------------ #
    def layer_estimate(
        self, gemm: GemmShape, config: ArrayFlexConfig
    ) -> LayerCycleEstimate:
        """Uncached estimate of one layer at its Eq. (6) mode.

        Introspection/report entry point: exposes the per-stratum sample
        sizes, populations and variances behind a schedule's
        ``error_bound`` (the accuracy experiment and the test-suite's
        degenerate-case checks read these).
        """
        parts = self.components(config)
        depth = parts.optimizer.best_depth(gemm).collapse_depth
        return self.estimate_layer_cycles(config, gemm, depth)

    def estimate_layer_cycles(
        self, config: ArrayFlexConfig, gemm: GemmShape, collapse_depth: int
    ) -> LayerCycleEstimate:
        """Stratified sampled-simulation estimate of one layer's cycles.

        Measurement is batched: all strata of one round are measured at
        the same effective streamed depth, so their new sample indices go
        through the cycle engine in one batched call.  Cycles measured in
        earlier rounds (the pilot, earlier ``error_target`` doublings)
        are kept in a per-call table, so each round only simulates the
        extension of the seeded sequence.
        """
        plan = TilingPlan(
            n_dim=gemm.n, m_dim=gemm.m, rows=config.rows, cols=config.cols
        )
        populations = plan.shape_populations()
        # Deterministic stratum order (largest shapes first), independent
        # of tile execution order.
        shapes = sorted(populations, reverse=True)
        t_rows = gemm.t
        cap = self.max_probe_t
        capped = cap is not None and t_rows > 2 * cap
        slopes = (
            self._calibrate_slopes(config, collapse_depth, shapes)
            if capped
            else {}
        )
        base_t = cap if capped else t_rows

        measured: dict[tuple[int, int], list[int]] = {
            shape: [] for shape in shapes
        }

        def extend_to(targets: dict[tuple[int, int], int]) -> None:
            items: list[tuple[int, int, int]] = []
            owners: list[tuple[int, int]] = []
            for shape in shapes:
                for index in range(len(measured[shape]), targets[shape]):
                    items.append((shape[0], shape[1], index))
                    owners.append(shape)
            if not items:
                return
            for shape, cycles in zip(
                owners,
                self._simulate_batch(config, collapse_depth, base_t, items),
            ):
                if capped:
                    cycles += slopes[shape] * (t_rows - base_t)
                measured[shape].append(cycles)

        # Phase 1: the seeded pilot, enough to estimate each stratum's
        # variance; phase 2: Neyman split of the remaining budget.
        uniform = {
            shape: self._allocation(populations[shape]) for shape in shapes
        }
        pilots = {
            shape: min(
                uniform[shape],
                max(2, self.min_tiles_per_shape),
                populations[shape],
            )
            for shape in shapes
        }
        extend_to(pilots)
        variances = {
            shape: self._sample_variance(measured[shape][: pilots[shape]])
            for shape in shapes
        }
        sizes = self._neyman_allocation(
            shapes, populations, pilots, variances, sum(uniform.values())
        )
        while True:
            extend_to(sizes)
            strata = tuple(
                self._stratum_estimate(
                    shape,
                    populations[shape],
                    measured[shape][: sizes[shape]],
                )
                for shape in shapes
            )
            estimate = self._combine(plan.total_tiles, strata)
            if self.error_target is None or estimate.exhaustive:
                return estimate
            if estimate.error_bound <= self.error_target:
                return estimate
            # Auto mode: double every partial stratum's sample (extending
            # the same seeded sequence — deterministic) and re-estimate.
            for shape in shapes:
                if sizes[shape] < populations[shape]:
                    sizes[shape] = min(populations[shape], 2 * sizes[shape])

    def _allocation(self, population: int) -> int:
        """Uniform per-stratum sample size of the calibration knobs.

        Also the per-stratum term of the layer's total tile budget: the
        Neyman split redistributes the sum of these, it never changes it.
        """
        size = max(
            self.min_tiles_per_shape,
            math.ceil(self.sample_fraction * population),
        )
        size = min(population, size)
        if size < population:
            # A partial sample needs at least two observations for the
            # variance term of the error bound to be estimable.
            size = min(population, max(size, 2))
        return size

    def _neyman_allocation(
        self,
        shapes: list[tuple[int, int]],
        populations: dict[tuple[int, int], int],
        pilots: dict[tuple[int, int], int],
        variances: dict[tuple[int, int], float],
        budget: int,
    ) -> dict[tuple[int, int], int]:
        """Split the layer's tile budget across strata by pilot variance.

        The Neyman-optimal allocation puts sampling effort where it
        shrinks the bound fastest: in proportion to ``P_s * sqrt(var_s)``.
        The remaining budget (total minus pilots) is apportioned by
        largest remainder, clamped to each stratum's population, with any
        clamped-off surplus redistributed to strata that still have
        capacity (largest weight first) — all deterministic.

        Degenerate cases return the uniform :meth:`_allocation` sizes
        unchanged: every stratum exhaustive at its pilot, or all pilot
        variances equal (the observed case for this engine, whose timing
        is data-independent — so the exact-engine numbers never move).
        """
        partial = [
            shape for shape in shapes if pilots[shape] < populations[shape]
        ]
        uniform = {
            shape: self._allocation(populations[shape]) for shape in shapes
        }
        if not partial:
            return uniform
        if len({variances[shape] for shape in partial}) <= 1:
            return uniform
        weights = {
            shape: populations[shape] * math.sqrt(max(variances[shape], 0.0))
            for shape in partial
        }
        total_weight = sum(weights.values())
        if total_weight <= 0.0:
            return uniform
        remaining = budget - sum(pilots.values())
        shares = {
            shape: remaining * weights[shape] / total_weight
            for shape in partial
        }
        extras = {shape: math.floor(shares[shape]) for shape in partial}
        leftover = remaining - sum(extras.values())
        by_remainder = sorted(
            partial, key=lambda shape: (shares[shape] - extras[shape], shape),
            reverse=True,
        )
        for shape in by_remainder[:leftover]:
            extras[shape] += 1

        sizes = dict(pilots)
        overflow = 0
        for shape in partial:
            sizes[shape] = pilots[shape] + extras[shape]
            if sizes[shape] > populations[shape]:
                overflow += sizes[shape] - populations[shape]
                sizes[shape] = populations[shape]
        if overflow:
            by_weight = sorted(
                partial, key=lambda shape: (weights[shape], shape), reverse=True
            )
            for shape in by_weight:
                if overflow <= 0:
                    break
                capacity = populations[shape] - sizes[shape]
                grant = min(capacity, overflow)
                sizes[shape] += grant
                overflow -= grant
        return sizes

    @staticmethod
    def _sample_variance(cycles: list[int]) -> float:
        # A single observation carries no sampling error estimate
        # (exhaustive single-tile strata report zero variance).
        if len(cycles) <= 1:
            return 0.0
        mean = sum(cycles) / len(cycles)
        return sum((c - mean) ** 2 for c in cycles) / (len(cycles) - 1)

    def _stratum_estimate(
        self,
        shape: tuple[int, int],
        population: int,
        cycles: list[int],
    ) -> StratumEstimate:
        mean = sum(cycles) / len(cycles)
        variance = self._sample_variance(cycles)
        return StratumEstimate(
            n_size=shape[0],
            m_size=shape[1],
            population=population,
            sampled=len(cycles),
            mean_cycles=mean,
            cycle_variance=variance,
        )

    def _combine(
        self, total_tiles: int, strata: tuple[StratumEstimate, ...]
    ) -> LayerCycleEstimate:
        """Fold per-stratum samples into the layer estimate and its bound."""
        total = 0.0
        se_squared = 0.0
        simulated = 0
        exhaustive = True
        for stratum in strata:
            total += stratum.population * stratum.mean_cycles
            simulated += stratum.sampled
            if not stratum.exhaustive:
                exhaustive = False
                finite_population = 1.0 - stratum.sampled / stratum.population
                se_squared += (
                    stratum.population**2
                    * finite_population
                    * stratum.cycle_variance
                    / stratum.sampled
                )
        cycles = int(round(total))
        if exhaustive or total <= 0.0:
            bound = 0.0
        else:
            bound = self.CONFIDENCE_Z * math.sqrt(se_squared) / total
        return LayerCycleEstimate(
            cycles=cycles,
            error_bound=bound,
            exhaustive=exhaustive,
            simulated_tiles=simulated,
            total_tiles=total_tiles,
            strata=strata,
        )

    # ------------------------------------------------------------------ #
    # Tile measurement (calibrated streaming probes + memo)
    # ------------------------------------------------------------------ #
    def _calibrate_slopes(
        self,
        config: ArrayFlexConfig,
        collapse_depth: int,
        shapes: list[tuple[int, int]],
    ) -> dict[tuple[int, int], int]:
        """Cycles-per-streamed-row slope of every stratum, measured.

        Three probe simulations per stratum, batched *across strata* per
        probe depth (all strata's low probes run in one engine call, then
        all mid probes, then all high).  The tile latency must be affine
        in T (Eqs. (1)/(3)), so each stratum's probes have to be exactly
        collinear with an integer slope — otherwise the extrapolation
        model is wrong and we refuse to use it.  Probe measurements share
        the memo, so re-calibrating a shape another layer already probed
        costs three memo lookups.
        """
        cap = self.max_probe_t
        low, mid, high = cap, cap + (cap + 1) // 2, 2 * cap
        with get_tracer().span(
            "sampled.calibrate",
            backend=self.name,
            tiles=len(shapes),
            depth=collapse_depth,
        ):
            probes = {
                t: self._simulate_batch(
                    config,
                    collapse_depth,
                    t,
                    [(n_size, m_size, 0) for n_size, m_size in shapes],
                )
                for t in (low, mid, high)
            }
        slopes: dict[tuple[int, int], int] = {}
        for position, (n_size, m_size) in enumerate(shapes):
            cycles_low = probes[low][position]
            cycles_mid = probes[mid][position]
            cycles_high = probes[high][position]
            collinear = (cycles_mid - cycles_low) * (high - low) == (
                cycles_high - cycles_low
            ) * (mid - low)
            if not collinear or (cycles_high - cycles_low) % (high - low) != 0:
                raise RuntimeError(
                    f"streaming-probe calibration failed: tile cycles are not "
                    f"affine in T at probes {(low, mid, high)} for tile "
                    f"(rows={config.rows}, cols={config.cols}, N'={n_size}, "
                    f"M'={m_size}, k={collapse_depth}); refusing to extrapolate"
                )
            slopes[(n_size, m_size)] = (cycles_high - cycles_low) // (high - low)
        return slopes

    def _simulate_batch(
        self,
        config: ArrayFlexConfig,
        collapse_depth: int,
        t_rows: int,
        items: list[tuple[int, int, int]],
    ) -> list[int]:
        """Memoised cycle-engine runs of sampled tiles, batched.

        ``items`` holds ``(n_size, m_size, sample_index)`` triples that
        all stream the same depth; the returned cycle counts are in item
        order.  Memo misses — tiles of *different shapes* are fine, only
        T must agree — run through one batched
        :meth:`~repro.sim.systolic_sim.CycleAccurateSystolicArray
        .simulate_tiles` call per :meth:`max_batch_tiles` chunk, each
        verified against the NumPy product.

        The memo key deliberately omits the layer dimensions: a
        measurement is a pure function of the geometry, mode, streamed
        depth, tile shape and seeded sample index, so layers whose strata
        coincide (ubiquitous in CNN suites) share measurements — the same
        economics that make the cycle backend's per-(T, k) memo work.
        """
        keys = [
            (
                config.rows, config.cols, collapse_depth, t_rows, n_size,
                m_size, sample_index,
            )
            for n_size, m_size, sample_index in items
        ]
        cycles: dict[tuple, int] = {}
        with self._measure_lock:
            for key in keys:
                cached = self._tile_cycles.get(key)
                if cached is not None:
                    self._tile_cycles.move_to_end(key)
                    cycles[key] = cached
        todo: list[tuple[tuple, tuple[int, int, int]]] = []
        queued: set[tuple] = set()
        for key, item in zip(keys, items):
            if key not in cycles and key not in queued:
                queued.add(key)
                todo.append((key, item))
        if todo:
            array = CycleAccurateSystolicArray(
                rows=config.rows,
                cols=config.cols,
                collapse_depth=collapse_depth,
                configurable=True,
            )
            with get_tracer().span(
                "sampled.measure_batch",
                backend=self.name,
                t=t_rows,
                tiles=len(items),
                simulated=len(todo),
            ):
                chunk = array.max_batch_tiles(t_rows)
                for start in range(0, len(todo), chunk):
                    part = todo[start : start + chunk]
                    a_tiles = []
                    b_tiles = []
                    for _, (n_size, m_size, sample_index) in part:
                        a_tile, b_tile = random_int_matrices(
                            t_rows,
                            n_size,
                            m_size,
                            # Sequence seeds are deterministic across
                            # runs, threads and process pools; the sample
                            # index (not the tile coordinate) varies the
                            # operands, which is what keeps measurements
                            # shareable across layers.
                            seed=[
                                self.sample_seed, sample_index, t_rows,
                                n_size, m_size,
                            ],
                        )
                        a_tiles.append(a_tile)
                        b_tiles.append(b_tile)
                    results = array.simulate_tiles(a_tiles, b_tiles)
                    for (key, item), a_tile, b_tile, result in zip(
                        part, a_tiles, b_tiles, results
                    ):
                        if not np.array_equal(result.output, a_tile @ b_tile):
                            n_size, m_size, _ = item
                            raise RuntimeError(
                                f"sampled simulation produced a wrong product "
                                f"for tile (rows={config.rows}, "
                                f"cols={config.cols}, N'={n_size}, "
                                f"M'={m_size}, T={t_rows}, k={collapse_depth})"
                            )
                        cycles[key] = result.total_cycles
            with self._measure_lock:
                for key, _ in todo:
                    self._tile_cycles[key] = cycles[key]
                while len(self._tile_cycles) > self.MAX_TILE_MEASUREMENTS:
                    self._tile_cycles.popitem(last=False)
        return [cycles[key] for key in keys]

    # ------------------------------------------------------------------ #
    # Cache bookkeeping (same counters surface as the batched backend)
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the decision cache.

        ``store_hits`` counts memory misses answered from the attached
        :class:`~repro.backends.store.DecisionStore`; ``misses`` counts
        decisions that went through a fresh sampled estimate.
        """
        return {
            "hits": self._hits.value,
            "misses": self._misses.value,
            "store_hits": self._store_hits.value,
            "size": len(self._cache),
            "max_size": self.cache_size,
            "tile_measurements": len(self._tile_cycles),
        }

    def cache_clear(self) -> None:
        """Drop decisions, measurements and counters (the disk store persists)."""
        with self._lock:
            self._cache.clear()
            self._hits.reset()
            self._misses.reset()
            self._store_hits.reset()
        with self._measure_lock:
            self._tile_cycles.clear()
