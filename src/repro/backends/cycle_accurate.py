"""Cycle-accurate (measured) backend.

Instead of trusting Eq. (3), this backend *measures* the per-tile cycle
count by running one representative tile of each layer through the
cycle-accurate weight-stationary simulator
(:class:`repro.sim.systolic_sim.CycleAccurateSystolicArray`), checking
bit-exactness against NumPy along the way, and scales the measurement by
the Eq. (4) tile count (every tile of a layer takes the same number of
cycles — the per-tile latency depends only on the array geometry, the
streamed dimension T and the collapse depth).

Mode selection still uses the Eq. (6) discrete search — that is the
policy a deployment would programme — but the cycles, and therefore the
times and energies, come from simulation.  Because the simulator is
cycle-exact with respect to Eq. (3) (property-tested in
``tests/test_sim_systolic.py``), the schedules agree with the analytical
backend; the value of this path is that the agreement is *established by
measurement*, and that it keeps holding if either side changes.

Measurements run through the batched
:meth:`~repro.sim.systolic_sim.CycleAccurateSystolicArray.simulate_tiles`
path (bit-identical to the scalar register-stepping reference,
property-tested in ``tests/test_sim_batched.py``) and are memoised per
``(rows, cols, T, k)``, so a whole CNN costs one simulation per distinct
(T, mode) pair rather than one per layer.  Still the slowest backend —
use it for validation, not for sweeps.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.backends.base import ExecutionBackend, LayerResult
from repro.core.config import ArrayFlexConfig
from repro.core.metrics import LayerMetrics
from repro.nn.gemm_mapping import GemmShape
from repro.nn.workloads import random_int_matrices
from repro.obs.trace import get_tracer
from repro.sim.systolic_sim import CycleAccurateSystolicArray


class CycleAccurateBackend(ExecutionBackend):
    """Schedules layers from measured (simulated) tile cycle counts."""

    name = "cycle"

    #: Bound on memoised tile measurements (LRU-evicted beyond this).
    MAX_TILE_MEASUREMENTS = 4096

    def __init__(self, measurement_seed: int = 0) -> None:
        super().__init__()
        self.measurement_seed = measurement_seed
        self._tile_cycles: OrderedDict[tuple[int, int, int, int], int] = OrderedDict()
        self._measure_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Pickling (the memo lock cannot cross process boundaries)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state.pop("_measure_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._measure_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    def schedule_layer(
        self, gemm: GemmShape, config: ArrayFlexConfig, index: int = 1
    ) -> LayerResult:
        parts = self.components(config)
        decision = parts.optimizer.best_depth(gemm)
        depth = decision.collapse_depth
        per_tile = self.measure_tile_cycles(config, gemm.t, depth)
        cycles = per_tile * parts.latency.tile_count(gemm)
        time_ns = parts.clock.execution_time_ns(cycles, depth)
        frequency = parts.clock.frequency_ghz(depth)
        power, activity, utilization = parts.energy.arrayflex_layer_power(
            gemm, depth, frequency
        )
        return LayerMetrics(
            index=index,
            gemm=gemm,
            collapse_depth=depth,
            cycles=cycles,
            clock_frequency_ghz=frequency,
            execution_time_ns=time_ns,
            activity=activity,
            array_utilization=utilization,
            power=power,
            analytical_depth=decision.analytical_depth,
        )

    # ------------------------------------------------------------------ #
    def measure_tile_cycles(
        self, config: ArrayFlexConfig, t_rows: int, collapse_depth: int
    ) -> int:
        """Measured cycles of one full (R x C) tile streaming T rows.

        Runs the simulator once per distinct ``(rows, cols, T, k)`` and
        verifies the functional output against NumPy before trusting the
        cycle count.
        """
        key = (config.rows, config.cols, t_rows, collapse_depth)
        # Backends are shared across service threads: the memo's
        # get/move-to-end/evict sequence is lock-serialised, while the
        # simulation itself runs unlocked (a race costs one duplicated
        # measurement of the same deterministic number, nothing more).
        with self._measure_lock:
            cached = self._tile_cycles.get(key)
            if cached is not None:
                self._tile_cycles.move_to_end(key)
                return cached
        array = CycleAccurateSystolicArray(
            rows=config.rows,
            cols=config.cols,
            collapse_depth=collapse_depth,
            configurable=True,
        )
        a_tile, b_tile = random_int_matrices(
            t_rows, config.rows, config.cols, seed=self.measurement_seed
        )
        with get_tracer().span(
            "engine.measure_tile",
            backend=self.name,
            rows=config.rows,
            cols=config.cols,
            t=t_rows,
            depth=collapse_depth,
        ):
            result = array.simulate_tiles([a_tile], [b_tile])[0]
        if not np.array_equal(result.output, a_tile @ b_tile):
            raise RuntimeError(
                f"cycle-accurate simulation produced a wrong product for "
                f"tile (rows={config.rows}, cols={config.cols}, T={t_rows}, "
                f"k={collapse_depth})"
            )
        with self._measure_lock:
            self._tile_cycles[key] = result.total_cycles
            while len(self._tile_cycles) > self.MAX_TILE_MEASUREMENTS:
                self._tile_cycles.popitem(last=False)
        return result.total_cycles
