"""Pluggable execution backends.

One protocol, four fidelities:

========================  =====================================================
backend                   what it does
========================  =====================================================
``analytical``            reference closed forms (Eqs. 1–7), per layer
``batched``               same numbers from one vectorised NumPy pass per
                          model, memoised across repeated shapes and sweeps
``sampled``               cycle counts extrapolated from a seeded stratified
                          sample of tiles simulated on the cycle engine, with
                          per-layer statistical error bounds
``cycle``                 cycle counts measured on the cycle-accurate tile
                          simulator (slow; for validation)
========================  =====================================================

Pick one by instance (``ArrayFlexAccelerator(backend=BatchedCachedBackend())``),
by name (``create_backend("batched")``), or from the command line
(``python -m repro --backend batched ...``).
"""

from __future__ import annotations

import copy
import os

from repro.backends.analytical import AnalyticalBackend
from repro.backends.base import (
    ExecutionBackend,
    ExecutionBackendProtocol,
    LayerResult,
    ModelTotals,
)
from repro.backends.batched import BatchedCachedBackend
from repro.backends.cycle_accurate import CycleAccurateBackend
from repro.backends.sampled import SampledSimBackend
from repro.backends.store import (
    CACHE_VERSION,
    DecisionStore,
    ShardView,
    default_cache_dir,
)

#: Registry of backend constructors, keyed by their CLI names.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    AnalyticalBackend.name: AnalyticalBackend,
    BatchedCachedBackend.name: BatchedCachedBackend,
    SampledSimBackend.name: SampledSimBackend,
    CycleAccurateBackend.name: CycleAccurateBackend,
}


def attach_store(
    backend: ExecutionBackend | ExecutionBackendProtocol | str | None,
    cache_dir: str | os.PathLike[str] | None,
) -> ExecutionBackend | ExecutionBackendProtocol | str | None:
    """Attach a disk-persistent :class:`DecisionStore` for ``cache_dir``.

    The one place every ``cache_dir=`` entry point (accelerator facade,
    serving front-end, design-space explorer, size sweep) funnels
    through, so they all validate identically: ``cache_dir`` requires a
    decision-cache-owning backend — ``batched`` (the default it implies)
    or ``sampled``, whose store shards are additionally keyed by its
    sampling parameters — and refuses to clobber a store the caller
    already configured.  With ``cache_dir=None`` the backend argument
    passes through untouched.

    A caller-provided backend *instance* is never mutated: the store is
    attached to a deep copy (which routes through the backends'
    ``__getstate__``/``__setstate__``, preserving subclass type and tuned
    state while giving the clone fresh locks and an independent cache),
    so persistence stays confined to the component that asked for it.
    """
    if cache_dir is None:
        return backend
    backend = create_backend(backend, default="batched")
    if not isinstance(backend, (BatchedCachedBackend, SampledSimBackend)):
        raise ValueError(
            "cache_dir requires a decision-cache-owning backend — batched "
            "(the default) or sampled"
        )
    if backend.store is not None:
        raise ValueError("backend already has a store; drop cache_dir")
    clone = copy.deepcopy(backend)
    clone.store = DecisionStore(cache_dir)
    return clone


def model_totals(
    backend: ExecutionBackend | ExecutionBackendProtocol,
    model,
    config,
    conventional: bool = False,
    model_name: str | None = None,
) -> ModelTotals:
    """Aggregate time/energy of one run, via the backend's fast path.

    The single duck-typing shim shared by every totals consumer (the
    design-space explorer, the serving front-end): backends exposing
    ``schedule_model_totals`` use it directly (the batched one skips
    per-layer object construction); bare protocol implementations get
    the base class's materialise-and-sum generic bound to them, so the
    fallback logic lives in exactly one place — bit-identical either way.
    """
    fast = getattr(backend, "schedule_model_totals", None)
    if fast is None:
        fast = ExecutionBackend.schedule_model_totals.__get__(backend)
    return fast(model, config, model_name=model_name, conventional=conventional)


def create_backend(
    backend: ExecutionBackend | ExecutionBackendProtocol | str | None,
    default: str = "analytical",
) -> ExecutionBackend | ExecutionBackendProtocol:
    """Resolve a backend argument (instance, registry name or None).

    ``None`` resolves to ``default``: the reference analytical backend for
    the accelerator facade (historical behaviour), while sweep-style call
    sites pass ``default="batched"`` to get the numerically identical
    fast path.
    """
    if backend is None:
        backend = default
    if isinstance(backend, ExecutionBackend):
        return backend
    if not isinstance(backend, str) and isinstance(backend, ExecutionBackendProtocol):
        return backend  # duck-typed implementation of the protocol
    try:
        return BACKENDS[backend]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r} (available: {sorted(BACKENDS)})"
        ) from None


__all__ = [
    "AnalyticalBackend",
    "BatchedCachedBackend",
    "CycleAccurateBackend",
    "SampledSimBackend",
    "DecisionStore",
    "ShardView",
    "CACHE_VERSION",
    "default_cache_dir",
    "ExecutionBackend",
    "ExecutionBackendProtocol",
    "LayerResult",
    "ModelTotals",
    "BACKENDS",
    "attach_store",
    "create_backend",
    "model_totals",
]
