"""Pluggable execution backends.

One protocol, three fidelities:

========================  =====================================================
backend                   what it does
========================  =====================================================
``analytical``            reference closed forms (Eqs. 1–7), per layer
``batched``               same numbers from one vectorised NumPy pass per
                          model, memoised across repeated shapes and sweeps
``cycle``                 cycle counts measured on the cycle-accurate tile
                          simulator (slow; for validation)
========================  =====================================================

Pick one by instance (``ArrayFlexAccelerator(backend=BatchedCachedBackend())``),
by name (``create_backend("batched")``), or from the command line
(``python -m repro --backend batched ...``).
"""

from __future__ import annotations

from repro.backends.analytical import AnalyticalBackend
from repro.backends.base import (
    ExecutionBackend,
    ExecutionBackendProtocol,
    LayerResult,
)
from repro.backends.batched import BatchedCachedBackend
from repro.backends.cycle_accurate import CycleAccurateBackend

#: Registry of backend constructors, keyed by their CLI names.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    AnalyticalBackend.name: AnalyticalBackend,
    BatchedCachedBackend.name: BatchedCachedBackend,
    CycleAccurateBackend.name: CycleAccurateBackend,
}


def create_backend(
    backend: ExecutionBackend | ExecutionBackendProtocol | str | None,
    default: str = "analytical",
) -> ExecutionBackend | ExecutionBackendProtocol:
    """Resolve a backend argument (instance, registry name or None).

    ``None`` resolves to ``default``: the reference analytical backend for
    the accelerator facade (historical behaviour), while sweep-style call
    sites pass ``default="batched"`` to get the numerically identical
    fast path.
    """
    if backend is None:
        backend = default
    if isinstance(backend, ExecutionBackend):
        return backend
    if not isinstance(backend, str) and isinstance(backend, ExecutionBackendProtocol):
        return backend  # duck-typed implementation of the protocol
    try:
        return BACKENDS[backend]()
    except (KeyError, TypeError):
        raise ValueError(
            f"unknown backend {backend!r} (available: {sorted(BACKENDS)})"
        ) from None


__all__ = [
    "AnalyticalBackend",
    "BatchedCachedBackend",
    "CycleAccurateBackend",
    "ExecutionBackend",
    "ExecutionBackendProtocol",
    "LayerResult",
    "BACKENDS",
    "create_backend",
]
