"""Disk-persistent decision cache (v2: columnar, memory-mapped shards).

:class:`DecisionStore` spills the decision-caching backends' LRU caches
(batched and sampled) to an on-disk store so repeated CLI / CI
invocations skip re-deriving mode decisions entirely.  One *shard* holds
every cached decision of one accelerator configuration; shards are named
by a digest of ``(store version, config key)``, so decisions computed
under a different array geometry, mode set, activity factor, activity
model or technology model can never be confused — the technology model's
full parameter set is part of
:meth:`~repro.core.config.ArrayFlexConfig.cache_key`, and the sampled
backend widens its config key with its sampling parameters
(:meth:`~repro.backends.sampled.SampledSimBackend.store_config_key`), so
rows estimated under one seed/fraction can never answer a lookup made
under another.

The v2 on-disk format is columnar:

* ``decisions-<digest>.npy`` — one NumPy structured array
  (:data:`~repro.backends.decisions.DECISION_DTYPE`: the (m, n, t) GEMM
  key plus the sixteen decision columns, ``error_bound`` nullable as
  ``NaN``).  Shards are opened with ``np.load(..., mmap_mode="r")``, so
  N processes of a pool sweep share one page-cache copy of the payload
  instead of N parsed heaps, and a warm load costs an mmap plus one
  key-index build instead of a JSON parse.  Rows are materialised into
  Python lists one at a time (:class:`ShardView.get`), only when a
  backend actually misses its in-memory LRU.
* ``decisions-<digest>.meta.json`` — a small sidecar recording the shard's
  store version, configuration key and row count.
* ``decisions-<digest>.hits`` — an append-only use counter (one byte per
  warm start, written with an atomic ``O_APPEND`` append): hits = file
  size, recency = file mtime.  These drive the eviction score without
  putting a read-modify-replace cycle on the read path.

Within one process, unchanged shard files additionally resolve through a
global view registry validated by ``stat`` signatures, so however many
fresh :class:`DecisionStore` handles a sweep opens, each shard costs one
mmap and one key-index build per process.

Versioning and invalidation are explicit:

* :data:`STORE_FORMAT_VERSION` changes when the on-disk layout changes
  (v2: the JSON-to-columnar rewrite);
* :data:`DECISION_MODEL_VERSION` changes when the latency / clock / energy
  closed forms change (anything that would alter a cached number) or when
  the row layout changes (v4: the columnar encoding of the v3 row);
* the combined :data:`CACHE_VERSION` is baked into every shard digest and
  recorded both in a ``VERSION`` marker file and inside each sidecar, so a
  version bump atomically orphans every stale entry — including the whole
  JSON v1 era — and the store purges them on the next write.

Writes are atomic (temp file + :func:`os.replace` in the same directory)
and merge with whatever a concurrent writer already flushed, so parallel
sweeps sharing one cache directory lose at most duplicated work, never
correctness.  Single-row writers batch through :meth:`DecisionStore.put`,
which buffers rows and turns them into one merge per
:attr:`~DecisionStore.flush_rows` appends (or an explicit
:meth:`~DecisionStore.flush`).  Corrupt shards are never silently
swallowed: unreadable payloads are surfaced through a ``warnings.warn``
naming the file and counted in :meth:`~DecisionStore.stats`.  The store
never writes inside the repository tree: the default location honours
``REPRO_CACHE_DIR`` and ``XDG_CACHE_HOME`` and falls back to
``~/.cache/repro-arrayflex``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time
import warnings
from pathlib import Path

import numpy as np

from repro.backends.decisions import (
    DECISION_DTYPE,
    record_to_row,
    records_index,
    rows_to_records,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer

#: Bump when the on-disk shard layout changes.  v2: JSON payloads replaced
#: by memory-mapped columnar ``.npy`` structured arrays with a JSON
#: metadata sidecar per shard.
STORE_FORMAT_VERSION = 2
#: Bump when the scheduling closed forms (latency / clock / energy models)
#: change in a way that alters cached decisions — or when the decision
#: row layout changes.  v2: the activity-aware LayerMetrics refactor (rows
#: carry per-layer activity, array utilization and the full per-component
#: power breakdown).  v3: rows widened with the sampled-simulation
#: backend's relative ``error_bound`` column (null for the exact
#: backends).  v4: the same sixteen columns re-encoded as one structured-
#: array record per row (``error_bound`` ``None`` as ``NaN``), so every
#: JSON-era shard purges cleanly on first use.
DECISION_MODEL_VERSION = 4
#: The combined version every shard is keyed and stamped with.
CACHE_VERSION = f"{STORE_FORMAT_VERSION}.{DECISION_MODEL_VERSION}"

#: Name of the marker file recording the version a cache directory serves.
_VERSION_MARKER = "VERSION"
_SHARD_PREFIX = "decisions-"
_SHARD_SUFFIX = ".npy"
_SIDECAR_SUFFIX = ".meta.json"
_HITS_SUFFIX = ".hits"

#: Process-global shard-view registry: the shared read path.  Every
#: DecisionStore instance in this process resolves an unchanged shard
#: file to the same :class:`ShardView` (one mmap + one key index per
#: shard per process, however many fresh store handles a sweep opens);
#: entries are validated against the payload/sidecar ``stat`` signatures
#: on every lookup, so any on-disk change — a concurrent merge, a purge,
#: hand-edited files — misses the cache and re-reads.
_VIEW_CACHE: dict[str, tuple[tuple, tuple, str, str, ShardView]] = {}
_VIEW_CACHE_LOCK = threading.Lock()
_VIEW_CACHE_CAP = 1024


def _stat_sig(path: Path) -> tuple:
    stat = path.stat()
    return (stat.st_ino, stat.st_size, stat.st_mtime_ns)


def _view_cache_get(path: Path, payload_sig: tuple, sidecar_sig: tuple):
    with _VIEW_CACHE_LOCK:
        entry = _VIEW_CACHE.get(str(path))
    if entry is None or entry[0] != payload_sig or entry[1] != sidecar_sig:
        return None
    return entry[2:]


def _view_cache_put(
    path: Path,
    payload_sig: tuple,
    sidecar_sig: tuple,
    version: str,
    config_repr: str,
    view: ShardView,
) -> None:
    with _VIEW_CACHE_LOCK:
        if len(_VIEW_CACHE) >= _VIEW_CACHE_CAP:
            _VIEW_CACHE.clear()
        _VIEW_CACHE[str(path)] = (payload_sig, sidecar_sig, version, config_repr, view)


def _view_cache_discard(path: Path) -> None:
    with _VIEW_CACHE_LOCK:
        _VIEW_CACHE.pop(str(path), None)


def default_cache_dir() -> Path:
    """The user-level cache directory (never inside the repository tree).

    Resolution order: ``$REPRO_CACHE_DIR``, ``$XDG_CACHE_HOME/repro-arrayflex``,
    ``~/.cache/repro-arrayflex``.
    """
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        # expanduser: env files and CI yaml set these without a shell, so
        # a literal '~' must not become a directory in the cwd (possibly
        # inside the repository tree).
        return Path(explicit).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-arrayflex"


class ShardView:
    """Zero-copy read view of one columnar shard.

    Wraps the shard's structured array — usually a read-only memmap whose
    pages every reader process shares through the OS page cache — plus the
    ``(m, n, t) -> row position`` index.  ``get`` materialises exactly one
    row into the canonical list form (:func:`~repro.backends.decisions.
    record_to_row`), so a warm backend pays per-row decode cost only on
    the rows it actually misses in memory.
    """

    __slots__ = ("array", "_index")

    def __init__(self, array: np.ndarray, index: dict | None = None) -> None:
        self.array = array
        self._index = records_index(array) if index is None else index

    def get(self, key: tuple, default: list | None = None) -> list | None:
        position = self._index.get(key)
        if position is None:
            return default
        return record_to_row(self.array[position])

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, key: tuple) -> bool:
        return key in self._index

    def __iter__(self):
        return iter(self._index)

    def keys(self):
        return self._index.keys()


def _empty_view() -> ShardView:
    return ShardView(np.empty(0, dtype=DECISION_DTYPE), {})


class DecisionStore:
    """On-disk, versioned store of ``(GEMM, configuration) -> decision``.

    Decisions are the per-layer metrics rows cached by
    :class:`~repro.backends.batched.BatchedCachedBackend` and
    :class:`~repro.backends.sampled.SampledSimBackend` (mode, cycles,
    operating point, activity, utilization, the per-component power
    breakdown and the nullable error bound); they are stored as one
    columnar structured array per configuration (int64/float64 columns
    round-trip bit-exactly) and read back through memory-mapped
    :class:`ShardView` objects.  The store is safe for concurrent use from
    threads (a lock serialises shard mutation) and from processes (atomic
    replace + merge-on-write).
    """

    def __init__(
        self,
        directory: str | os.PathLike[str] | None = None,
        version: str = CACHE_VERSION,
        max_bytes: int | None = None,
        flush_rows: int = 256,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for no cap)")
        if flush_rows < 1:
            raise ValueError("flush_rows must be at least 1")
        self.directory = (
            Path(directory).expanduser() if directory is not None else default_cache_dir()
        )
        self.version = version
        #: Opt-in size cap: every merge prunes the lowest-value shards
        #: (fewest recorded hits, least recently used) until the on-disk
        #: footprint fits, so long-lived caches (CI runners, shared dev
        #: machines) cannot grow unboundedly.  ``None`` (the default)
        #: keeps the historical unbounded behaviour.
        self.max_bytes = max_bytes
        #: Buffered single-row appends (:meth:`put`) are flushed as one
        #: merge once this many rows are pending.
        self.flush_rows = flush_rows
        self._lock = threading.Lock()
        #: Shard memo: digest -> ShardView, mapped lazily per shard.
        self._shards: dict[str, ShardView] = {}
        #: Write buffer: digest -> (config_key, {gemm_key: row}).
        self._pending: dict[str, tuple[tuple, dict[tuple, list]]] = {}
        self._pending_rows = 0
        self._init_metrics()

    def _init_metrics(self) -> None:
        """The activity counters, as instruments on this store's registry.

        The serving layer attaches :attr:`metrics` to its own registry so
        ``/metrics`` reads them merged; :meth:`counters` keeps the
        historical dict shape over the same instruments.
        """
        self.metrics = MetricsRegistry()
        #: Unreadable shards encountered by this instance's loads.
        self._corrupt_loads = self.metrics.counter("store_corrupt_loads_total")
        #: Cheap in-process activity counters (see :meth:`counters`).
        self._shard_loads = self.metrics.counter("store_shard_loads_total")
        self._merges = self.metrics.counter("store_merges_total")
        self._rows_merged = self.metrics.counter("store_rows_merged_total")

    # ------------------------------------------------------------------ #
    # Pickling (process-pool workers reopen the same directory)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        # Flush first: rows buffered here must be on disk before a pool
        # worker opens the same directory expecting to start warm.
        self.flush()
        return {
            "directory": self.directory,
            "version": self.version,
            "max_bytes": self.max_bytes,
            "flush_rows": self.flush_rows,
        }

    def __setstate__(self, state: dict) -> None:
        self.directory = state["directory"]
        self.version = state["version"]
        self.max_bytes = state.get("max_bytes")
        self.flush_rows = state.get("flush_rows", 256)
        self._lock = threading.Lock()
        self._shards = {}
        self._pending = {}
        self._pending_rows = 0
        self._init_metrics()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecisionStore({str(self.directory)!r}, version={self.version!r})"

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    def _digest(self, config_key: tuple) -> str:
        payload = repr((self.version, config_key)).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:24]

    def _shard_path(self, digest: str) -> Path:
        return self.directory / f"{_SHARD_PREFIX}{digest}{_SHARD_SUFFIX}"

    def _sidecar_path(self, digest: str) -> Path:
        return self.directory / f"{_SHARD_PREFIX}{digest}{_SIDECAR_SUFFIX}"

    def _hits_path(self, digest: str) -> Path:
        return self.directory / f"{_SHARD_PREFIX}{digest}{_HITS_SUFFIX}"

    @staticmethod
    def gemm_key(m: int, n: int, t: int) -> tuple[int, int, int]:
        """The within-shard key of one GEMM shape."""
        return (m, n, t)

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def load(self, config_key: tuple) -> ShardView:
        """The stored decisions of one configuration, as a zero-copy view.

        The shard is memory-mapped once per store instance and memoised;
        entries written through :meth:`put_many` / :meth:`flush` keep the
        memo in sync.  Rows buffered by :meth:`put` and not yet flushed
        are visible through :meth:`get`, not through this view.
        """
        digest = self._digest(config_key)
        with self._lock:
            view = self._shards.get(digest)
            if view is None:
                with get_tracer().span("store.load", shard=digest) as span:
                    view = self._read_shard(digest, config_key)
                    span.set(rows=len(view))
                self._shards[digest] = view
                self._shard_loads.inc()
                if len(view):
                    self._count_shard_use(digest)
            return view

    def get(self, config_key: tuple, m: int, n: int, t: int) -> list | None:
        """One stored decision, or None when absent (read-your-writes)."""
        key = self.gemm_key(m, n, t)
        digest = self._digest(config_key)
        with self._lock:
            pending = self._pending.get(digest)
            if pending is not None and key in pending[1]:
                return list(pending[1][key])
        return self.load(config_key).get(key)

    def _read_shard(self, digest: str, config_key: tuple) -> ShardView:
        """Memory-map one shard; corrupt payloads warn and read as empty.

        A missing payload or sidecar reads as empty silently (nothing was
        written yet, a stale-format era, or a concurrent writer mid-pair);
        a *present but unreadable* file is surfaced: ``warnings.warn``
        names it and :meth:`stats` counts it under ``corrupt_shards``.
        Unchanged shard files resolve through the process-global view
        registry, so N fresh store handles in one process cost one mmap
        and one index build, not N.
        """
        path = self._shard_path(digest)
        sidecar = self._sidecar_path(digest)
        try:
            payload_sig = _stat_sig(path)
            sidecar_sig = _stat_sig(sidecar)
        except OSError:
            return _empty_view()
        cached = _view_cache_get(path, payload_sig, sidecar_sig)
        if cached is not None:
            version, config_repr, view = cached
            if version == self.version and config_repr == repr(config_key):
                return view
            return _empty_view()
        try:
            meta = json.loads(sidecar.read_text(encoding="utf-8"))
            if not isinstance(meta, dict):
                raise ValueError("sidecar is not a JSON object")
        except FileNotFoundError:
            return _empty_view()
        except (OSError, ValueError) as error:
            self._note_corrupt(sidecar, error)
            return _empty_view()
        if meta.get("version") != self.version or meta.get("config_key") != repr(config_key):
            # Stale format or (vanishingly unlikely) digest collision:
            # treat as empty; the next write overwrites the pair.
            return _empty_view()
        try:
            array = np.load(path, mmap_mode="r", allow_pickle=False)
            if array.dtype != DECISION_DTYPE or array.ndim != 1:
                raise ValueError(f"unexpected shard layout {array.dtype}/{array.ndim}d")
        except (OSError, ValueError, EOFError) as error:
            self._note_corrupt(path, error)
            return _empty_view()
        view = ShardView(array)
        _view_cache_put(
            path, payload_sig, sidecar_sig, str(meta["version"]), str(meta["config_key"]), view
        )
        return view

    def _note_corrupt(self, path: Path, error: Exception) -> None:
        self._corrupt_loads.inc()
        warnings.warn(
            f"DecisionStore: skipping corrupt shard file {path} ({error}); "
            f"its decisions will be re-derived and the file overwritten on "
            f"the next write",
            RuntimeWarning,
            stacklevel=4,
        )

    def _count_shard_use(self, digest: str) -> None:
        """Bump the shard's persistent hit/recency counters (best effort).

        Called once per (store instance, shard) on the first disk load, so
        the hit count approximates "how many fresh consumers started warm
        from this shard" — the value signal the eviction score ranks by.
        The counter is an append-only ``.hits`` file: one byte per warm
        start (``O_APPEND`` writes are atomic, so concurrent readers never
        race), hits = file size, recency = file mtime — keeping the hot
        read path free of read-modify-replace cycles.  Failures are
        swallowed: use counting must never break a read-only consumer.
        """
        try:
            with open(self._hits_path(digest), "ab") as handle:
                handle.write(b"+")
        except OSError:  # pragma: no cover - depends on filesystem state
            pass

    def _shard_use(self, digest: str, fallback_mtime: float) -> tuple[int, float]:
        """The shard's (hits, last-used) eviction score inputs."""
        try:
            stat = self._hits_path(digest).stat()
        except OSError:
            return (0, fallback_mtime)
        # A merge is a use too: recency is the later of last warm start
        # (hits-file mtime) and last write (payload mtime).
        return (stat.st_size, max(stat.st_mtime, fallback_mtime))

    def _read_sidecar(self, digest: str) -> dict | None:
        try:
            meta = json.loads(self._sidecar_path(digest).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        return meta if isinstance(meta, dict) else None

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def put(self, config_key: tuple, gemm_key: tuple, row: list) -> None:
        """Buffer one decision row; flushed as a single batched merge.

        The single-row writer's path (the sampled backend persists one
        decision per layer): rows accumulate in memory and become one
        atomic shard merge per :attr:`flush_rows` appends, instead of one
        read-merge-replace cycle per row.  :meth:`get` sees buffered rows
        immediately; other store instances see them after :meth:`flush`
        (called automatically on overflow, pickling, stats and pruning).
        """
        digest = self._digest(config_key)
        with self._lock:
            entry = self._pending.get(digest)
            if entry is None:
                entry = (config_key, {})
                self._pending[digest] = entry
            if gemm_key not in entry[1]:
                self._pending_rows += 1
            entry[1][gemm_key] = list(row)
            if self._pending_rows >= self.flush_rows:
                self._flush_locked()

    def flush(self) -> None:
        """Merge every buffered :meth:`put` row to disk (one merge per shard)."""
        with self._lock:
            self._flush_locked()

    def _flush_locked(self) -> None:
        pending, self._pending, self._pending_rows = self._pending, {}, 0
        for digest, (config_key, decisions) in pending.items():
            self._merge_locked(digest, config_key, decisions)

    def put_many(self, config_key: tuple, decisions: dict[tuple, list]) -> None:
        """Merge decisions into the configuration's shard (atomic on disk)."""
        if not decisions:
            return
        digest = self._digest(config_key)
        with self._lock:
            # Fold same-shard buffered rows into the same merge (explicit
            # writes win over buffered ones on key collisions).
            entry = self._pending.pop(digest, None)
            if entry is not None:
                self._pending_rows -= len(entry[1])
                entry[1].update(decisions)
                decisions = entry[1]
            self._merge_locked(digest, config_key, decisions)

    def _merge_locked(self, digest: str, config_key: tuple, decisions: dict) -> None:
        with get_tracer().span("store.merge", shard=digest, rows=len(decisions)):
            self._merge_locked_traced(digest, config_key, decisions)

    def _merge_locked_traced(
        self, digest: str, config_key: tuple, decisions: dict
    ) -> None:
        self._merges.inc()
        self._rows_merged.inc(len(decisions))
        self._ensure_directory()
        fresh = rows_to_records(decisions)
        # Merge with concurrent writers' flushes before replacing: re-read
        # the on-disk shard rather than trusting this instance's memo.
        on_disk = self._read_shard(digest, config_key)
        if len(on_disk):
            keep = np.array([key not in decisions for key in on_disk.keys()], dtype=bool)
            merged = np.concatenate([np.asarray(on_disk.array)[keep], fresh])
        else:
            merged = fresh
        path = self._shard_path(digest)
        sidecar = self._sidecar_path(digest)
        self._atomic_write_array(path, merged)
        self._atomic_write_bytes(
            sidecar,
            (
                json.dumps(
                    {
                        "version": self.version,
                        "config_key": repr(config_key),
                        "rows": int(len(merged)),
                        "written": time.time(),
                    },
                    separators=(",", ":"),
                )
                + "\n"
            ).encode("utf-8"),
        )
        view = ShardView(merged)
        self._shards[digest] = view
        try:
            _view_cache_put(
                path, _stat_sig(path), _stat_sig(sidecar), self.version, repr(config_key), view
            )
        except OSError:  # pragma: no cover - racing writer replaced the pair
            _view_cache_discard(path)
        if self.max_bytes is not None:
            self._prune_locked(self.max_bytes, protect=digest)

    def _atomic_write_array(self, path: Path, array: np.ndarray) -> None:
        self._atomic_write(path, lambda handle: np.save(handle, array, allow_pickle=False))

    def _atomic_write_bytes(self, path: Path, payload: bytes) -> None:
        self._atomic_write(path, lambda handle: handle.write(payload))

    def _atomic_write(self, path: Path, write) -> None:
        fd, tmp = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                write(handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _ensure_directory(self) -> None:
        """Create the directory and enforce the version marker.

        A marker recording a *different* version means every shard on disk
        was produced by an incompatible store — including the JSON shards
        of the v1 format era: purge them all, then claim the directory for
        this version.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        marker = self.directory / _VERSION_MARKER
        try:
            recorded = marker.read_text(encoding="utf-8").strip()
        except OSError:
            recorded = None
        if recorded != self.version:
            if recorded is not None:
                self._purge_shards()
            marker.write_text(self.version + "\n", encoding="utf-8")

    def _purge_shards(self) -> None:
        self._shards.clear()
        for shard in self.directory.glob(f"{_SHARD_PREFIX}*"):
            # Payloads, sidecars and hit counters of any era (.npy,
            # .meta.json, .hits, and the v1 format's .json shards);
            # in-flight *.tmp files belong to live writers and stay.
            if shard.suffix not in (".npy", ".json", ".hits"):
                continue
            _view_cache_discard(shard)
            try:
                shard.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Maintenance / introspection
    # ------------------------------------------------------------------ #
    def prune(self, max_bytes: int | None = None) -> dict[str, int]:
        """Evict the lowest-value shards until the store fits ``max_bytes``.

        The explicit maintenance entry point behind the opt-in
        ``max_bytes`` cap (which calls this after every merge).  Eviction
        is whole-shard, ranked by the sidecar's persistent use counters:
        fewest warm-start hits first, ties broken by least-recent use
        (file mtime when a sidecar is missing) — a shard is one
        configuration's decisions, and the configurations no process has
        started warm from in a long time are the likeliest to be dead
        design points.  Evicting only costs re-derivation on re-encounter;
        correctness never depends on the store's contents.

        Returns ``{"removed_shards", "removed_bytes", "total_bytes"}``.
        """
        limit = max_bytes if max_bytes is not None else self.max_bytes
        if limit is None:
            raise ValueError("prune needs max_bytes (argument or constructor cap)")
        if limit <= 0:
            raise ValueError("max_bytes must be positive")
        with self._lock:
            self._flush_locked()
            return self._prune_locked(limit)

    def _scan_shards(self) -> list[tuple[str, Path, int, float]]:
        """One directory scan: ``(digest, payload path, bytes, mtime)`` rows.

        The single glob every maintenance operation shares — size
        accounting, eviction ordering and stats reuse these entries
        instead of re-walking the directory per concern.  Byte counts
        include each shard's sidecar.
        """
        entries: list[tuple[str, Path, int, float]] = []
        if not self.directory.is_dir():
            return entries
        for path in self.directory.glob(f"{_SHARD_PREFIX}*{_SHARD_SUFFIX}"):
            try:
                stat = path.stat()
            except OSError:
                continue
            digest = path.name[len(_SHARD_PREFIX):-len(_SHARD_SUFFIX)]
            size = stat.st_size
            for companion in (self._sidecar_path(digest), self._hits_path(digest)):
                try:
                    size += companion.stat().st_size
                except OSError:
                    pass
            entries.append((digest, path, size, stat.st_mtime))
        return entries

    def _eviction_order(
        self, entries: list[tuple[str, Path, int, float]]
    ) -> list[tuple[str, Path, int, float]]:
        """Entries sorted least-valuable first: (hits, last-used) ascending."""

        def score(entry: tuple[str, Path, int, float]) -> tuple[int, float]:
            return self._shard_use(entry[0], entry[3])

        return sorted(entries, key=score)

    def _prune_locked(self, max_bytes: int, protect: str | None = None) -> dict[str, int]:
        """Shared eviction loop; ``protect`` keeps the shard just merged.

        Protecting the active shard means a cap smaller than one shard
        degrades to "keep only the current configuration" instead of
        deleting the bytes the caller just paid to write.
        """
        entries = self._scan_shards()
        total = sum(size for _, _, size, _ in entries)
        removed_shards = 0
        removed_bytes = 0
        for digest, path, size, _ in self._eviction_order(entries):
            if total <= max_bytes:
                break
            if digest == protect:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            for companion in (self._sidecar_path(digest), self._hits_path(digest)):
                try:
                    companion.unlink()
                except OSError:
                    pass
            _view_cache_discard(path)
            self._shards.pop(digest, None)
            total -= size
            removed_shards += 1
            removed_bytes += size
        return {
            "removed_shards": removed_shards,
            "removed_bytes": removed_bytes,
            "total_bytes": total,
        }

    def clear(self) -> None:
        """Remove every shard (and the memo / write buffer); the directory stays."""
        with self._lock:
            self._pending.clear()
            self._pending_rows = 0
            if self.directory.is_dir():
                self._purge_shards()
            self._shards.clear()

    def counters(self) -> dict[str, int]:
        """This instance's in-process activity counters, lock-cheap.

        Unlike :meth:`stats` (a full directory scan plus a flush — the
        right tool for a CLI report, the wrong one for a live ``/metrics``
        endpoint scraped every few seconds), this reads a handful of
        integers under the lock and touches no disk: shards mapped by
        this instance, merges written, rows merged, rows still buffered,
        and corrupt loads tripped over.
        """
        with self._lock:
            return {
                "shard_loads": self._shard_loads.value,
                "merges": self._merges.value,
                "rows_merged": self._rows_merged.value,
                "pending_rows": self._pending_rows,
                "corrupt_loads": self._corrupt_loads.value,
            }

    def stats(self) -> dict[str, int]:
        """What is currently on disk, from one directory scan.

        ``shards`` / ``entries`` / ``total_bytes`` count the readable
        columnar shards (of any version), ``hits`` sums their persistent
        warm-start counters, and ``corrupt_shards`` counts shard files
        present on disk that cannot be read back (truncated or garbled
        payloads, unreadable sidecars) — plus any corrupt files this
        instance's loads already tripped over and warned about.
        """
        with self._lock:
            self._flush_locked()
            shards = 0
            entries = 0
            total_bytes = 0
            corrupt = 0
            hits = 0
            for digest, path, size, _ in self._scan_shards():
                meta = self._read_sidecar(digest)
                if meta is None and self._sidecar_path(digest).exists():
                    corrupt += 1
                    continue
                try:
                    array = np.load(path, mmap_mode="r", allow_pickle=False)
                    if array.dtype != DECISION_DTYPE or array.ndim != 1:
                        raise ValueError("unexpected shard layout")
                except (OSError, ValueError, EOFError):
                    corrupt += 1
                    continue
                shards += 1
                entries += len(array)
                total_bytes += size
                hits += self._shard_use(digest, 0.0)[0]
            return {
                "shards": shards,
                "entries": entries,
                "total_bytes": total_bytes,
                "hits": hits,
                "corrupt_shards": corrupt + self._corrupt_loads.value,
            }
