"""Disk-persistent decision cache.

:class:`DecisionStore` spills the decision-caching backends' LRU caches
(batched and sampled) to an on-disk store so repeated CLI / CI
invocations skip re-deriving mode decisions entirely.  One *shard* file
holds every cached decision of one accelerator configuration; shards are
named by a digest of ``(store version, config key)``, so decisions
computed under a different array geometry, mode set, activity factor,
activity model or technology model can never be confused — the
technology model's full parameter set is part of
:meth:`~repro.core.config.ArrayFlexConfig.cache_key`, and the sampled
backend widens its config key with its sampling parameters
(:meth:`~repro.backends.sampled.SampledSimBackend.store_config_key`), so
rows estimated under one seed/fraction can never answer a lookup made
under another.

Versioning and invalidation are explicit:

* :data:`STORE_FORMAT_VERSION` changes when the on-disk layout changes;
* :data:`DECISION_MODEL_VERSION` changes when the latency / clock / energy
  closed forms change (anything that would alter a cached number);
* the combined :data:`CACHE_VERSION` is baked into every shard digest and
  recorded both in a ``VERSION`` marker file and inside each shard, so a
  version bump atomically orphans every stale entry and the store purges
  them on the next write.

Writes are atomic (temp file + :func:`os.replace` in the same directory)
and merge with whatever a concurrent writer already flushed, so parallel
sweeps sharing one cache directory lose at most duplicated work, never
correctness.  The store never writes inside the repository tree: the
default location honours ``REPRO_CACHE_DIR`` and ``XDG_CACHE_HOME`` and
falls back to ``~/.cache/repro-arrayflex``.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from pathlib import Path

#: Bump when the on-disk shard layout changes.
STORE_FORMAT_VERSION = 1
#: Bump when the scheduling closed forms (latency / clock / energy models)
#: change in a way that alters cached decisions — or when the decision
#: row widens.  v2: the activity-aware LayerMetrics refactor (rows now
#: carry per-layer activity, array utilization and the full per-component
#: power breakdown instead of one collapsed power scalar).  v3: rows
#: widened with the sampled-simulation backend's relative ``error_bound``
#: column (null for the exact backends); sampled-backend shards are
#: additionally keyed by the backend's sampling parameters.
DECISION_MODEL_VERSION = 3
#: The combined version every shard is keyed and stamped with.
CACHE_VERSION = f"{STORE_FORMAT_VERSION}.{DECISION_MODEL_VERSION}"

#: Name of the marker file recording the version a cache directory serves.
_VERSION_MARKER = "VERSION"
_SHARD_PREFIX = "decisions-"


def default_cache_dir() -> Path:
    """The user-level cache directory (never inside the repository tree).

    Resolution order: ``$REPRO_CACHE_DIR``, ``$XDG_CACHE_HOME/repro-arrayflex``,
    ``~/.cache/repro-arrayflex``.
    """
    explicit = os.environ.get("REPRO_CACHE_DIR")
    if explicit:
        # expanduser: env files and CI yaml set these without a shell, so
        # a literal '~' must not become a directory in the cwd (possibly
        # inside the repository tree).
        return Path(explicit).expanduser()
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg).expanduser() if xdg else Path.home() / ".cache"
    return base / "repro-arrayflex"


class DecisionStore:
    """On-disk, versioned store of ``(GEMM, configuration) -> decision``.

    Decisions are the per-layer metrics rows cached by
    :class:`~repro.backends.batched.BatchedCachedBackend` (mode, cycles,
    operating point, activity, utilization and the per-component power
    breakdown); they are stored as JSON (floats round-trip bit-exactly
    through ``repr``), one shard file per configuration.  The store is safe for concurrent use from
    threads (a lock serialises shard mutation) and from processes (atomic
    replace + merge-on-write).
    """

    def __init__(
        self,
        directory: str | os.PathLike[str] | None = None,
        version: str = CACHE_VERSION,
        max_bytes: int | None = None,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for no cap)")
        self.directory = (
            Path(directory).expanduser() if directory is not None else default_cache_dir()
        )
        self.version = version
        #: Opt-in size cap: every merge prunes oldest-written shards until
        #: the on-disk footprint fits, so long-lived caches (CI runners,
        #: shared dev machines) cannot grow unboundedly.  ``None`` (the
        #: default) keeps the historical unbounded behaviour.
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        #: Shard cache: digest -> decisions dict, loaded lazily per shard.
        self._shards: dict[str, dict[str, list]] = {}

    # ------------------------------------------------------------------ #
    # Pickling (process-pool workers reopen the same directory)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        return {
            "directory": self.directory,
            "version": self.version,
            "max_bytes": self.max_bytes,
        }

    def __setstate__(self, state: dict) -> None:
        self.directory = state["directory"]
        self.version = state["version"]
        self.max_bytes = state.get("max_bytes")
        self._lock = threading.Lock()
        self._shards = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DecisionStore({str(self.directory)!r}, version={self.version!r})"

    # ------------------------------------------------------------------ #
    # Keys and paths
    # ------------------------------------------------------------------ #
    def _digest(self, config_key: tuple) -> str:
        payload = repr((self.version, config_key)).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()[:24]

    def _shard_path(self, digest: str) -> Path:
        return self.directory / f"{_SHARD_PREFIX}{digest}.json"

    @staticmethod
    def gemm_key(m: int, n: int, t: int) -> str:
        """The within-shard key of one GEMM shape."""
        return f"{m},{n},{t}"

    # ------------------------------------------------------------------ #
    # Reads
    # ------------------------------------------------------------------ #
    def load(self, config_key: tuple) -> dict[str, list]:
        """All stored decisions of one configuration (``{} `` when none).

        The shard is read from disk once per store instance and memoised;
        entries written through :meth:`put_many` keep the memo in sync.
        """
        digest = self._digest(config_key)
        with self._lock:
            shard = self._shards.get(digest)
            if shard is None:
                shard = self._read_shard(digest, config_key)
                self._shards[digest] = shard
            return shard

    def get(self, config_key: tuple, m: int, n: int, t: int) -> list | None:
        """One stored decision, or None when absent."""
        return self.load(config_key).get(self.gemm_key(m, n, t))

    def _read_shard(self, digest: str, config_key: tuple) -> dict[str, list]:
        path = self._shard_path(digest)
        try:
            with open(path, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return {}
        if (
            not isinstance(payload, dict)
            or payload.get("version") != self.version
            or payload.get("config_key") != repr(config_key)
        ):
            # Stale format or (vanishingly unlikely) digest collision:
            # treat as empty; the next write overwrites the file.
            return {}
        decisions = payload.get("decisions")
        return decisions if isinstance(decisions, dict) else {}

    # ------------------------------------------------------------------ #
    # Writes
    # ------------------------------------------------------------------ #
    def put_many(self, config_key: tuple, decisions: dict[str, list]) -> None:
        """Merge decisions into the configuration's shard (atomic on disk)."""
        if not decisions:
            return
        digest = self._digest(config_key)
        with self._lock:
            self._ensure_directory()
            # Merge with concurrent writers' flushes before replacing.
            current = self._read_shard(digest, config_key)
            current.update(decisions)
            self._shards[digest] = current
            payload = {
                "version": self.version,
                "config_key": repr(config_key),
                "decisions": current,
            }
            self._atomic_write(self._shard_path(digest), payload)
            if self.max_bytes is not None:
                self._prune_locked(self.max_bytes, protect=digest)

    def _atomic_write(self, path: Path, payload: dict) -> None:
        fd, tmp = tempfile.mkstemp(
            prefix=path.name + ".", suffix=".tmp", dir=self.directory
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _ensure_directory(self) -> None:
        """Create the directory and enforce the version marker.

        A marker recording a *different* version means every shard on disk
        was produced by an incompatible store: purge them all, then claim
        the directory for this version.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        marker = self.directory / _VERSION_MARKER
        try:
            recorded = marker.read_text(encoding="utf-8").strip()
        except OSError:
            recorded = None
        if recorded != self.version:
            if recorded is not None:
                self._purge_shards()
            marker.write_text(self.version + "\n", encoding="utf-8")

    def _purge_shards(self) -> None:
        self._shards.clear()
        for shard in self.directory.glob(f"{_SHARD_PREFIX}*.json"):
            try:
                shard.unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Maintenance / introspection
    # ------------------------------------------------------------------ #
    def prune(self, max_bytes: int | None = None) -> dict[str, int]:
        """Evict oldest-written shards until the store fits ``max_bytes``.

        The explicit maintenance entry point behind the opt-in
        ``max_bytes`` cap (which calls this after every merge).  Eviction
        is whole-shard, oldest modification time first — a shard is one
        configuration's decisions, and the configurations written longest
        ago are the likeliest to be dead design points.  Evicting only
        costs re-derivation on re-encounter; correctness never depends on
        the store's contents.

        Returns ``{"removed_shards", "removed_bytes", "total_bytes"}``.
        """
        limit = max_bytes if max_bytes is not None else self.max_bytes
        if limit is None:
            raise ValueError("prune needs max_bytes (argument or constructor cap)")
        if limit <= 0:
            raise ValueError("max_bytes must be positive")
        with self._lock:
            return self._prune_locked(limit)

    def _prune_locked(self, max_bytes: int, protect: str | None = None) -> dict[str, int]:
        """Shared eviction loop; ``protect`` keeps the shard just merged.

        Protecting the active shard means a cap smaller than one shard
        degrades to "keep only the current configuration" instead of
        deleting the bytes the caller just paid to write.
        """
        shards: list[tuple[float, int, Path]] = []
        total = 0
        if self.directory.is_dir():
            for path in self.directory.glob(f"{_SHARD_PREFIX}*.json"):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                total += stat.st_size
                shards.append((stat.st_mtime, stat.st_size, path))
        removed_shards = 0
        removed_bytes = 0
        for _, size, path in sorted(shards):
            if total <= max_bytes:
                break
            digest = path.stem[len(_SHARD_PREFIX):]
            if digest == protect:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            self._shards.pop(digest, None)
            total -= size
            removed_shards += 1
            removed_bytes += size
        return {
            "removed_shards": removed_shards,
            "removed_bytes": removed_bytes,
            "total_bytes": total,
        }

    def clear(self) -> None:
        """Remove every shard (and the memo); the directory itself stays."""
        with self._lock:
            if self.directory.is_dir():
                self._purge_shards()
            self._shards.clear()

    def stats(self) -> dict[str, int]:
        """Entry / shard / byte counts of what is currently on disk."""
        shards = 0
        entries = 0
        total_bytes = 0
        if self.directory.is_dir():
            for path in self.directory.glob(f"{_SHARD_PREFIX}*.json"):
                shards += 1
                try:
                    total_bytes += path.stat().st_size
                    with open(path, encoding="utf-8") as handle:
                        payload = json.load(handle)
                    decisions = payload.get("decisions", {})
                    if isinstance(decisions, dict):
                        entries += len(decisions)
                except (OSError, json.JSONDecodeError):
                    continue
        return {"shards": shards, "entries": entries, "total_bytes": total_bytes}
