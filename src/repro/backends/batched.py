"""Batched, memoised fast backend.

Two observations make model scheduling much cheaper than the per-layer
reference path without changing a single number:

* the Eq. (6) mode search evaluates closed forms only, so all layers of a
  model (and all supported depths) can be evaluated in one vectorised
  NumPy pass instead of a Python loop per layer per depth;
* CNNs repeat GEMM shapes heavily (every ResNet/ConvNeXt stage repeats
  its block, and design-space sweeps revisit the same workloads point
  after point), so decisions memoised by
  ``(GEMM dims, array geometry, mode set, activity model, technology)``
  are near-free on re-encounter.

:class:`BatchedCachedBackend` combines both behind the standard
:class:`~repro.backends.base.ExecutionBackend` protocol.  Its results are
bit-identical to :class:`~repro.backends.analytical.AnalyticalBackend`:
the vectorised argmin replicates the sequential shallow-first tie-break
of :meth:`repro.core.optimizer.PipelineOptimizer.best_depth` (including
its 1e-12 tolerance), and the vectorised activity/power pass replicates,
operation for operation, the scalar
:meth:`~repro.timing.power_model.PowerModel` component arithmetic — per
layer, at the layer's effective activity, for every component of the
:class:`~repro.timing.power_model.ArrayPowerBreakdown`.
``tests/test_backends.py`` pins the parity down.

With a :class:`~repro.backends.store.DecisionStore` attached, the LRU is
additionally spilled to disk: every freshly solved decision is flushed to
the store, and memory misses consult it before falling back to the NumPy
solve, so a new process (a rerun CLI invocation, a CI job, a pool worker)
starts warm.  The store's shards are memory-mapped columnar arrays read
through a zero-copy :class:`~repro.backends.store.ShardView` — all pool
workers share one page-cache copy, and a stored row is only materialised
into a :class:`Decision` when this backend actually misses its in-memory
LRU.  All cache bookkeeping is serialised on an internal lock,
which makes one backend instance safe to share across the threads of
:class:`~repro.serve.SchedulingService`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

import numpy as np

from repro.backends.base import ExecutionBackend, LayerResult, ModelTotals
from repro.backends.decisions import (
    Decision,
    decision_from_row,
    decision_to_layer,
    decision_to_row,
)
from repro.backends.store import DecisionStore
from repro.core.activity import tiling_utilization_vector
from repro.core.config import ArrayFlexConfig
from repro.core.metrics import (
    LayerMetrics,
    ModelSchedule,
    WorkloadArgument,
    resolve_workload,
)
from repro.nn.gemm_mapping import GemmShape
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import get_tracer
from repro.timing.area_model import AreaModel
from repro.timing.power_model import ArrayPowerBreakdown, PowerModel

#: Tie-break tolerance of the discrete mode search (same constant as
#: :meth:`PipelineOptimizer.best_depth`).
_TIE_EPS = 1e-12

#: Back-compat aliases: the decision record and its store-row codec moved
#: to :mod:`repro.backends.decisions` when the sampled backend started
#: sharing them.  Same objects — old imports keep working.
_Decision = Decision
_decision_to_row = decision_to_row
_decision_from_row = decision_from_row


def _ceil_div(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
    return -(-a // b)


def _conventional_cycles_vector(
    rows: int, cols: int, m: np.ndarray, n: np.ndarray, t: np.ndarray
) -> np.ndarray:
    """Eq. (2) over layer vectors: per-tile Eq. (1) cycles x tile count.

    The scalar reference lives in
    :func:`repro.core.latency.conventional_total_cycles`; this is its only
    vectorised restatement, shared by every conventional-path call site of
    this backend, and the parity tests pin the two against each other.
    """
    return (2 * rows + cols + t - 2) * (_ceil_div(n, rows) * _ceil_div(m, cols))


def _effective_activity_vector(
    config: ArrayFlexConfig, m: np.ndarray, n: np.ndarray, t: np.ndarray
) -> np.ndarray:
    """Per-layer effective activities, mirroring ``EnergyModel.layer_activity``.

    Same composition (``config.activity * model factor``), same IEEE
    operations per element as the scalar path — including the scalar
    path's ``PowerModel._check_activity`` range validation, so a custom
    activity model that emits an out-of-range (or NaN) factor fails here
    exactly like it would on the analytical backend, instead of caching
    and persisting garbage power numbers.
    """
    activity = config.activity * config.activity_model.activity_vector(
        m, n, t, config.rows, config.cols
    )
    if not bool(((activity >= 0.0) & (activity <= 1.0)).all()):
        raise ValueError(
            f"activity must be within [0, 1] for every layer; "
            f"{type(config.activity_model).__name__} produced values outside"
        )
    return activity


def _arrayflex_power_vectors(
    config: ArrayFlexConfig,
    activity: np.ndarray,
    depth: np.ndarray,
    frequency: np.ndarray,
    leakage_mw: float,
) -> dict[str, np.ndarray]:
    """Vectorised restatement of ``PowerModel.arrayflex_array_power_breakdown``.

    Every line mirrors the scalar :meth:`PowerModel.arrayflex_pe_energy` /
    :meth:`PowerModel._array_breakdown` arithmetic operation for
    operation (same association, same order), so each per-layer component
    — and the total — is bit-identical to the analytical reference at
    that layer's activity.  The parity property-tests enforce this.
    """
    tech = config.technology
    num_pes = config.rows * config.cols
    k = depth

    multiplier = tech.e_mul_pj * activity
    carry_save = tech.e_csa_pj * activity
    muxes = PowerModel.MUXES_PER_PE * tech.e_mux_pj * activity
    carry_propagate = tech.e_add_pj * activity / k
    register_data = (
        tech.e_reg_bit_pj
        * (tech.input_width + tech.accum_width)
        * activity
        / k
    )
    clocked_bits = (
        tech.input_width
        + (tech.input_width + tech.accum_width) / k
        + AreaModel.CONFIG_BITS
    )
    register_clock = tech.e_clk_bit_pj * clocked_bits

    pe_total = (
        multiplier
        + carry_propagate
        + carry_save
        + muxes
        + register_data
        + register_clock
    )
    dynamic = pe_total * frequency
    return {
        "multiplier": num_pes * (multiplier * frequency),
        "carry_propagate_adder": num_pes * (carry_propagate * frequency),
        "carry_save_adder": num_pes * (carry_save * frequency),
        "bypass_muxes": num_pes * (muxes * frequency),
        "register_data": num_pes * (register_data * frequency),
        "register_clock": num_pes * (register_clock * frequency),
        "leakage": np.full(len(activity), num_pes * leakage_mw),
        "total_mw": num_pes * (dynamic + leakage_mw),
    }


def _conventional_power_vectors(
    config: ArrayFlexConfig,
    activity: np.ndarray,
    frequency: float,
    leakage_mw: float,
) -> dict[str, np.ndarray]:
    """Vectorised ``PowerModel.conventional_array_power_breakdown``.

    Mirrors :meth:`PowerModel.conventional_pe_energy` operation for
    operation, per layer at that layer's activity.
    """
    tech = config.technology
    num_pes = config.rows * config.cols
    data_bits = tech.input_width + tech.accum_width
    clocked_bits = 2 * tech.input_width + tech.accum_width

    multiplier = tech.e_mul_pj * activity
    carry_propagate = tech.e_add_pj * activity
    zero = np.zeros(len(activity))
    register_data = tech.e_reg_bit_pj * data_bits * activity
    register_clock = tech.e_clk_bit_pj * clocked_bits  # scalar: activity-free

    pe_total = (
        multiplier + carry_propagate + 0.0 + 0.0 + register_data + register_clock
    )
    dynamic = pe_total * frequency
    return {
        "multiplier": num_pes * (multiplier * frequency),
        "carry_propagate_adder": num_pes * (carry_propagate * frequency),
        "carry_save_adder": zero,
        "bypass_muxes": zero,
        "register_data": num_pes * (register_data * frequency),
        "register_clock": np.full(
            len(activity), num_pes * (register_clock * frequency)
        ),
        "leakage": np.full(len(activity), num_pes * leakage_mw),
        "total_mw": num_pes * (dynamic + leakage_mw),
    }


def _breakdown_at(power: dict[str, np.ndarray], i: int) -> ArrayPowerBreakdown:
    """The i-th layer's :class:`ArrayPowerBreakdown` from component vectors."""
    return ArrayPowerBreakdown(
        multiplier=float(power["multiplier"][i]),
        carry_propagate_adder=float(power["carry_propagate_adder"][i]),
        carry_save_adder=float(power["carry_save_adder"][i]),
        bypass_muxes=float(power["bypass_muxes"][i]),
        register_data=float(power["register_data"][i]),
        register_clock=float(power["register_clock"][i]),
        leakage=float(power["leakage"][i]),
        total_mw=float(power["total_mw"][i]),
    )


class BatchedCachedBackend(ExecutionBackend):
    """Vectorised mode optimisation with an LRU decision cache."""

    name = "batched"

    def __init__(self, cache_size: int = 65536, store: DecisionStore | None = None) -> None:
        super().__init__()
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.cache_size = cache_size
        #: Optional disk persistence layer; see :mod:`repro.backends.store`.
        self.store = store
        self._cache: OrderedDict[tuple, _Decision] = OrderedDict()
        #: The cache counters live as instruments on this registry (the
        #: serving layer attaches it to its own, so ``/metrics`` reads
        #: them merged); ``cache_info()`` keeps the historical dict shape.
        self.metrics = MetricsRegistry()
        self._hits = self.metrics.counter("backend_cache_hits_total", backend=self.name)
        self._misses = self.metrics.counter(
            "backend_cache_misses_total", backend=self.name
        )
        self._store_hits = self.metrics.counter(
            "backend_cache_store_hits_total", backend=self.name
        )
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Pickling (the cache lock cannot cross process boundaries)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Protocol implementation
    # ------------------------------------------------------------------ #
    def schedule_layer(
        self, gemm: GemmShape, config: ArrayFlexConfig, index: int = 1
    ) -> LayerResult:
        decision = self._decide_batch([gemm], config)[0]
        return self._to_layer(index, gemm, decision)

    def schedule_model(
        self,
        model: WorkloadArgument,
        config: ArrayFlexConfig,
        model_name: str | None = None,
    ) -> ModelSchedule:
        gemms, name = resolve_workload(model, model_name)
        with get_tracer().span(
            "backend.schedule_model", backend=self.name, model=name, layers=len(gemms)
        ):
            decisions = self._decide_batch(gemms, config)
            schedule = ModelSchedule(
                model_name=name,
                accelerator="ArrayFlex",
                rows=config.rows,
                cols=config.cols,
            )
            for index, (gemm, decision) in enumerate(zip(gemms, decisions), start=1):
                schedule.layers.append(self._to_layer(index, gemm, decision))
        return schedule

    def schedule_model_conventional(
        self,
        model: WorkloadArgument,
        config: ArrayFlexConfig,
        model_name: str | None = None,
    ) -> ModelSchedule:
        """Baseline schedule with the mode-independent constants hoisted out.

        The single fixed mode needs no mode search: Eq. (1)/(2) are
        evaluated for all layers in one NumPy pass (bit-identical to the
        per-layer closed form — int64 cycles are exact and the int * float
        time product is the same IEEE double either way), the clock lookup
        is computed once, and the per-layer activity/power breakdown comes
        from the vectorised power pass (bit-identical to the scalar
        component arithmetic per layer).
        """
        gemms, name = resolve_workload(model, model_name)
        span = get_tracer().span(
            "backend.schedule_model",
            backend=self.name,
            model=name,
            layers=len(gemms),
            conventional=True,
        )
        with span:
            return self._schedule_conventional(gemms, name, config)

    def _schedule_conventional(
        self, gemms: list[GemmShape], name: str, config: ArrayFlexConfig
    ) -> ModelSchedule:
        parts = self.components(config)
        rows, cols = config.rows, config.cols
        period_ns = parts.clock.conventional_period_ns()
        frequency = parts.clock.conventional_frequency_ghz()

        m = np.array([g.m for g in gemms], dtype=np.int64)
        n = np.array([g.n for g in gemms], dtype=np.int64)
        t = np.array([g.t for g in gemms], dtype=np.int64)
        cycles = _conventional_cycles_vector(rows, cols, m, n, t)
        times_ns = cycles * period_ns
        activity = _effective_activity_vector(config, m, n, t)
        utilization = tiling_utilization_vector(m, n, rows, cols)
        power = _conventional_power_vectors(
            config,
            activity,
            frequency,
            parts.energy.power_model.conventional_pe_leakage_mw(),
        )

        schedule = ModelSchedule(
            model_name=name,
            accelerator="Conventional",
            rows=config.rows,
            cols=config.cols,
        )
        for index in range(1, len(gemms) + 1):
            i = index - 1
            schedule.layers.append(
                LayerMetrics(
                    index=index,
                    gemm=gemms[i],
                    collapse_depth=1,
                    cycles=int(cycles[i]),
                    clock_frequency_ghz=frequency,
                    execution_time_ns=float(times_ns[i]),
                    activity=float(activity[i]),
                    array_utilization=float(utilization[i]),
                    power=_breakdown_at(power, i),
                    analytical_depth=1.0,
                )
            )
        return schedule

    def schedule_model_totals(
        self,
        model: WorkloadArgument,
        config: ArrayFlexConfig,
        model_name: str | None = None,
        conventional: bool = False,
    ) -> ModelTotals:
        """Totals without materialising per-layer schedule objects.

        Sweeps aggregate nothing but total time and energy, so this skips
        the :class:`~repro.core.metrics.LayerMetrics` construction
        entirely and accumulates the same per-layer terms in the same
        left-to-right order as the ``ModelSchedule`` property sums — the
        numbers are bit-identical, only cheaper to produce.  The
        conventional branch prices every layer through the vectorised
        activity/power pass, so it too matches the per-layer path under
        any activity model.
        """
        gemms, name = resolve_workload(model, model_name)
        span = get_tracer().span(
            "backend.model_totals",
            backend=self.name,
            model=name,
            layers=len(gemms),
            conventional=conventional,
        )
        with span:
            return self._totals(gemms, config, conventional)

    def _totals(
        self, gemms: list[GemmShape], config: ArrayFlexConfig, conventional: bool
    ) -> ModelTotals:
        time_ns = 0.0
        energy_nj = 0.0
        if conventional:
            parts = self.components(config)
            rows, cols = config.rows, config.cols
            period_ns = parts.clock.conventional_period_ns()
            frequency = parts.clock.conventional_frequency_ghz()
            t = np.array([g.t for g in gemms], dtype=np.int64)
            n = np.array([g.n for g in gemms], dtype=np.int64)
            m = np.array([g.m for g in gemms], dtype=np.int64)
            cycles = _conventional_cycles_vector(rows, cols, m, n, t)
            activity = _effective_activity_vector(config, m, n, t)
            powers = _conventional_power_vectors(
                config,
                activity,
                frequency,
                parts.energy.power_model.conventional_pe_leakage_mw(),
            )["total_mw"]
            for power, layer_time in zip(powers.tolist(), (cycles * period_ns).tolist()):
                time_ns += layer_time
                energy_nj += power * layer_time / 1000.0
        else:
            for decision in self._decide_batch(gemms, config):
                layer_time = decision.execution_time_ns
                time_ns += layer_time
                energy_nj += decision.power_mw * layer_time / 1000.0
        return ModelTotals(time_ns=time_ns, energy_nj=energy_nj)

    # ------------------------------------------------------------------ #
    # Cache bookkeeping
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the decision cache.

        ``store_hits`` counts memory misses that were answered from the
        attached :class:`~repro.backends.store.DecisionStore` instead of
        being re-derived; ``misses`` counts lookups that fell through to
        the NumPy solve pass — per GEMM occurrence, so duplicate shapes
        in one cold batch each count even though they share one solve.
        """
        return {
            "hits": self._hits.value,
            "misses": self._misses.value,
            "store_hits": self._store_hits.value,
            "size": len(self._cache),
            "max_size": self.cache_size,
        }

    def cache_clear(self) -> None:
        """Drop the in-memory cache and counters (the disk store persists)."""
        with self._lock:
            self._cache.clear()
            self._hits.reset()
            self._misses.reset()
            self._store_hits.reset()

    @staticmethod
    def _config_key(config: ArrayFlexConfig) -> tuple:
        return config.cache_key()

    # ------------------------------------------------------------------ #
    # The vectorised decision pass
    # ------------------------------------------------------------------ #
    def _decide_batch(
        self, gemms: list[GemmShape], config: ArrayFlexConfig
    ) -> list[_Decision]:
        """Decisions for a batch of GEMMs: cache/store lookups + one NumPy pass.

        The lock guards only the cache bookkeeping; the NumPy solve and
        all store disk I/O run outside it, so service threads overlap
        their real work.  Two threads racing on the same cold keys at
        worst both solve them — identical numbers, last write wins.
        """
        config_key = self._config_key(config)
        # Disk I/O before taking the backend lock (the store has its own).
        stored = self.store.load(config_key) if self.store is not None else None
        keys = [(gemm.m, gemm.n, gemm.t, config_key) for gemm in gemms]
        decisions: list[_Decision | None] = [None] * len(gemms)
        missing: list[int] = []
        unique_keys: dict[tuple, int] = {}
        unique_gemms: list[GemmShape] = []
        with self._lock:
            for i, (gemm, key) in enumerate(zip(gemms, keys)):
                cached = self._cache.get(key)
                if cached is not None:
                    self._cache.move_to_end(key)
                    self._hits.inc()
                    decisions[i] = cached
                    continue
                if stored is not None:
                    row = stored.get(DecisionStore.gemm_key(gemm.m, gemm.n, gemm.t))
                    if row is not None:
                        cached = _decision_from_row(row)
                        self._cache[key] = cached
                        self._store_hits.inc()
                        decisions[i] = cached
                        continue
                self._misses.inc()
                missing.append(i)
                if key not in unique_keys:
                    unique_keys[key] = len(unique_gemms)
                    unique_gemms.append(gemm)
            # Store hits insert too: enforce the cap on every path.
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

        if missing:
            with get_tracer().span(
                "backend.mode_search", backend=self.name, layers=len(unique_gemms)
            ):
                fresh = self._solve_vectorised(unique_gemms, config)
            if self.store is not None:
                self.store.put_many(
                    config_key,
                    {
                        DecisionStore.gemm_key(g.m, g.n, g.t): _decision_to_row(d)
                        for g, d in zip(unique_gemms, fresh)
                    },
                )
            with self._lock:
                for key, position in unique_keys.items():
                    self._cache[key] = fresh[position]
                for i in missing:
                    # From `fresh`, not the cache: a concurrent batch may
                    # have evicted the entry already.
                    decisions[i] = fresh[unique_keys[keys[i]]]
                while len(self._cache) > self.cache_size:
                    self._cache.popitem(last=False)
        return decisions  # type: ignore[return-value]

    def _solve_vectorised(
        self, gemms: list[GemmShape], config: ArrayFlexConfig
    ) -> list[_Decision]:
        """One NumPy pass of the Eq. (6) mode search over many layers.

        Shapes: ``times`` is (layers, depths); the column scan below is
        the exact vector analogue of the sequential shallow-first
        tie-break in ``PipelineOptimizer.best_depth``.  Once the modes are
        chosen, one vectorised activity/power pass prices every layer at
        its own effective activity (utilization-aware when the configured
        activity model is) — the batched counterpart of
        ``EnergyModel.arrayflex_layer_power``.
        """
        parts = self.components(config)
        rows, cols = config.rows, config.cols
        depths = config.sorted_depths()

        m = np.array([g.m for g in gemms], dtype=np.int64)
        n = np.array([g.n for g in gemms], dtype=np.int64)
        t = np.array([g.t for g in gemms], dtype=np.int64)
        tiles = _ceil_div(n, rows) * _ceil_div(m, cols)

        # Eq. (3)/(4) cycles for every layer at every supported depth.
        per_tile = np.stack(
            [
                rows + _ceil_div(rows, depth) + _ceil_div(cols, depth) + t - 2
                for depth in depths
            ],
            axis=1,
        )
        cycles = per_tile * tiles[:, None]

        # Eq. (6): absolute time under each mode's discrete operating point.
        periods_ns = np.array([parts.clock.period_ns(d) for d in depths])
        frequencies = np.array([parts.clock.frequency_ghz(d) for d in depths])
        times = cycles * periods_ns[None, :]

        # Shallow-first argmin with the optimizer's strict-improvement rule.
        best_col = np.zeros(len(gemms), dtype=np.int64)
        best_time = times[:, 0].copy()
        for j in range(1, len(depths)):
            better = times[:, j] < best_time - _TIE_EPS
            best_col[better] = j
            best_time[better] = times[better, j]

        layer_index = np.arange(len(gemms))
        best_cycles = cycles[layer_index, best_col]
        best_depths = np.array(depths, dtype=np.int64)[best_col]
        best_frequencies = frequencies[best_col]

        # The vectorised activity-aware power pass, at the chosen modes.
        activity = _effective_activity_vector(config, m, n, t)
        utilization = tiling_utilization_vector(m, n, rows, cols)
        power = _arrayflex_power_vectors(
            config,
            activity,
            best_depths,
            best_frequencies,
            parts.energy.power_model.arrayflex_pe_leakage_mw(),
        )
        return [
            Decision(
                collapse_depth=depths[best_col[i]],
                cycles=int(best_cycles[i]),
                clock_frequency_ghz=float(best_frequencies[i]),
                execution_time_ns=float(best_time[i]),
                # Eq. (7) lives in one place: the optimizer's closed form.
                analytical_depth=parts.optimizer.analytical_optimal_depth(gemms[i]),
                activity=float(activity[i]),
                array_utilization=float(utilization[i]),
                power=_breakdown_at(power, i),
            )
            for i in range(len(gemms))
        ]

    # ------------------------------------------------------------------ #
    @staticmethod
    def _to_layer(index: int, gemm: GemmShape, decision: Decision) -> LayerMetrics:
        return decision_to_layer(index, gemm, decision)
