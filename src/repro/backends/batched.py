"""Batched, memoised fast backend.

Two observations make model scheduling much cheaper than the per-layer
reference path without changing a single number:

* the Eq. (6) mode search evaluates closed forms only, so all layers of a
  model (and all supported depths) can be evaluated in one vectorised
  NumPy pass instead of a Python loop per layer per depth;
* CNNs repeat GEMM shapes heavily (every ResNet/ConvNeXt stage repeats
  its block, and design-space sweeps revisit the same workloads point
  after point), so decisions memoised by
  ``(GEMM dims, array geometry, mode set, technology)`` are near-free on
  re-encounter.

:class:`BatchedCachedBackend` combines both behind the standard
:class:`~repro.backends.base.ExecutionBackend` protocol.  Its results are
bit-identical to :class:`~repro.backends.analytical.AnalyticalBackend`:
the vectorised argmin replicates the sequential shallow-first tie-break
of :meth:`repro.core.optimizer.PipelineOptimizer.best_depth` (including
its 1e-12 tolerance), and times/powers are computed from the same
operating points.  ``tests/test_backends.py`` pins the parity down.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.backends.base import ExecutionBackend, LayerResult
from repro.core.config import ArrayFlexConfig
from repro.core.scheduler import LayerSchedule, ModelSchedule, resolve_workload
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import CnnModel

#: Tie-break tolerance of the discrete mode search (same constant as
#: :meth:`PipelineOptimizer.best_depth`).
_TIE_EPS = 1e-12


@dataclass(frozen=True)
class _Decision:
    """Cached outcome of one (GEMM, configuration) mode decision."""

    collapse_depth: int
    cycles: int
    clock_frequency_ghz: float
    execution_time_ns: float
    power_mw: float
    analytical_depth: float


def _ceil_div(a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray | int:
    return -(-a // b)


class BatchedCachedBackend(ExecutionBackend):
    """Vectorised mode optimisation with an LRU decision cache."""

    name = "batched"

    def __init__(self, cache_size: int = 65536) -> None:
        super().__init__()
        if cache_size <= 0:
            raise ValueError("cache_size must be positive")
        self.cache_size = cache_size
        self._cache: OrderedDict[tuple, _Decision] = OrderedDict()
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------ #
    # Protocol implementation
    # ------------------------------------------------------------------ #
    def schedule_layer(
        self, gemm: GemmShape, config: ArrayFlexConfig, index: int = 1
    ) -> LayerResult:
        decision = self._decide_batch([gemm], config)[0]
        return self._to_layer(index, gemm, decision)

    def schedule_model(
        self,
        model: CnnModel | list[GemmShape],
        config: ArrayFlexConfig,
        model_name: str | None = None,
    ) -> ModelSchedule:
        gemms, name = resolve_workload(model, model_name)
        decisions = self._decide_batch(gemms, config)
        schedule = ModelSchedule(
            model_name=name,
            accelerator="ArrayFlex",
            rows=config.rows,
            cols=config.cols,
        )
        for index, (gemm, decision) in enumerate(zip(gemms, decisions), start=1):
            schedule.layers.append(self._to_layer(index, gemm, decision))
        return schedule

    def schedule_model_conventional(
        self,
        model: CnnModel | list[GemmShape],
        config: ArrayFlexConfig,
        model_name: str | None = None,
    ) -> ModelSchedule:
        """Baseline schedule with the per-mode constants hoisted out.

        The single fixed mode needs no vectorised search: Eq. (2) comes
        from the shared closed-form helper, and only the clock/power
        lookups (identical for every layer) are computed once instead of
        per layer.
        """
        gemms, name = resolve_workload(model, model_name)
        parts = self.components(config)
        period_ns = parts.clock.conventional_period_ns()
        frequency = parts.clock.conventional_frequency_ghz()
        power = parts.energy.conventional_power_mw(frequency)
        schedule = ModelSchedule(
            model_name=name,
            accelerator="Conventional",
            rows=config.rows,
            cols=config.cols,
        )
        for index, gemm in enumerate(gemms, start=1):
            cycles = parts.latency.conventional_total_cycles(gemm)
            schedule.layers.append(
                LayerSchedule(
                    index=index,
                    gemm=gemm,
                    collapse_depth=1,
                    cycles=cycles,
                    clock_frequency_ghz=frequency,
                    execution_time_ns=cycles * period_ns,
                    power_mw=power,
                    analytical_depth=1.0,
                )
            )
        return schedule

    # ------------------------------------------------------------------ #
    # Cache bookkeeping
    # ------------------------------------------------------------------ #
    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the decision cache."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "size": len(self._cache),
            "max_size": self.cache_size,
        }

    def cache_clear(self) -> None:
        self._cache.clear()
        self._hits = 0
        self._misses = 0

    @staticmethod
    def _config_key(config: ArrayFlexConfig) -> tuple:
        return config.cache_key()

    # ------------------------------------------------------------------ #
    # The vectorised decision pass
    # ------------------------------------------------------------------ #
    def _decide_batch(
        self, gemms: list[GemmShape], config: ArrayFlexConfig
    ) -> list[_Decision]:
        """Decisions for a batch of GEMMs: cache lookups + one NumPy pass."""
        config_key = self._config_key(config)
        decisions: list[_Decision | None] = [None] * len(gemms)
        missing: list[int] = []
        unique_keys: dict[tuple, int] = {}
        unique_gemms: list[GemmShape] = []
        for i, gemm in enumerate(gemms):
            key = (gemm.m, gemm.n, gemm.t, config_key)
            cached = self._cache.get(key)
            if cached is not None:
                self._cache.move_to_end(key)
                self._hits += 1
                decisions[i] = cached
            else:
                self._misses += 1
                missing.append(i)
                if key not in unique_keys:
                    unique_keys[key] = len(unique_gemms)
                    unique_gemms.append(gemm)

        if missing:
            fresh = self._solve_vectorised(unique_gemms, config)
            for key, position in unique_keys.items():
                self._cache[key] = fresh[position]
            for i in missing:
                gemm = gemms[i]
                key = (gemm.m, gemm.n, gemm.t, config_key)
                decisions[i] = self._cache[key]
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return decisions  # type: ignore[return-value]

    def _solve_vectorised(
        self, gemms: list[GemmShape], config: ArrayFlexConfig
    ) -> list[_Decision]:
        """One NumPy pass of the Eq. (6) mode search over many layers.

        Shapes: ``times`` is (layers, depths); the column scan below is
        the exact vector analogue of the sequential shallow-first
        tie-break in ``PipelineOptimizer.best_depth``.
        """
        parts = self.components(config)
        rows, cols = config.rows, config.cols
        depths = config.sorted_depths()

        m = np.array([g.m for g in gemms], dtype=np.int64)
        n = np.array([g.n for g in gemms], dtype=np.int64)
        t = np.array([g.t for g in gemms], dtype=np.int64)
        tiles = _ceil_div(n, rows) * _ceil_div(m, cols)

        # Eq. (3)/(4) cycles for every layer at every supported depth.
        per_tile = np.stack(
            [
                rows + _ceil_div(rows, depth) + _ceil_div(cols, depth) + t - 2
                for depth in depths
            ],
            axis=1,
        )
        cycles = per_tile * tiles[:, None]

        # Eq. (6): absolute time under each mode's discrete operating point.
        periods_ns = np.array([parts.clock.period_ns(d) for d in depths])
        frequencies = np.array([parts.clock.frequency_ghz(d) for d in depths])
        powers = np.array(
            [
                parts.energy.arrayflex_power_mw(d, parts.clock.frequency_ghz(d))
                for d in depths
            ]
        )
        times = cycles * periods_ns[None, :]

        # Shallow-first argmin with the optimizer's strict-improvement rule.
        best_col = np.zeros(len(gemms), dtype=np.int64)
        best_time = times[:, 0].copy()
        for j in range(1, len(depths)):
            better = times[:, j] < best_time - _TIE_EPS
            best_col[better] = j
            best_time[better] = times[better, j]

        layer_index = np.arange(len(gemms))
        best_cycles = cycles[layer_index, best_col]
        return [
            _Decision(
                collapse_depth=depths[best_col[i]],
                cycles=int(best_cycles[i]),
                clock_frequency_ghz=float(frequencies[best_col[i]]),
                execution_time_ns=float(best_time[i]),
                power_mw=float(powers[best_col[i]]),
                # Eq. (7) lives in one place: the optimizer's closed form.
                analytical_depth=parts.optimizer.analytical_optimal_depth(gemms[i]),
            )
            for i in range(len(gemms))
        ]

    # ------------------------------------------------------------------ #
    @staticmethod
    def _to_layer(index: int, gemm: GemmShape, decision: _Decision) -> LayerSchedule:
        return LayerSchedule(
            index=index,
            gemm=gemm,
            collapse_depth=decision.collapse_depth,
            cycles=decision.cycles,
            clock_frequency_ghz=decision.clock_frequency_ghz,
            execution_time_ns=decision.execution_time_ns,
            power_mw=decision.power_mw,
            analytical_depth=decision.analytical_depth,
        )
