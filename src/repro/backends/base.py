"""The execution-backend contract.

Every way of "running" a workload on the accelerator — the closed-form
analytical models, the vectorised batched/cached evaluator, the
cycle-accurate tile simulator — implements the same two-method protocol:

* ``schedule_layer(gemm, config) -> LayerResult`` decides the pipeline
  mode of one GEMM and returns its cycles / time / power;
* ``schedule_model(model, config) -> ModelSchedule`` does the same for
  every layer of a workload (a CNN layer table, a transformer GEMM trace,
  any ``repro.workloads`` registry name or an explicit GEMM list) and
  aggregates the run.

Callers (the accelerator facade, the design-space explorer, the sweeps,
the experiment harness and the CLI) program against this protocol only,
so fidelity and speed can be traded per call site: pick
:class:`~repro.backends.analytical.AnalyticalBackend` for the reference
closed forms, :class:`~repro.backends.batched.BatchedCachedBackend` for
production-scale sweeps, or
:class:`~repro.backends.cycle_accurate.CycleAccurateBackend` when cycle
counts must come from simulation rather than Eq. (3).

All backends must produce :class:`ModelSchedule` objects that are
*numerically interchangeable*: the batched backend is bit-identical to
the analytical one, and the cycle-accurate backend matches wherever the
simulator agrees with the latency equations (which the test-suite pins
down).  ``tests/test_backends.py`` enforces this parity.
"""

from __future__ import annotations

import abc
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.core.clock import ClockModel
from repro.core.config import ArrayFlexConfig
from repro.core.energy import EnergyModel
from repro.core.latency import LatencyModel
from repro.core.metrics import (
    LayerMetrics,
    ModelSchedule,
    WorkloadArgument,
    resolve_workload,
)
from repro.core.optimizer import PipelineOptimizer
from repro.nn.gemm_mapping import GemmShape
from repro.obs.trace import get_tracer

#: The per-layer result type shared by every backend.  A backend's
#: ``schedule_layer`` returns exactly what the scheduler records for a
#: layer — the structured :class:`~repro.core.metrics.LayerMetrics`
#: record — so schedules built from any backend compose with the whole
#: reporting stack (energy reports, breakdowns, histograms,
#: EXPERIMENTS.md, ...).
LayerResult = LayerMetrics


@dataclass(frozen=True)
class ModelTotals:
    """Aggregate run metrics of one model on one accelerator.

    The sweep-style call sites (design-space exploration, size sweeps)
    only consume totals, so backends may produce these without
    materialising per-layer :class:`LayerResult` objects.  Totals are
    bit-identical to summing the corresponding :class:`ModelSchedule`
    properties: same values, same left-to-right summation order.

    ``error_bound`` is the combined model-level relative error bound of
    an *estimating* backend (the sampled backend's time-weighted
    per-layer bound); exact backends leave it ``None``.
    """

    time_ns: float
    energy_nj: float
    error_bound: float | None = None

    @property
    def average_power_mw(self) -> float:
        if self.time_ns == 0:
            return 0.0
        return self.energy_nj * 1000.0 / self.time_ns

    @property
    def energy_delay_product(self) -> float:
        return self.energy_nj * self.time_ns


@runtime_checkable
class ExecutionBackendProtocol(Protocol):
    """Structural type of an execution backend.

    Duck-typed implementations of this protocol (without subclassing
    :class:`ExecutionBackend`) are accepted everywhere a backend is,
    including :func:`repro.backends.create_backend`.
    """

    name: str

    def schedule_layer(
        self, gemm: GemmShape, config: ArrayFlexConfig, index: int = 1
    ) -> LayerResult: ...

    def schedule_model(
        self,
        model: WorkloadArgument,
        config: ArrayFlexConfig,
        model_name: str | None = None,
    ) -> ModelSchedule: ...

    def schedule_model_conventional(
        self,
        model: WorkloadArgument,
        config: ArrayFlexConfig,
        model_name: str | None = None,
    ) -> ModelSchedule: ...


class ExecutionBackend(abc.ABC):
    """Base class of all execution backends.

    Subclasses implement :meth:`schedule_layer`; the model-level loop,
    the conventional-baseline path and the per-configuration component
    cache are shared here.  Backends are stateless with respect to the
    accelerator configuration — the configuration is an argument of every
    call — so one backend instance can serve arbitrarily many design
    points (which is what lets the batched backend's cache span a whole
    design-space sweep).
    """

    #: Registry key and CLI spelling of the backend.
    name: str = "abstract"

    #: Bound on the per-configuration component bundles kept alive, so a
    #: sweep over very many geometries cannot grow the backend unboundedly.
    MAX_COMPONENT_BUNDLES = 128

    def __init__(self) -> None:
        self._components: OrderedDict[tuple, _ConfigComponents] = OrderedDict()
        self._components_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # Pickling (locks cannot cross process boundaries; subclasses with
    # extra transient state extend these)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_components_lock", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._components_lock = threading.RLock()

    # ------------------------------------------------------------------ #
    # The protocol
    # ------------------------------------------------------------------ #
    def flush_store(self) -> None:
        """Flush buffered decision-store writes to disk.

        No-op for backends without an attached
        :class:`~repro.backends.store.DecisionStore` (or without one at
        all).  Single-decision writers buffer rows in the store
        (:meth:`DecisionStore.put`) and call this at model boundaries, so
        a finished schedule is always fully persisted; long-lived callers
        (the serving front-end's ``close``) call it as a final drain.
        """
        store = getattr(self, "store", None)
        if store is not None:
            store.flush()

    def decision_identity(self) -> tuple:
        """Backend parameters that change the *numbers* it produces.

        The exact backends (analytical / batched / cycle) are numerically
        interchangeable, so their identity is empty: results cached or
        deduplicated under one of them are valid under any other.
        Estimating backends whose output depends on their own knobs — the
        sampled backend's seed and sample sizes — override this; the
        tuple is folded into :class:`~repro.serve.SchedulingService`
        dedup keys and into the backend's
        :class:`~repro.backends.store.DecisionStore` shard keys, so a
        result computed under one seed/fraction can never be served for
        another.
        """
        return ()

    @abc.abstractmethod
    def schedule_layer(
        self, gemm: GemmShape, config: ArrayFlexConfig, index: int = 1
    ) -> LayerResult:
        """Decide the pipeline mode of one GEMM and measure/model its run."""

    def schedule_model(
        self,
        model: WorkloadArgument,
        config: ArrayFlexConfig,
        model_name: str | None = None,
    ) -> ModelSchedule:
        """Schedule every layer of a model (one decision per layer)."""
        gemms, name = resolve_workload(model, model_name)
        schedule = ModelSchedule(
            model_name=name,
            accelerator="ArrayFlex",
            rows=config.rows,
            cols=config.cols,
        )
        with get_tracer().span(
            "backend.schedule_model", backend=self.name, model=name, layers=len(gemms)
        ):
            for index, gemm in enumerate(gemms, start=1):
                schedule.layers.append(self.schedule_layer(gemm, config, index=index))
        return schedule

    def schedule_model_totals(
        self,
        model: WorkloadArgument,
        config: ArrayFlexConfig,
        model_name: str | None = None,
        conventional: bool = False,
    ) -> ModelTotals:
        """Aggregate time/energy of one model run (sweep fast path).

        The generic implementation materialises the full schedule and sums
        it; backends that can produce totals without building per-layer
        objects (the batched backend) override this.  Either way the
        numbers equal the :class:`~repro.core.scheduler.ModelSchedule`
        property sums bit-for-bit, and ``error_bound`` is the schedule's
        :meth:`~repro.core.metrics.ModelSchedule.combined_error_bound`
        (``None`` for exact backends), so the generic path and the
        estimating backends' fast paths report the same bound for the
        same run — including runs mixing exhaustively-sampled (zero
        bound) and sampled (nonzero bound) strata.
        """
        scheduler = self.schedule_model_conventional if conventional else self.schedule_model
        schedule = scheduler(model, config, model_name=model_name)
        return ModelTotals(
            time_ns=schedule.total_time_ns,
            energy_nj=schedule.total_energy_nj,
            error_bound=schedule.combined_error_bound(),
        )

    # ------------------------------------------------------------------ #
    # Conventional baseline (single fixed mode, shared closed form)
    # ------------------------------------------------------------------ #
    def schedule_layer_conventional(
        self, gemm: GemmShape, config: ArrayFlexConfig, index: int = 1
    ) -> LayerResult:
        """Schedule one GEMM on the fixed-pipeline baseline (always k = 1)."""
        parts = self.components(config)
        cycles = parts.latency.conventional_total_cycles(gemm)
        frequency = parts.clock.conventional_frequency_ghz()
        power, activity, utilization = parts.energy.conventional_layer_power(
            gemm, frequency
        )
        return LayerMetrics(
            index=index,
            gemm=gemm,
            collapse_depth=1,
            cycles=cycles,
            clock_frequency_ghz=frequency,
            execution_time_ns=parts.clock.conventional_execution_time_ns(cycles),
            activity=activity,
            array_utilization=utilization,
            power=power,
            analytical_depth=1.0,
        )

    def schedule_model_conventional(
        self,
        model: WorkloadArgument,
        config: ArrayFlexConfig,
        model_name: str | None = None,
    ) -> ModelSchedule:
        """Schedule a whole model on the conventional baseline."""
        gemms, name = resolve_workload(model, model_name)
        schedule = ModelSchedule(
            model_name=name,
            accelerator="Conventional",
            rows=config.rows,
            cols=config.cols,
        )
        with get_tracer().span(
            "backend.schedule_model",
            backend=self.name,
            model=name,
            layers=len(gemms),
            conventional=True,
        ):
            for index, gemm in enumerate(gemms, start=1):
                schedule.layers.append(
                    self.schedule_layer_conventional(gemm, config, index=index)
                )
        return schedule

    # ------------------------------------------------------------------ #
    # Shared per-configuration model components
    # ------------------------------------------------------------------ #
    def components(self, config: ArrayFlexConfig) -> "_ConfigComponents":
        """Latency/clock/optimizer/energy models bound to one configuration.

        Building a :class:`ClockModel` resolves every operating point, so
        the bundles are memoised per configuration (keyed by
        :meth:`ArrayFlexConfig.cache_key`).  Backends are shared across
        :class:`~repro.serve.SchedulingService` threads, so the memo's
        get / move-to-end / evict sequence is lock-serialised; the
        returned bundle itself is read-only.
        """
        key = config.cache_key()
        with self._components_lock:
            parts = self._components.get(key)
            if parts is None:
                parts = _ConfigComponents(config)
                self._components[key] = parts
                while len(self._components) > self.MAX_COMPONENT_BUNDLES:
                    self._components.popitem(last=False)
            else:
                self._components.move_to_end(key)
            return parts


class _ConfigComponents:
    """The analytical model stack bound to one accelerator configuration."""

    __slots__ = ("config", "latency", "clock", "optimizer", "energy")

    def __init__(self, config: ArrayFlexConfig) -> None:
        self.config = config
        self.latency = LatencyModel(config)
        self.clock = ClockModel(config)
        self.optimizer = PipelineOptimizer(config)
        self.energy = EnergyModel(config)
