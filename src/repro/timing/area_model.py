"""Area model of conventional and ArrayFlex processing elements and arrays.

The paper quantifies the cost of pipeline-depth reconfigurability from the
physical layouts of two 8×8 arrays (Fig. 6): the ArrayFlex PE is about 16%
larger than a conventional PE, the extra area being consumed by the 3:2
carry-save adder, the bypass multiplexers and (marginally) the two
configuration bits per PE.

This module reproduces that comparison analytically.  Component areas are
derived from the gate counts of the bit-level models in
:mod:`repro.arith`, times a per-gate area from the technology model.  Two
overhead figures are reported:

* the *structural* overhead -- purely from gate counts of the added cells;
* the *layout* overhead -- the structural extra area multiplied by the
  technology's ``layout_overhead_factor``, which accounts for placement,
  routing, clock-gating cells and configuration distribution that a gate
  count cannot see.  The default factor is calibrated so the layout
  overhead lands at the paper's ~16%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arith.adders import ripple_carry_gate_count
from repro.arith.csa import csa_gate_count
from repro.arith.multiplier import multiplier_gate_count
from repro.timing.technology import TechnologyModel


@dataclass(frozen=True)
class PEAreaBreakdown:
    """Component-wise area of one processing element (um^2)."""

    multiplier: float
    adder: float
    registers: float
    carry_save_adder: float
    bypass_muxes: float
    config_bits: float
    layout_overhead: float

    @property
    def total(self) -> float:
        return (
            self.multiplier
            + self.adder
            + self.registers
            + self.carry_save_adder
            + self.bypass_muxes
            + self.config_bits
            + self.layout_overhead
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "multiplier": self.multiplier,
            "adder": self.adder,
            "registers": self.registers,
            "carry_save_adder": self.carry_save_adder,
            "bypass_muxes": self.bypass_muxes,
            "config_bits": self.config_bits,
            "layout_overhead": self.layout_overhead,
            "total": self.total,
        }


class AreaModel:
    """Computes PE and array areas for both accelerator variants."""

    #: Gate equivalents of a 2:1 multiplexer, per bit.
    MUX_GATE_EQUIV_PER_BIT = 1.0
    #: Number of bypass multiplexers per ArrayFlex PE: one on the
    #: horizontal (input-width) path and one per vector of the vertical
    #: carry-save pair (sum and carry, accumulator width each).
    HORIZONTAL_MUXES = 1
    VERTICAL_MUXES = 2
    #: Configuration bits per PE (one per direction, paper Section III-B).
    CONFIG_BITS = 2

    def __init__(self, technology: TechnologyModel | None = None) -> None:
        self.technology = technology or TechnologyModel.default_28nm()

    # ------------------------------------------------------------------ #
    # Per-PE register complement
    # ------------------------------------------------------------------ #
    def register_bits_per_pe(self) -> int:
        """Pipeline register bits per PE (both variants).

        Weight register (input width, stationary), horizontal activation
        register (input width) and vertical partial-sum register
        (accumulator width).
        """
        tech = self.technology
        return 2 * tech.input_width + tech.accum_width

    # ------------------------------------------------------------------ #
    # Areas
    # ------------------------------------------------------------------ #
    def _gate_area(self, gate_equivalents: float) -> float:
        return gate_equivalents * self.technology.area_per_gate_um2

    def conventional_pe_area(self) -> PEAreaBreakdown:
        """Area of one conventional (fixed-pipeline) PE."""
        tech = self.technology
        return PEAreaBreakdown(
            multiplier=self._gate_area(multiplier_gate_count(tech.input_width)),
            adder=self._gate_area(ripple_carry_gate_count(tech.accum_width)),
            registers=self._gate_area(
                self.register_bits_per_pe() * tech.reg_bit_gate_equivalents
            ),
            carry_save_adder=0.0,
            bypass_muxes=0.0,
            config_bits=0.0,
            layout_overhead=0.0,
        )

    def arrayflex_pe_area(self) -> PEAreaBreakdown:
        """Area of one ArrayFlex (configurable-pipeline) PE."""
        tech = self.technology
        base = self.conventional_pe_area()

        csa_area = self._gate_area(csa_gate_count(tech.accum_width))
        mux_gate_equiv = self.MUX_GATE_EQUIV_PER_BIT * (
            self.HORIZONTAL_MUXES * tech.input_width
            + self.VERTICAL_MUXES * tech.accum_width
        )
        mux_area = self._gate_area(mux_gate_equiv)
        config_area = self._gate_area(
            self.CONFIG_BITS * tech.reg_bit_gate_equivalents
        )
        structural_extra = csa_area + mux_area + config_area
        layout_extra = structural_extra * (tech.layout_overhead_factor - 1.0)

        return PEAreaBreakdown(
            multiplier=base.multiplier,
            adder=base.adder,
            registers=base.registers,
            carry_save_adder=csa_area,
            bypass_muxes=mux_area,
            config_bits=config_area,
            layout_overhead=layout_extra,
        )

    # ------------------------------------------------------------------ #
    # Overheads and array totals
    # ------------------------------------------------------------------ #
    def pe_structural_overhead(self) -> float:
        """Fractional PE area overhead counting only the added gates."""
        conventional = self.conventional_pe_area().total
        arrayflex = self.arrayflex_pe_area()
        structural_total = arrayflex.total - arrayflex.layout_overhead
        return structural_total / conventional - 1.0

    def pe_area_overhead(self) -> float:
        """Fractional PE area overhead including layout effects (paper: ~16%)."""
        conventional = self.conventional_pe_area().total
        arrayflex = self.arrayflex_pe_area().total
        return arrayflex / conventional - 1.0

    def array_area_um2(self, rows: int, cols: int, configurable: bool) -> float:
        """Total PE-array area for an ``rows × cols`` array of either variant."""
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        pe_area = (
            self.arrayflex_pe_area().total
            if configurable
            else self.conventional_pe_area().total
        )
        return rows * cols * pe_area

    def array_area_mm2(self, rows: int, cols: int, configurable: bool) -> float:
        """Array area in mm^2 (convenience for reporting)."""
        return self.array_area_um2(rows, cols, configurable) / 1e6
