"""Graph-based static timing analysis of a collapsible pipeline block.

The paper obtains Tclock(k) from a commercial static-timing analyzer after
declaring the unused collapse configurations as false paths
(Section III-C: "When collapsing fewer than kmax pipeline stages, the
combinational paths that still exist in the design but are not used are
considered false paths. We provide this information explicitly to the
static timing analyzer.").

This module reproduces that methodology on a small scale:

* :class:`PipelineBlockNetlist` builds a directed acyclic graph of the
  combinational logic seen by the worst-case path of one collapsed group of
  ``kmax`` PEs: the horizontal chain of bypass multiplexers that broadcasts
  an activation across the group's columns, the multiplier of the top PE of
  the vertical group, the cascade of 3:2 carry-save adders and vertical
  bypass multiplexers down the group, the final carry-propagate adder and
  the capture flip-flop.
* :class:`StaticTimingAnalyzer` finds the longest register-to-register
  path for a *configured* collapse depth ``k <= kmax``, excluding the
  false paths that cross a group boundary of the configured mode.

The analyzer's result equals the closed-form Eq. (5) delay
``d_FF + d_mul + d_add + k (d_CSA + 2 d_mux)``, which is exactly the point:
the equation is a faithful summary of the real critical path.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.timing.technology import TechnologyModel


@dataclass(frozen=True)
class TimingPath:
    """A register-to-register combinational path and its total delay."""

    nodes: tuple[str, ...]
    delay_ps: float

    @property
    def num_cells(self) -> int:
        """Number of combinational cells on the path (excludes flip-flops)."""
        return sum(1 for n in self.nodes if not n.endswith("ff"))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return " -> ".join(self.nodes) + f"  [{self.delay_ps:.1f} ps]"


class PipelineBlockNetlist:
    """Gate-level netlist of one collapsible group of ``kmax`` PEs.

    Node naming convention:

    * ``launch_ff``        -- pipeline register launching data into the group.
    * ``hmux{j}``          -- j-th horizontal bypass multiplexer of the input
      broadcast chain (j = 0 is closest to the launching register).  In
      shallow mode the activation traverses up to ``k`` of them before
      reaching a multiplier.
    * ``pe{i}/mul``        -- multiplier of PE i of the vertical group
      (i = 0 is the top row of the group).
    * ``pe{i}/csa``        -- 3:2 carry-save adder of PE i.
    * ``pe{i}/vmux``       -- vertical bypass multiplexer of PE i.
    * ``pe{i}/cpa``        -- carry-propagate adder of PE i.
    * ``pe{i}/capture_ff`` -- output pipeline register of PE i.

    Every node stores its cell delay; the longest-path arrival time at a
    capture flip-flop plus the flip-flop overhead (``d_FF``) is the minimum
    clock period.
    """

    def __init__(self, kmax: int, technology: TechnologyModel | None = None) -> None:
        if kmax < 1:
            raise ValueError("kmax must be >= 1")
        self.kmax = kmax
        self.technology = technology or TechnologyModel.default_28nm()
        self.graph = self._build()

    def _build(self) -> nx.DiGraph:
        tech = self.technology
        graph = nx.DiGraph()
        graph.add_node("launch_ff", cell="ff", delay=0.0)

        # Horizontal broadcast chain: one bypass mux per column of the group.
        for j in range(self.kmax):
            graph.add_node(f"hmux{j}", cell="mux", delay=tech.d_mux_ps)
            if j == 0:
                graph.add_edge("launch_ff", "hmux0")
            else:
                graph.add_edge(f"hmux{j - 1}", f"hmux{j}")

        for i in range(self.kmax):
            graph.add_node(f"pe{i}/mul", cell="mul", delay=tech.d_mul_ps)
            graph.add_node(f"pe{i}/csa", cell="csa", delay=tech.d_csa_ps)
            graph.add_node(f"pe{i}/vmux", cell="mux", delay=tech.d_mux_ps)
            graph.add_node(f"pe{i}/cpa", cell="add", delay=tech.d_add_ps)
            graph.add_node(f"pe{i}/capture_ff", cell="ff", delay=0.0)

            # The multiplier of any PE of the group may be fed from any
            # position of the horizontal broadcast chain (it depends on the
            # PE's column offset inside the collapsed block).
            for j in range(self.kmax):
                graph.add_edge(f"hmux{j}", f"pe{i}/mul")

            # Vertical reduction: the product enters the CSA together with
            # the running carry-save pair coming from the PE above (or from
            # the launching register for the top PE); the CSA output goes
            # through the vertical bypass mux either transparently into the
            # next PE's CSA or into this PE's CPA and capture register.
            graph.add_edge(f"pe{i}/mul", f"pe{i}/csa")
            if i == 0:
                graph.add_edge("launch_ff", "pe0/csa")
            else:
                graph.add_edge(f"pe{i - 1}/vmux", f"pe{i}/csa")
            graph.add_edge(f"pe{i}/csa", f"pe{i}/vmux")
            graph.add_edge(f"pe{i}/vmux", f"pe{i}/cpa")
            graph.add_edge(f"pe{i}/cpa", f"pe{i}/capture_ff")
        return graph

    def combinational_paths_exist_beyond(self, depth: int) -> bool:
        """True if the physical netlist has paths longer than ``depth`` stages.

        Those are exactly the paths that must be declared false when the
        array is configured for a shallower collapse depth.
        """
        return depth < self.kmax


class StaticTimingAnalyzer:
    """Longest-path timing analysis with false-path exclusion."""

    def __init__(self, netlist: PipelineBlockNetlist) -> None:
        self.netlist = netlist
        self.technology = netlist.technology

    # ------------------------------------------------------------------ #
    def _active_subgraph(self, configured_k: int) -> nx.DiGraph:
        """Subgraph containing only the paths exercised at depth ``configured_k``.

        With a configured depth of ``k``, the vertical bypass multiplexer of
        every k-th PE selects the opaque (registered) path and the
        horizontal broadcast re-registers every k columns, so combinational
        edges that would cross those boundaries are false and removed.
        """
        if configured_k < 1 or configured_k > self.netlist.kmax:
            raise ValueError(
                f"configured collapse depth {configured_k} outside "
                f"[1, {self.netlist.kmax}]"
            )
        graph = self.netlist.graph.copy()
        false_edges = []
        for i in range(self.netlist.kmax - 1):
            if (i + 1) % configured_k == 0:
                false_edges.append((f"pe{i}/vmux", f"pe{i + 1}/csa"))
                false_edges.append((f"hmux{i}", f"hmux{i + 1}"))
        graph.remove_edges_from(false_edges)
        return graph

    def critical_path(self, configured_k: int) -> TimingPath:
        """Longest register-to-register path for the configured depth.

        The returned delay includes the flip-flop clocking overhead
        (``d_FF``), making it directly comparable to Eq. (5).
        """
        graph = self._active_subgraph(configured_k)
        arrival: dict[str, float] = {}
        predecessor: dict[str, str | None] = {}
        for node in nx.topological_sort(graph):
            node_delay = graph.nodes[node]["delay"]
            preds = list(graph.predecessors(node))
            if preds:
                best_pred = max(preds, key=lambda p: arrival[p])
                arrival[node] = arrival[best_pred] + node_delay
                predecessor[node] = best_pred
            else:
                arrival[node] = node_delay
                predecessor[node] = None

        capture_nodes = [n for n in graph.nodes if n.endswith("capture_ff")]
        end = max(capture_nodes, key=lambda n: arrival[n])
        nodes = [end]
        while predecessor[nodes[-1]] is not None:
            nodes.append(predecessor[nodes[-1]])  # type: ignore[arg-type]
        nodes.reverse()
        total = arrival[end] + self.technology.d_ff_ps
        return TimingPath(nodes=tuple(nodes), delay_ps=total)

    def minimum_clock_period_ps(self, configured_k: int) -> float:
        """Minimum clock period at the configured collapse depth."""
        return self.critical_path(configured_k).delay_ps

    def false_path_count(self, configured_k: int) -> int:
        """Number of physical edges declared false at the configured depth."""
        full_edges = self.netlist.graph.number_of_edges()
        active_edges = self._active_subgraph(configured_k).number_of_edges()
        return full_edges - active_edges
