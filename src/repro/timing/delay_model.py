"""Clock-period model of the configurable pipeline (Eq. 5).

The minimum clock period of a systolic array is set by the longest
combinational path between any two pipeline registers plus the flip-flop
clocking overhead.  For ArrayFlex with ``k`` collapsed stages that path is
(paper Section III-C):

    Tclock(k) = d_FF + d_mul + d_add + k * (d_CSA + 2 d_mux)        (Eq. 5)

The conventional, non-configurable array has no carry-save adders or bypass
multiplexers on its critical path, so its period is simply
``d_FF + d_mul + d_add``.

Two views of the clock are provided:

* the *continuous* model -- Eq. (5) evaluated exactly; used by the
  analytical optimum of Eq. (7);
* the *discrete operating points* -- frequencies rounded to the paper's
  reporting granularity (0.1 GHz), reproducing the 2.0 / 1.8 / 1.7 /
  1.4 GHz values quoted in Section IV.  The experiments use these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.technology import TechnologyModel

PS_PER_S = 1e12
GHZ_PER_HZ = 1e-9


@dataclass(frozen=True)
class OperatingPoint:
    """One legal (pipeline mode, clock) pair of an accelerator."""

    collapse_depth: int
    clock_period_ps: float
    clock_frequency_ghz: float
    configurable: bool

    @property
    def clock_period_s(self) -> float:
        return self.clock_period_ps / PS_PER_S

    @property
    def clock_frequency_hz(self) -> float:
        return self.clock_frequency_ghz / GHZ_PER_HZ

    def describe(self) -> str:
        kind = "ArrayFlex" if self.configurable else "conventional"
        return (
            f"{kind} k={self.collapse_depth}: "
            f"{self.clock_period_ps:.0f} ps ({self.clock_frequency_ghz:.1f} GHz)"
        )


class DelayModel:
    """Computes clock periods and operating points from a technology model."""

    def __init__(self, technology: TechnologyModel | None = None) -> None:
        self.technology = technology or TechnologyModel.default_28nm()

    # ------------------------------------------------------------------ #
    # Continuous model (Eq. 5)
    # ------------------------------------------------------------------ #
    def conventional_clock_period_ps(self) -> float:
        """Critical path of the conventional, non-configurable PE."""
        return self.technology.baseline_path_ps

    def clock_period_ps(self, collapse_depth: int) -> float:
        """Eq. (5): minimum clock period of a k-collapsed ArrayFlex pipeline."""
        self._check_depth(collapse_depth)
        tech = self.technology
        return tech.baseline_path_ps + collapse_depth * tech.collapse_increment_ps

    def clock_period_ps_without_csa(self, collapse_depth: int) -> float:
        """Ablation: collapse with k carry-propagate adders in series.

        This is the naive alternative the paper argues against in
        Section III-B -- without the 3:2 carry-save stage every collapsed
        PE contributes a full CPA delay, so the clock degrades much faster.
        """
        self._check_depth(collapse_depth)
        tech = self.technology
        return (
            tech.d_ff_ps
            + tech.d_mul_ps
            + collapse_depth * (tech.d_add_ps + 2.0 * tech.d_mux_ps)
        )

    def frequency_ghz(self, clock_period_ps: float, rounded: bool = True) -> float:
        """Convert a clock period to a frequency, optionally rounded.

        Rounding uses the technology's reporting granularity (0.1 GHz by
        default), matching how the paper quotes its operating points.
        """
        if clock_period_ps <= 0:
            raise ValueError("clock period must be positive")
        freq = PS_PER_S / clock_period_ps * GHZ_PER_HZ
        if not rounded:
            return freq
        step = self.technology.frequency_round_ghz
        return round(freq / step) * step

    # ------------------------------------------------------------------ #
    # Discrete operating points
    # ------------------------------------------------------------------ #
    def conventional_operating_point(self) -> OperatingPoint:
        """The fixed-pipeline baseline: k = 1 at the full 2 GHz clock."""
        period = self.conventional_clock_period_ps()
        freq = self.frequency_ghz(period)
        return OperatingPoint(
            collapse_depth=1,
            clock_period_ps=period,
            clock_frequency_ghz=freq,
            configurable=False,
        )

    def arrayflex_operating_point(self, collapse_depth: int) -> OperatingPoint:
        """The ArrayFlex operating point for one supported collapse depth.

        The reported frequency is Eq. (5) rounded to the paper's 0.1 GHz
        granularity; the clock period actually used for latency accounting
        is re-derived from that rounded frequency so that cycles × period
        reproduces the paper's arithmetic.
        """
        period_exact = self.clock_period_ps(collapse_depth)
        freq = self.frequency_ghz(period_exact)
        period_reported = PS_PER_S / (freq / GHZ_PER_HZ)
        return OperatingPoint(
            collapse_depth=collapse_depth,
            clock_period_ps=period_reported,
            clock_frequency_ghz=freq,
            configurable=True,
        )

    def operating_points(self, supported_depths: tuple[int, ...]) -> list[OperatingPoint]:
        """All ArrayFlex operating points for the supported collapse depths."""
        return [self.arrayflex_operating_point(k) for k in sorted(set(supported_depths))]

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_depth(collapse_depth: int) -> None:
        if collapse_depth < 1:
            raise ValueError(
                f"collapse depth must be >= 1, got {collapse_depth}"
            )

    def delay_ratio(self) -> float:
        """Ratio (d_FF + d_mul + d_add) / (d_CSA + 2 d_mux) used by Eq. (7)."""
        return self.technology.baseline_path_ps / self.technology.collapse_increment_ps
