"""Calibrated 28 nm technology parameters.

The reproduction cannot run the authors' Cadence implementation flow, so
this module provides the analytical parameter set that replaces it.  The
calibration targets are the concrete numbers the paper reports:

* conventional (non-configurable) systolic array closes timing at 2 GHz,
* ArrayFlex closes at 1.8 GHz in normal mode (k = 1), 1.7 GHz for k = 2 and
  1.4 GHz for k = 4 (Section IV),
* the ArrayFlex PE costs ~16% more area than a conventional PE (Fig. 6),
* power savings of 13%–15% (128×128) and 17%–23% (256×256), with
  ArrayFlex consuming slightly *more* power than the conventional SA when
  both run in normal pipeline mode (Section IV-B).

The delay split follows Eq. (5): the conventional PE critical path is
``d_FF + d_mul + d_add`` and every collapsed stage adds ``d_CSA + 2 d_mux``.
With the defaults below the conventional path is 500 ps (2 GHz) and each
collapse step adds 50 ps, giving 550 / 600 / 700 ps for k = 1 / 2 / 4,
i.e. 1.82 / 1.67 / 1.43 GHz, which round to the paper's reported
1.8 / 1.7 / 1.4 GHz operating points.

Energy and area parameters are derived from gate-count ratios of the
bit-level models in :mod:`repro.arith` and scaled to representative 28 nm
values.  Absolute magnitudes are not claimed to match the authors' silicon
numbers; the reproduction relies only on the component *ratios*.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace


@dataclass(frozen=True)
class TechnologyModel:
    """A complete set of technology parameters for one process/design point.

    Delays are in picoseconds, energies in picojoules per activation (one
    clock cycle of activity), areas in square micrometres, static power in
    milliwatts.  All widths refer to the paper's evaluation datapath:
    32-bit operands, 64-bit accumulation.
    """

    name: str = "generic-28nm"

    # ------------------------------------------------------------------ #
    # Datapath widths
    # ------------------------------------------------------------------ #
    input_width: int = 32
    accum_width: int = 64

    # ------------------------------------------------------------------ #
    # Delays (ps) -- the terms of Eq. (5)
    # ------------------------------------------------------------------ #
    #: Flip-flop clocking overhead: clock-to-Q plus setup time.
    d_ff_ps: float = 60.0
    #: 32x32 multiplier delay.
    d_mul_ps: float = 330.0
    #: 64-bit carry-propagate (lookahead) adder delay.
    d_add_ps: float = 110.0
    #: 64-bit 3:2 carry-save adder delay (one full-adder level).
    d_csa_ps: float = 20.0
    #: 2:1 bypass multiplexer delay.
    d_mux_ps: float = 15.0

    # ------------------------------------------------------------------ #
    # Dynamic energy per activation (pJ)
    # ------------------------------------------------------------------ #
    e_mul_pj: float = 3.00
    e_add_pj: float = 0.25
    e_csa_pj: float = 0.17
    e_mux_pj: float = 0.10
    #: Register data energy per bit written.
    e_reg_bit_pj: float = 0.0012
    #: Clock-network + local clock-pin energy per register bit per cycle,
    #: spent whether or not the stored data toggles -- removed only by
    #: clock gating.
    e_clk_bit_pj: float = 0.0015
    #: SRAM access energy per bit read/written at the array edges.
    e_sram_bit_pj: float = 0.0080
    #: Output accumulator energy per accumulation.
    e_accum_pj: float = 0.30

    # ------------------------------------------------------------------ #
    # Leakage (mW per PE)
    # ------------------------------------------------------------------ #
    p_leak_pe_mw: float = 0.030

    # ------------------------------------------------------------------ #
    # Area (um^2)
    # ------------------------------------------------------------------ #
    #: Area of one NAND2-equivalent gate in the 28 nm library.
    area_per_gate_um2: float = 0.50
    #: Area of one register bit (flip-flop), expressed in gate equivalents.
    reg_bit_gate_equivalents: float = 4.0
    #: Multiplicative factor applied to the ArrayFlex-specific extra logic
    #: to account for placement, routing, clock-gating cells and the
    #: configuration-bit distribution network that a pure gate count does
    #: not capture.  Calibrated so that the per-PE area overhead matches
    #: the ~16% measured from the paper's physical layouts (Fig. 6).
    layout_overhead_factor: float = 3.85

    # ------------------------------------------------------------------ #
    # Supply / misc
    # ------------------------------------------------------------------ #
    vdd_v: float = 0.9
    #: Clock frequencies are reported rounded to this granularity (GHz),
    #: mirroring the paper's 1.8 / 1.7 / 1.4 GHz figures.
    frequency_round_ghz: float = 0.1

    extras: dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        positive_fields = {
            "input_width": self.input_width,
            "accum_width": self.accum_width,
            "d_ff_ps": self.d_ff_ps,
            "d_mul_ps": self.d_mul_ps,
            "d_add_ps": self.d_add_ps,
            "d_csa_ps": self.d_csa_ps,
            "d_mux_ps": self.d_mux_ps,
            "e_mul_pj": self.e_mul_pj,
            "e_add_pj": self.e_add_pj,
            "e_csa_pj": self.e_csa_pj,
            "e_mux_pj": self.e_mux_pj,
            "e_reg_bit_pj": self.e_reg_bit_pj,
            "e_clk_bit_pj": self.e_clk_bit_pj,
            "area_per_gate_um2": self.area_per_gate_um2,
            "reg_bit_gate_equivalents": self.reg_bit_gate_equivalents,
            "layout_overhead_factor": self.layout_overhead_factor,
            "vdd_v": self.vdd_v,
            "frequency_round_ghz": self.frequency_round_ghz,
        }
        for field_name, value in positive_fields.items():
            if value <= 0:
                raise ValueError(f"technology parameter {field_name} must be positive")
        if self.accum_width < self.input_width:
            raise ValueError("accumulator width must be at least the input width")
        if self.p_leak_pe_mw < 0:
            raise ValueError("leakage power must be non-negative")

    # ------------------------------------------------------------------ #
    def cache_key(self) -> tuple:
        """Hashable identity of this parameter set.

        The dataclass itself is not hashable because of the ``extras``
        dict; memoisation layers (the execution backends) key their
        caches on this tuple instead.  The tuple is derived once per
        instance (the dataclass is frozen, so it cannot go stale) — it
        sits on the hot path of every backend cache lookup.
        """
        cached = getattr(self, "_cache_key", None)
        if cached is None:
            values: list[object] = []
            for f in fields(self):
                value = getattr(self, f.name)
                if isinstance(value, dict):
                    value = tuple(sorted(value.items()))
                values.append(value)
            cached = tuple(values)
            object.__setattr__(self, "_cache_key", cached)
        return cached

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def baseline_path_ps(self) -> float:
        """Critical path of a conventional PE: ``d_FF + d_mul + d_add``."""
        return self.d_ff_ps + self.d_mul_ps + self.d_add_ps

    @property
    def collapse_increment_ps(self) -> float:
        """Delay added per collapsed stage: ``d_CSA + 2 d_mux`` (Eq. 5)."""
        return self.d_csa_ps + 2.0 * self.d_mux_ps

    def scaled(self, factor: float, name: str | None = None) -> "TechnologyModel":
        """Return a copy with all delays scaled by ``factor``.

        Useful for what-if studies (e.g. a slower low-power library corner).
        Energies and areas are left untouched.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return replace(
            self,
            name=name or f"{self.name}-x{factor:g}",
            d_ff_ps=self.d_ff_ps * factor,
            d_mul_ps=self.d_mul_ps * factor,
            d_add_ps=self.d_add_ps * factor,
            d_csa_ps=self.d_csa_ps * factor,
            d_mux_ps=self.d_mux_ps * factor,
        )

    @classmethod
    def default_28nm(cls) -> "TechnologyModel":
        """The calibration used for every headline experiment in the paper."""
        return cls(name="arrayflex-28nm")

    @classmethod
    def from_overrides(cls, **overrides: float) -> "TechnologyModel":
        """Build a technology model overriding selected defaults.

        >>> tech = TechnologyModel.from_overrides(d_mul_ps=400.0)
        >>> tech.d_mul_ps
        400.0
        """
        return replace(cls.default_28nm(), **overrides)
