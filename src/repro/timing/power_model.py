"""Power model of conventional and ArrayFlex systolic arrays.

The paper's power argument (Section IV-B) rests on three effects:

1. ArrayFlex has *more* switched capacitance per PE than a conventional SA
   (carry-save adder, bypass multiplexers, configuration bits), so in
   normal pipeline mode it consumes slightly more power even at its lower
   1.8 GHz clock.
2. In shallow pipeline mode the clock frequency drops further
   (1.7 / 1.4 GHz for k = 2 / 4), cutting dynamic power proportionally.
3. The bypassed (transparent) pipeline registers are clock gated: for a
   collapse depth of k, only one of every k horizontal registers and one of
   every k vertical partial-sum registers is clocked, removing most of the
   register and clock-tree power inside collapsed groups.  Only one
   carry-propagate adder per k-group remains active.

This module composes per-PE energy-per-cycle figures from the technology
parameters, converts them to power at the per-mode operating frequency and
aggregates them over an R × C array.  Average power over a full CNN run is
the energy-weighted combination produced by :mod:`repro.core.energy`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.timing.area_model import AreaModel
from repro.timing.technology import TechnologyModel


@dataclass(frozen=True)
class ArrayPowerBreakdown:
    """Array-level power (mW) of one operating point, split by component.

    ``total_mw`` is an explicit field, not a sum of the components: it is
    computed with exactly the historical operation order
    (``R*C * (per-PE energy total * f + leakage)``), so schedules built
    from breakdowns stay bit-identical to the scalar power path.  The
    per-component figures are the same physics resolved per component
    (each ``R*C * component_pJ * f``); summing them reproduces
    ``total_mw`` only up to float rounding.
    """

    multiplier: float
    carry_propagate_adder: float
    carry_save_adder: float
    bypass_muxes: float
    register_data: float
    register_clock: float
    leakage: float
    total_mw: float

    #: Components whose energy scales with datapath activity (everything
    #: except the ungated clock tree and leakage).
    DATAPATH_COMPONENTS = (
        "multiplier",
        "carry_propagate_adder",
        "carry_save_adder",
        "bypass_muxes",
        "register_data",
    )

    @property
    def datapath_mw(self) -> float:
        """Power of the activity-scaled datapath components."""
        return (
            self.multiplier
            + self.carry_propagate_adder
            + self.carry_save_adder
            + self.bypass_muxes
            + self.register_data
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "multiplier": self.multiplier,
            "carry_propagate_adder": self.carry_propagate_adder,
            "carry_save_adder": self.carry_save_adder,
            "bypass_muxes": self.bypass_muxes,
            "register_data": self.register_data,
            "register_clock": self.register_clock,
            "leakage": self.leakage,
            "total": self.total_mw,
        }


@dataclass(frozen=True)
class PEEnergyBreakdown:
    """Average per-PE energy per clock cycle (pJ), split by component."""

    multiplier: float
    carry_propagate_adder: float
    carry_save_adder: float
    bypass_muxes: float
    register_data: float
    register_clock: float

    @property
    def total(self) -> float:
        return (
            self.multiplier
            + self.carry_propagate_adder
            + self.carry_save_adder
            + self.bypass_muxes
            + self.register_data
            + self.register_clock
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "multiplier": self.multiplier,
            "carry_propagate_adder": self.carry_propagate_adder,
            "carry_save_adder": self.carry_save_adder,
            "bypass_muxes": self.bypass_muxes,
            "register_data": self.register_data,
            "register_clock": self.register_clock,
            "total": self.total,
        }


class PowerModel:
    """Per-PE and per-array power for both accelerator variants."""

    #: Bypass multiplexer instances per ArrayFlex PE (one horizontal, two
    #: vertical -- sum and carry vectors of the carry-save pair).
    MUXES_PER_PE = 3

    def __init__(self, technology: TechnologyModel | None = None) -> None:
        self.technology = technology or TechnologyModel.default_28nm()
        self._area_model = AreaModel(self.technology)

    # ------------------------------------------------------------------ #
    # Per-PE energy per cycle
    # ------------------------------------------------------------------ #
    def conventional_pe_energy(self, activity: float = 1.0) -> PEEnergyBreakdown:
        """Energy per cycle of a conventional PE while streaming data.

        ``activity`` scales the datapath (multiplier, adder, register data)
        energy to model partially idle cycles; clock power is unaffected
        because the conventional array does not gate its pipeline
        registers while a tile is in flight.
        """
        self._check_activity(activity)
        tech = self.technology
        data_bits = tech.input_width + tech.accum_width
        clocked_bits = 2 * tech.input_width + tech.accum_width
        return PEEnergyBreakdown(
            multiplier=tech.e_mul_pj * activity,
            carry_propagate_adder=tech.e_add_pj * activity,
            carry_save_adder=0.0,
            bypass_muxes=0.0,
            register_data=tech.e_reg_bit_pj * data_bits * activity,
            register_clock=tech.e_clk_bit_pj * clocked_bits,
        )

    def arrayflex_pe_energy(
        self, collapse_depth: int, activity: float = 1.0
    ) -> PEEnergyBreakdown:
        """Average energy per cycle of an ArrayFlex PE in mode ``collapse_depth``.

        The figures are averaged over one collapsed group of k PEs: every
        PE's multiplier, carry-save adder and bypass multiplexers switch,
        but only one carry-propagate adder, one horizontal register and one
        vertical partial-sum register per group remain active; the bypassed
        registers are clock gated.
        """
        self._check_activity(activity)
        if collapse_depth < 1:
            raise ValueError("collapse depth must be >= 1")
        tech = self.technology
        k = collapse_depth

        multiplier = tech.e_mul_pj * activity
        carry_save = tech.e_csa_pj * activity
        muxes = self.MUXES_PER_PE * tech.e_mux_pj * activity
        carry_propagate = tech.e_add_pj * activity / k

        # One of every k horizontal (input-width) registers and one of every
        # k vertical (accumulator-width) registers stores data; the rest are
        # transparent.
        register_data = (
            tech.e_reg_bit_pj
            * (tech.input_width + tech.accum_width)
            * activity
            / k
        )

        # Clocked bits per PE: the stationary weight register plus the
        # non-bypassed share of the pipeline registers plus the two
        # configuration bits.  Bypassed registers are clock gated.
        clocked_bits = (
            tech.input_width
            + (tech.input_width + tech.accum_width) / k
            + AreaModel.CONFIG_BITS
        )
        register_clock = tech.e_clk_bit_pj * clocked_bits

        return PEEnergyBreakdown(
            multiplier=multiplier,
            carry_propagate_adder=carry_propagate,
            carry_save_adder=carry_save,
            bypass_muxes=muxes,
            register_data=register_data,
            register_clock=register_clock,
        )

    # ------------------------------------------------------------------ #
    # Leakage
    # ------------------------------------------------------------------ #
    def conventional_pe_leakage_mw(self) -> float:
        return self.technology.p_leak_pe_mw

    def arrayflex_pe_leakage_mw(self) -> float:
        """ArrayFlex leakage scales with its PE area overhead."""
        overhead = self._area_model.pe_area_overhead()
        return self.technology.p_leak_pe_mw * (1.0 + overhead)

    # ------------------------------------------------------------------ #
    # Array power
    # ------------------------------------------------------------------ #
    def conventional_array_power_mw(
        self,
        rows: int,
        cols: int,
        frequency_ghz: float,
        activity: float = 1.0,
    ) -> float:
        """Total power of a conventional R × C array at ``frequency_ghz``."""
        return self.conventional_array_power_breakdown(
            rows, cols, frequency_ghz, activity
        ).total_mw

    def arrayflex_array_power_mw(
        self,
        rows: int,
        cols: int,
        collapse_depth: int,
        frequency_ghz: float,
        activity: float = 1.0,
    ) -> float:
        """Total power of an ArrayFlex R × C array in one pipeline mode."""
        return self.arrayflex_array_power_breakdown(
            rows, cols, collapse_depth, frequency_ghz, activity
        ).total_mw

    def conventional_array_power_breakdown(
        self,
        rows: int,
        cols: int,
        frequency_ghz: float,
        activity: float = 1.0,
    ) -> ArrayPowerBreakdown:
        """Per-component power of a conventional R × C array (mW)."""
        self._check_array(rows, cols, frequency_ghz)
        pe = self.conventional_pe_energy(activity)
        return self._array_breakdown(
            rows, cols, frequency_ghz, pe, self.conventional_pe_leakage_mw()
        )

    def arrayflex_array_power_breakdown(
        self,
        rows: int,
        cols: int,
        collapse_depth: int,
        frequency_ghz: float,
        activity: float = 1.0,
    ) -> ArrayPowerBreakdown:
        """Per-component power of an ArrayFlex array in one pipeline mode (mW)."""
        self._check_array(rows, cols, frequency_ghz)
        pe = self.arrayflex_pe_energy(collapse_depth, activity)
        return self._array_breakdown(
            rows, cols, frequency_ghz, pe, self.arrayflex_pe_leakage_mw()
        )

    @staticmethod
    def _array_breakdown(
        rows: int,
        cols: int,
        frequency_ghz: float,
        pe: PEEnergyBreakdown,
        leakage_mw: float,
    ) -> ArrayPowerBreakdown:
        num_pes = rows * cols
        # total_mw keeps the historical ops order (sum the pJ, then scale)
        # so the breakdown path is bit-identical to the legacy scalar one.
        dynamic = pe.total * frequency_ghz  # pJ * GHz = mW
        return ArrayPowerBreakdown(
            multiplier=num_pes * (pe.multiplier * frequency_ghz),
            carry_propagate_adder=num_pes * (pe.carry_propagate_adder * frequency_ghz),
            carry_save_adder=num_pes * (pe.carry_save_adder * frequency_ghz),
            bypass_muxes=num_pes * (pe.bypass_muxes * frequency_ghz),
            register_data=num_pes * (pe.register_data * frequency_ghz),
            register_clock=num_pes * (pe.register_clock * frequency_ghz),
            leakage=num_pes * leakage_mw,
            total_mw=num_pes * (dynamic + leakage_mw),
        )

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_activity(activity: float) -> None:
        if not 0.0 <= activity <= 1.0:
            raise ValueError(f"activity must be within [0, 1], got {activity}")

    @staticmethod
    def _check_array(rows: int, cols: int, frequency_ghz: float) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        if frequency_ghz <= 0:
            raise ValueError("frequency must be positive")
