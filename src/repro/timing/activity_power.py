"""Activity-driven energy estimation from cycle-accurate simulation traces.

The analytical power model (:mod:`repro.timing.power_model`) assumes every
PE is busy every cycle and that exactly ``(k-1)/k`` of the pipeline
registers are clock gated.  Those assumptions are good for long, dense
GEMMs but ignore the fill/drain bubbles of each tile.

:class:`ActivityBasedPowerEstimator` instead consumes the activity counters
measured by the cycle-accurate simulator (:class:`repro.sim.stats.SimulationStats`):
multiply-accumulate operations actually performed, register-instance cycles
actually clocked versus gated, SRAM words moved and accumulator updates.
It is used to cross-validate the analytical model (the two agree closely
for well-utilised tiles) and to quantify how much the pipeline bubbles of
small tiles reduce effective power.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import SimulationStats
from repro.timing.technology import TechnologyModel


@dataclass(frozen=True)
class EnergyEstimate:
    """Energy breakdown of one simulated run (picojoules)."""

    datapath_pj: float
    register_data_pj: float
    register_clock_pj: float
    sram_pj: float
    accumulator_pj: float
    leakage_pj: float

    @property
    def core_pj(self) -> float:
        """Energy of the PE array only (what the paper's Fig. 9 reports)."""
        return (
            self.datapath_pj
            + self.register_data_pj
            + self.register_clock_pj
            + self.leakage_pj
        )

    @property
    def total_pj(self) -> float:
        return self.core_pj + self.sram_pj + self.accumulator_pj

    def average_power_mw(self, elapsed_ns: float, include_memories: bool = False) -> float:
        """Average power over ``elapsed_ns`` (pJ / ns = mW)."""
        if elapsed_ns <= 0:
            raise ValueError("elapsed time must be positive")
        energy = self.total_pj if include_memories else self.core_pj
        return energy / elapsed_ns


class ActivityBasedPowerEstimator:
    """Turns measured simulation activity into energy estimates."""

    def __init__(
        self,
        rows: int,
        cols: int,
        collapse_depth: int,
        technology: TechnologyModel | None = None,
        configurable: bool = True,
    ) -> None:
        if rows <= 0 or cols <= 0:
            raise ValueError("array dimensions must be positive")
        if collapse_depth < 1:
            raise ValueError("collapse depth must be >= 1")
        self.rows = rows
        self.cols = cols
        self.collapse_depth = collapse_depth
        self.configurable = configurable
        self.technology = technology or TechnologyModel.default_28nm()

    # ------------------------------------------------------------------ #
    def estimate(self, stats: SimulationStats, clock_period_ns: float) -> EnergyEstimate:
        """Energy of one run given its measured activity and the clock period."""
        if clock_period_ns <= 0:
            raise ValueError("clock period must be positive")
        tech = self.technology
        k = self.collapse_depth

        # Datapath: every counted MAC switches one multiplier; on ArrayFlex it
        # also switches the CSA and the bypass multiplexers, and one in k MACs
        # terminates a group and pays the carry-propagate adder.
        if self.configurable:
            per_mac = tech.e_mul_pj + tech.e_csa_pj + 3 * tech.e_mux_pj
            cpa_energy = stats.mac_operations / k * tech.e_add_pj
        else:
            per_mac = tech.e_mul_pj
            cpa_energy = stats.mac_operations * tech.e_add_pj
        datapath = stats.mac_operations * per_mac + cpa_energy

        # Pipeline registers: the simulator counts clocked/gated register
        # *instances* per cycle; half of the instances are horizontal
        # (input-width) and half vertical (accumulator-width).
        avg_bits = (tech.input_width + tech.accum_width) / 2.0
        register_clock = stats.clocked_register_cycles * avg_bits * tech.e_clk_bit_pj
        register_data = stats.clocked_register_cycles * avg_bits * tech.e_reg_bit_pj

        # The stationary weight registers are clocked (but not re-written)
        # every compute cycle in both designs, plus the configuration bits on
        # ArrayFlex.
        static_bits = tech.input_width + (2 if self.configurable else 0)
        register_clock += (
            stats.compute_cycles * self.rows * self.cols * static_bits * tech.e_clk_bit_pj
        )

        sram_bits = (stats.sram_reads + stats.sram_writes) * tech.input_width
        sram = sram_bits * tech.e_sram_bit_pj
        accumulator = stats.accumulator_updates * tech.e_accum_pj

        elapsed_ns = stats.total_cycles * clock_period_ns
        leakage = self.rows * self.cols * tech.p_leak_pe_mw * elapsed_ns

        return EnergyEstimate(
            datapath_pj=datapath,
            register_data_pj=register_data,
            register_clock_pj=register_clock,
            sram_pj=sram,
            accumulator_pj=accumulator,
            leakage_pj=leakage,
        )

    # ------------------------------------------------------------------ #
    def average_power_mw(
        self,
        stats: SimulationStats,
        clock_period_ns: float,
        include_memories: bool = False,
    ) -> float:
        """Convenience: energy estimate divided by the run's elapsed time."""
        estimate = self.estimate(stats, clock_period_ns)
        elapsed_ns = stats.total_cycles * clock_period_ns
        return estimate.average_power_mw(elapsed_ns, include_memories=include_memories)
