"""Technology, timing, area and power models.

The paper implements both the conventional systolic array and ArrayFlex in
SystemVerilog and signs them off with a Cadence 28 nm standard-cell flow.
This package is the Python substitute for that flow:

* :mod:`repro.timing.technology` -- the calibrated 28 nm parameter set
  (per-component delays, energies and areas, plus supply/clocking data).
* :mod:`repro.timing.delay_model` -- composition of the PE critical path
  and the clock-period model of Eq. (5), including the discrete operating
  points the paper reports (2.0 / 1.8 / 1.7 / 1.4 GHz).
* :mod:`repro.timing.sta` -- a small graph-based static-timing analyzer
  over a gate-level netlist of a collapsed pipeline block, including
  false-path exclusion for unused collapse depths.
* :mod:`repro.timing.area_model` -- per-PE and per-array area, reproducing
  the ~16% PE area overhead of Fig. 6.
* :mod:`repro.timing.power_model` -- per-mode dynamic, clock and leakage
  power with clock gating of bypassed registers.
"""

from repro.timing.technology import TechnologyModel
from repro.timing.delay_model import DelayModel, OperatingPoint
from repro.timing.area_model import AreaModel, PEAreaBreakdown
from repro.timing.power_model import PowerModel, PEEnergyBreakdown
from repro.timing.activity_power import ActivityBasedPowerEstimator, EnergyEstimate
from repro.timing.sta import PipelineBlockNetlist, StaticTimingAnalyzer

__all__ = [
    "TechnologyModel",
    "DelayModel",
    "OperatingPoint",
    "AreaModel",
    "PEAreaBreakdown",
    "PowerModel",
    "PEEnergyBreakdown",
    "ActivityBasedPowerEstimator",
    "EnergyEstimate",
    "PipelineBlockNetlist",
    "StaticTimingAnalyzer",
]
