"""The observability layer: tracing, metrics, and structured logging.

Three pillars, all stdlib-only, threaded through every layer of the
stack (daemon → service → backends → engine → store):

* :mod:`repro.obs.trace` — hierarchical spans with a no-op fast path,
  propagated across thread and process pools, exported as Chrome
  trace-event JSON (Perfetto-viewable; ``python -m repro trace``);
* :mod:`repro.obs.metrics` — one :class:`MetricsRegistry` of counters,
  gauges and log-bucketed histograms that every component's counters
  live on, merged by the daemon into a single ``/metrics`` read (JSON
  or Prometheus text);
* :mod:`repro.obs.logs` — JSON-lines structured logging with
  per-request correlation IDs (``X-Request-Id``).

See ``docs/observability.md`` for the span model and naming rules.
"""

from repro.obs.logs import (
    JsonFormatter,
    RequestIdFilter,
    bind_request_id,
    configure_logging,
    current_request_id,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import (
    Span,
    SpanContext,
    Tracer,
    call_with_context,
    configure_tracing,
    get_tracer,
    set_tracer,
)

__all__ = [
    # tracing
    "Span",
    "SpanContext",
    "Tracer",
    "call_with_context",
    "configure_tracing",
    "get_tracer",
    "set_tracer",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    # logging
    "JsonFormatter",
    "RequestIdFilter",
    "bind_request_id",
    "configure_logging",
    "current_request_id",
]
