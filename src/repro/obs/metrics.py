"""One metrics registry for the whole stack.

Counters, gauges and bucketed histograms live as *instruments* inside a
:class:`MetricsRegistry`.  Each component (daemon middleware, scheduling
service, cached backends, decision store) owns instruments in its own
registry; the daemon :meth:`~MetricsRegistry.attach`\\ es those child
registries to one root, so ``/metrics`` — JSON or Prometheus text — is a
single merged read with no component knowing about any other.

Instruments are keyed by ``(name, sorted(labels))``; getting an existing
key returns the same instrument, so call sites never pre-register.
Everything is picklable (the cached backends ship to process-pool
workers): locks are dropped and re-created, and attached child
registries are *not* carried along — the pickle is the owner's own
instruments only.

Design constraints inherited from the pre-registry stores this replaces
(``DaemonMetrics`` dicts, ``ServiceStats`` ints, backend ``_hits``
counters): increments must stay cheap (one lock, one add) and the legacy
snapshot shapes must be reconstructible bit-identically — see each
component's ``snapshot()``/``stats()``/``counters()``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    def reset(self) -> None:
        """Zero the counter (cache-clear semantics of the legacy stores)."""
        with self._lock:
            self._value = 0

    @property
    def value(self):
        return self._value

    def __getstate__(self) -> dict:
        return {"name": self.name, "labels": self.labels, "value": self._value}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.labels = state["labels"]
        self._value = state["value"]
        self._lock = threading.Lock()


class Gauge:
    """A value that goes up and down (set-only; no callback form).

    Callback gauges would capture their owner in a closure and break the
    picklability the process-pool backends rely on, so gauges here are
    plain set/add cells and "live" values are set at read time by the
    owner (e.g. the daemon sets ``inflight`` when building a payload).
    """

    __slots__ = ("name", "labels", "_value", "_lock")

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def __getstate__(self) -> dict:
        return {"name": self.name, "labels": self.labels, "value": self._value}

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.labels = state["labels"]
        self._value = state["value"]
        self._lock = threading.Lock()


#: The latency buckets the daemon has always exposed (ms, roughly
#: log-spaced).  Kept as the registry default so migrated histograms are
#: bit-identical to the pre-registry ``LatencyHistogram``.
DEFAULT_BUCKETS_MS = (
    0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
)


class Histogram:
    """A log-bucketed histogram (counts per upper-edge, plus sum/count).

    Generalises the daemon's ``LatencyHistogram``: same cumulative
    ``buckets_le`` read shape, arbitrary bucket edges.
    """

    __slots__ = ("name", "labels", "buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, name: str, labels: dict, buckets=DEFAULT_BUCKETS_MS) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative(self) -> dict:
        """Cumulative ``{edge: count_le_edge, "+Inf": total}`` mapping."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
        out: dict = {}
        running = 0
        for edge, count in zip(self.buckets, counts):
            running += count
            out[edge] = running
        out["+Inf"] = total
        return out

    def __getstate__(self) -> dict:
        return {
            "name": self.name,
            "labels": self.labels,
            "buckets": self.buckets,
            "counts": list(self._counts),
            "sum": self._sum,
            "count": self._count,
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self.labels = state["labels"]
        self.buckets = state["buckets"]
        self._counts = state["counts"]
        self._sum = state["sum"]
        self._count = state["count"]
        self._lock = threading.Lock()


class MetricsRegistry:
    """Get-or-create home of instruments, mergeable into a root registry."""

    def __init__(self) -> None:
        self._instruments: dict = {}
        self._children: list[MetricsRegistry] = []
        self._lock = threading.Lock()

    # -------------------------------------------------------------- #
    # Instrument access (get-or-create)
    # -------------------------------------------------------------- #
    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, buckets=DEFAULT_BUCKETS_MS, **labels) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = Histogram(name, labels, buckets)
                self._instruments[key] = instrument
            return instrument

    def _get(self, cls, name: str, labels: dict):
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._instruments.get(key)
            if instrument is None:
                instrument = cls(name, labels)
                self._instruments[key] = instrument
            return instrument

    # -------------------------------------------------------------- #
    # Composition and reads
    # -------------------------------------------------------------- #
    def attach(self, child: "MetricsRegistry") -> "MetricsRegistry":
        """Merge ``child``'s instruments into this registry's reads."""
        with self._lock:
            if child is not self and child not in self._children:
                self._children.append(child)
        return child

    def collect(self) -> list:
        """Every instrument, own then attached, in registration order."""
        with self._lock:
            instruments = list(self._instruments.values())
            children = list(self._children)
        for child in children:
            instruments.extend(child.collect())
        return instruments

    def family(self, name: str) -> list:
        """Every instrument of one metric name (across labels/children)."""
        return [inst for inst in self.collect() if inst.name == name]

    def to_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4) of every instrument."""
        by_name: dict = {}
        for inst in self.collect():
            by_name.setdefault(inst.name, []).append(inst)
        lines = []
        for name in sorted(by_name):
            kind = by_name[name][0]
            if isinstance(kind, Histogram):
                lines.append(f"# TYPE {name} histogram")
            elif isinstance(kind, Gauge):
                lines.append(f"# TYPE {name} gauge")
            else:
                lines.append(f"# TYPE {name} counter")
            for inst in by_name[name]:
                if isinstance(inst, Histogram):
                    for edge, count in inst.cumulative().items():
                        le = "+Inf" if edge == "+Inf" else _format_value(edge)
                        labels = _prom_labels({**inst.labels, "le": le})
                        lines.append(f"{name}_bucket{labels} {count}")
                    labels = _prom_labels(inst.labels)
                    lines.append(f"{name}_sum{labels} {_format_value(inst.sum)}")
                    lines.append(f"{name}_count{labels} {inst.count}")
                else:
                    labels = _prom_labels(inst.labels)
                    lines.append(f"{name}{labels} {_format_value(inst.value)}")
        return "\n".join(lines) + "\n"

    def __getstate__(self) -> dict:
        # Child registries stay with their owners; a pickled registry
        # carries only the instruments it directly owns.
        with self._lock:
            return {"instruments": dict(self._instruments)}

    def __setstate__(self, state: dict) -> None:
        self._instruments = state["instruments"]
        self._children = []
        self._lock = threading.Lock()


def _prom_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return str(value)
