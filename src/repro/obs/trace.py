"""Hierarchical tracing with a no-op fast path and Chrome-trace export.

One process-local :class:`Tracer` owns every span of a process.  Spans
are context-managed and nest through a :mod:`contextvars` variable, so
the hierarchy follows the logical flow of a request — including across
the thread pools of :class:`~repro.serve.service.SchedulingService`
(``contextvars`` propagate automatically through
``contextvars.copy_context``) and across its *process* pools, where a
picklable :class:`SpanContext` ships with the task and the worker's
spans come back in the result for re-parenting (see
:func:`call_with_context`).

The disabled path is the default and must cost (almost) nothing: every
instrumentation site calls ``tracer.span(...)`` which, when disabled,
returns one shared pre-built null span whose ``__enter__``/``__exit__``
do nothing and whose attribute hooks are no-ops.  The overhead budget is
pinned by ``benchmarks/test_bench_obs.py``.

Export is Chrome trace-event JSON (the ``traceEvents`` array of ``"X"``
complete events), directly loadable in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
import uuid
from contextvars import ContextVar
from dataclasses import dataclass, field

__all__ = [
    "Span",
    "SpanContext",
    "Tracer",
    "call_with_context",
    "configure_tracing",
    "get_tracer",
    "set_tracer",
]

#: The ambient span of the current logical context: ``(trace_id,
#: span_id)`` of the innermost open span, or ``None`` at top level.
#: A ``ContextVar`` (not a thread-local) so thread-pool tasks submitted
#: through ``contextvars.copy_context`` inherit their submitter's span.
_CURRENT: ContextVar[tuple[str, int] | None] = ContextVar("repro_obs_span", default=None)


def _new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span, for cross-process propagation.

    Ship one of these with a process-pool task; the worker opens its
    spans under it (see :func:`call_with_context`) and the returned
    spans slot under the submitting span when merged back.
    """

    trace_id: str
    span_id: int


@dataclass
class Span:
    """One finished-or-open span.  Plain data; picklable by design."""

    name: str
    trace_id: str
    span_id: int
    parent_id: int | None
    start_us: int
    duration_us: int = 0
    pid: int = 0
    tid: int = 0
    attributes: dict = field(default_factory=dict)

    def set(self, **attributes) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attributes.update(attributes)
        return self

    def context(self) -> SpanContext:
        """This span's picklable identity (for process-pool tasks)."""
        return SpanContext(self.trace_id, self.span_id)


class _ActiveSpan:
    """Context manager recording one span on a tracer."""

    __slots__ = ("_tracer", "_span", "_token", "_t0")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span
        self._token = None
        self._t0 = 0.0

    def __enter__(self) -> Span:
        self._token = _CURRENT.set((self._span.trace_id, self._span.span_id))
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._t0
        self._span.duration_us = max(int(elapsed * 1e6), 1)
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _CURRENT.reset(self._token)
        self._tracer._record(self._span)


class _NullSpan:
    """The disabled path: one shared span-shaped object that does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set(self, **attributes) -> "_NullSpan":
        return self

    def context(self) -> None:
        return None


_NULL = _NullSpan()


class Tracer:
    """Process-local span recorder with a no-op fast path when disabled.

    ``span()`` is the single instrumentation entry point; finished spans
    accumulate until :meth:`drain` or an export.  The tracer never grows
    without bound: ``max_spans`` caps the buffer (oldest kept — the
    request that enabled tracing usually wants its *own* head, and a cap
    hit is recorded in :attr:`dropped`).
    """

    def __init__(self, enabled: bool = False, max_spans: int = 100_000) -> None:
        self.enabled = enabled
        self.max_spans = max_spans
        self.dropped = 0
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        # Span ids count up from a random 30-bit prefix, so the ids of
        # spans recorded by a pool worker's local tracer cannot collide
        # with the submitting process's when merged via :meth:`extend`.
        self._ids = itertools.count((uuid.uuid4().int & ((1 << 30) - 1)) << 32)

    # -------------------------------------------------------------- #
    # Recording
    # -------------------------------------------------------------- #
    def span(self, name: str, trace_id: str | None = None, **attributes):
        """Open a span under the ambient parent (context-managed).

        Disabled tracers return a shared no-op span — the fast path is
        one attribute check and no allocation.  ``trace_id`` pins a new
        trace identity (the daemon passes the request ID); otherwise the
        span joins the ambient trace or starts a fresh one.
        """
        if not self.enabled:
            return _NULL
        ambient = _CURRENT.get()
        if trace_id is None:
            if ambient is not None:
                trace_id, parent_id = ambient
            else:
                trace_id, parent_id = _new_trace_id(), None
        else:
            parent_id = ambient[1] if ambient is not None and ambient[0] == trace_id else None
        with self._lock:
            span_id = next(self._ids)
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start_us=time.time_ns() // 1_000,
            pid=os.getpid(),
            tid=threading.get_ident(),
            attributes=dict(attributes),
        )
        return _ActiveSpan(self, span)

    def current_context(self) -> SpanContext | None:
        """The ambient span's picklable identity (None when outside/off)."""
        if not self.enabled:
            return None
        ambient = _CURRENT.get()
        if ambient is None:
            return None
        return SpanContext(*ambient)

    def _record(self, span: Span) -> None:
        with self._lock:
            if len(self._spans) >= self.max_spans:
                self.dropped += 1
                return
            self._spans.append(span)

    def extend(self, spans: list[Span]) -> None:
        """Adopt spans recorded elsewhere (a process-pool worker)."""
        if not spans:
            return
        with self._lock:
            room = self.max_spans - len(self._spans)
            if room < len(spans):
                self.dropped += len(spans) - max(room, 0)
                spans = spans[: max(room, 0)]
            self._spans.extend(spans)

    # -------------------------------------------------------------- #
    # Reading / export
    # -------------------------------------------------------------- #
    def spans(self) -> list[Span]:
        """A snapshot of the recorded spans (oldest first)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> list[Span]:
        """Remove and return every recorded span."""
        with self._lock:
            spans, self._spans = self._spans, []
            return spans

    def clear(self) -> None:
        with self._lock:
            self._spans = []
            self.dropped = 0

    def chrome_trace(self, spans: list[Span] | None = None) -> dict:
        """The spans as a Chrome trace-event JSON object (Perfetto-viewable)."""
        events = []
        for span in self.spans() if spans is None else spans:
            args = dict(span.attributes)
            args["trace_id"] = span.trace_id
            args["span_id"] = span.span_id
            if span.parent_id is not None:
                args["parent_id"] = span.parent_id
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start_us,
                    "dur": span.duration_us,
                    "pid": span.pid,
                    "tid": span.tid,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def export_chrome(self, path, spans: list[Span] | None = None) -> int:
        """Write :meth:`chrome_trace` to ``path``; returns the event count."""
        payload = self.chrome_trace(spans)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        return len(payload["traceEvents"])


def call_with_context(context: SpanContext | None, fn, /, *args, **kwargs):
    """Run ``fn`` in a process-pool worker under a shipped span context.

    Installs a fresh *enabled* tracer as the worker-global tracer for
    the duration of the call (pool workers execute tasks serially, so
    the swap cannot interleave), seeds the ambient span from
    ``context``, and returns ``(result, spans)`` — the submitting side
    re-parents the spans via :meth:`Tracer.extend`.
    """
    local = Tracer(enabled=True)
    previous = set_tracer(local)
    token = _CURRENT.set((context.trace_id, context.span_id) if context else None)
    try:
        result = fn(*args, **kwargs)
    finally:
        _CURRENT.reset(token)
        set_tracer(previous)
    return result, local.drain()


# ------------------------------------------------------------------ #
# The process-global tracer
# ------------------------------------------------------------------ #
_TRACER = Tracer(enabled=os.environ.get("REPRO_TRACE", "") not in ("", "0", "false"))


def get_tracer() -> Tracer:
    """The process-global tracer every instrumentation site records to."""
    return _TRACER


def set_tracer(tracer: Tracer) -> Tracer:
    """Swap the process-global tracer; returns the previous one."""
    global _TRACER
    previous, _TRACER = _TRACER, tracer
    return previous


def configure_tracing(enabled: bool = True, max_spans: int = 100_000) -> Tracer:
    """Enable (or disable) tracing on the process-global tracer."""
    _TRACER.enabled = enabled
    _TRACER.max_spans = max_spans
    return _TRACER
