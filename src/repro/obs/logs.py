"""Structured (JSON-lines) logging with per-request correlation IDs.

The third observability pillar: every log record under the ``repro``
logger can carry the request ID of the daemon request being served.  The
ID lives in a :mod:`contextvars` variable — :func:`bind_request_id` is a
context manager the daemon wraps around request handling, and
:class:`RequestIdFilter` stamps the ambient value onto every record that
passes through, whatever the formatter.

:func:`configure_logging` is the one place handlers are created.  It is
idempotent (re-running reconfigures the same handler instead of stacking
duplicates) and scoped to the ``repro`` logger — library users who
configure logging themselves are never touched.
"""

from __future__ import annotations

import contextlib
import json
import logging
import sys
import time
from contextvars import ContextVar

__all__ = [
    "JsonFormatter",
    "RequestIdFilter",
    "bind_request_id",
    "configure_logging",
    "current_request_id",
]

_REQUEST_ID: ContextVar[str | None] = ContextVar("repro_request_id", default=None)

#: Marker attribute of the handler :func:`configure_logging` owns, so
#: reconfiguration replaces it instead of stacking a duplicate.
_HANDLER_MARK = "_repro_obs_handler"


def current_request_id() -> str | None:
    """The ambient request ID (None outside a daemon request)."""
    return _REQUEST_ID.get()


@contextlib.contextmanager
def bind_request_id(request_id: str):
    """Bind the ambient request ID for the duration of the block."""
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)


class RequestIdFilter(logging.Filter):
    """Stamps the ambient request ID onto every record (or None)."""

    def filter(self, record: logging.LogRecord) -> bool:
        if not hasattr(record, "request_id"):
            record.request_id = _REQUEST_ID.get()
        return True


class JsonFormatter(logging.Formatter):
    """One JSON object per line: ts, level, logger, message, request_id.

    Extra attributes attached via ``logger.debug(..., extra={...})`` are
    merged in (non-serialisable values fall back to ``repr``), so the
    daemon's access log carries method/path/status/duration as fields.
    """

    _RESERVED = frozenset(
        logging.LogRecord("", 0, "", 0, "", (), None).__dict__
    ) | {"request_id", "message", "asctime", "taskName"}

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(time.time(), 6) if record.created is None else round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        request_id = getattr(record, "request_id", None) or _REQUEST_ID.get()
        if request_id is not None:
            payload["request_id"] = request_id
        for key, value in record.__dict__.items():
            if key in self._RESERVED or key.startswith("_"):
                continue
            payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        try:
            return json.dumps(payload)
        except (TypeError, ValueError):
            safe = {key: repr(value) for key, value in payload.items()}
            return json.dumps(safe)


def configure_logging(
    level: int | str | None = None,
    json_lines: bool = False,
    stream=None,
) -> logging.Logger:
    """Configure the root ``repro`` logger exactly once (idempotent).

    ``level`` accepts a logging constant or name (default ``WARNING``
    on first call; subsequent calls without a level keep the current
    one).  ``json_lines`` selects the :class:`JsonFormatter`; the plain
    format still carries the request ID when one is bound.
    """
    logger = logging.getLogger("repro")
    if level is not None:
        if isinstance(level, str):
            level = logging.getLevelName(level.upper())
            if not isinstance(level, int):
                raise ValueError(f"unknown log level: {level!r}")
        logger.setLevel(level)
    elif logger.level == logging.NOTSET:
        logger.setLevel(logging.WARNING)

    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    setattr(handler, _HANDLER_MARK, True)
    if json_lines:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s [%(request_id)s] %(message)s")
        )
    handler.addFilter(RequestIdFilter())

    for existing in list(logger.handlers):
        if getattr(existing, _HANDLER_MARK, False):
            logger.removeHandler(existing)
            existing.close()
    logger.addHandler(handler)
    logger.propagate = False
    return logger
