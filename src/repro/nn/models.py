"""Layer tables of the CNNs evaluated in the paper.

Three models are provided, matching Section IV of the paper:

* :func:`resnet34` -- ResNet-34 [He et al., CVPR 2016], the plain residual
  trunk: the 7x7 stem plus the 32 3x3 convolutions of the four stages and
  the classifier.  The paper numbers layers 1..34 in exactly this order;
  the quoted GEMM shapes of layer 20, (M, N, T) = (256, 2304, 196), and of
  layer 28, (512, 2304, 49), fall out of this table.
* :func:`mobilenet_v1` -- MobileNetV1 [Howard et al., 2017]: the 3x3 stem,
  13 depthwise-separable blocks and the classifier (28 layers).
* :func:`convnext_tiny` -- ConvNeXt-T [Liu et al., CVPR 2022]: 4x4 stem,
  stages of depths (3, 3, 9, 3) with dims (96, 192, 384, 768), three
  2x2 downsampling convolutions and the classifier.

The projection (1x1 downsample) shortcuts of ResNet-34 and all
normalisation / activation / pooling layers are omitted -- they either do
not lower to GEMMs or contribute negligibly, and the paper's layer
numbering confirms they were not counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.nn.gemm_mapping import GemmShape, model_to_gemms
from repro.nn.layers import Conv2dLayer, Layer, LinearLayer


@dataclass(frozen=True)
class CnnModel:
    """A named, ordered list of layer descriptors."""

    name: str
    input_resolution: int
    layers: tuple[Layer, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"model {self.name!r} has no layers")

    # ------------------------------------------------------------------ #
    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def layer(self, index: int) -> Layer:
        """Layer by 1-based index (the paper's numbering convention)."""
        if not 1 <= index <= self.num_layers:
            raise IndexError(
                f"layer index {index} outside [1, {self.num_layers}] for {self.name}"
            )
        return self.layers[index - 1]

    def gemms(self) -> list[GemmShape]:
        """The ordered GEMM shapes of every layer.

        The lowering is pure in the (immutable) layer table, so it runs
        once per model instance; callers get a fresh list over the shared
        frozen shapes each time.
        """
        cached = getattr(self, "_gemms_cache", None)
        if cached is None:
            cached = tuple(model_to_gemms(list(self.layers)))
            object.__setattr__(self, "_gemms_cache", cached)
        return list(cached)

    def gemm(self, index: int) -> GemmShape:
        """GEMM shape of a layer by 1-based index."""
        return self.gemms()[index - 1]

    @property
    def total_macs(self) -> int:
        return sum(shape.macs for shape in self.gemms())


# ---------------------------------------------------------------------- #
# ResNet-34
# ---------------------------------------------------------------------- #
def resnet34(input_resolution: int = 224) -> CnnModel:
    """ResNet-34 layer table (stem + 32 stage convolutions + classifier)."""
    layers: list[Layer] = []
    layers.append(
        Conv2dLayer(
            name="conv1",
            in_channels=3,
            out_channels=64,
            kernel_size=7,
            stride=2,
            padding=3,
            input_height=input_resolution,
            input_width=input_resolution,
        )
    )
    # Max pooling halves the resolution before stage conv2_x.
    resolution = input_resolution // 4
    stage_specs = [
        ("conv2", 64, 64, 6, 1),
        ("conv3", 64, 128, 8, 2),
        ("conv4", 128, 256, 12, 2),
        ("conv5", 256, 512, 6, 2),
    ]
    for stage_name, in_ch, out_ch, num_convs, first_stride in stage_specs:
        for i in range(num_convs):
            stride = first_stride if i == 0 else 1
            cin = in_ch if i == 0 else out_ch
            layers.append(
                Conv2dLayer(
                    name=f"{stage_name}_{i + 1}",
                    in_channels=cin,
                    out_channels=out_ch,
                    kernel_size=3,
                    stride=stride,
                    padding=1,
                    input_height=resolution,
                    input_width=resolution,
                )
            )
            if i == 0 and first_stride == 2:
                resolution //= 2
    layers.append(LinearLayer(name="fc", in_features=512, out_features=1000))
    return CnnModel(name="ResNet-34", input_resolution=input_resolution, layers=tuple(layers))


# ---------------------------------------------------------------------- #
# MobileNetV1
# ---------------------------------------------------------------------- #
def mobilenet_v1(input_resolution: int = 224) -> CnnModel:
    """MobileNetV1 layer table (stem + 13 depthwise-separable blocks + fc)."""
    layers: list[Layer] = []
    resolution = input_resolution // 2
    layers.append(
        Conv2dLayer(
            name="conv1",
            in_channels=3,
            out_channels=32,
            kernel_size=3,
            stride=2,
            padding=1,
            input_height=input_resolution,
            input_width=input_resolution,
        )
    )
    # (input channels, output channels of the pointwise conv, depthwise stride)
    block_specs = [
        (32, 64, 1),
        (64, 128, 2),
        (128, 128, 1),
        (128, 256, 2),
        (256, 256, 1),
        (256, 512, 2),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 512, 1),
        (512, 1024, 2),
        (1024, 1024, 1),
    ]
    for index, (in_ch, out_ch, stride) in enumerate(block_specs, start=1):
        layers.append(
            Conv2dLayer(
                name=f"dw{index}",
                in_channels=in_ch,
                out_channels=in_ch,
                kernel_size=3,
                stride=stride,
                padding=1,
                input_height=resolution,
                input_width=resolution,
                groups=in_ch,
            )
        )
        if stride == 2:
            resolution //= 2
        layers.append(
            Conv2dLayer(
                name=f"pw{index}",
                in_channels=in_ch,
                out_channels=out_ch,
                kernel_size=1,
                stride=1,
                padding=0,
                input_height=resolution,
                input_width=resolution,
            )
        )
    layers.append(LinearLayer(name="fc", in_features=1024, out_features=1000))
    return CnnModel(
        name="MobileNetV1", input_resolution=input_resolution, layers=tuple(layers)
    )


# ---------------------------------------------------------------------- #
# ConvNeXt-Tiny
# ---------------------------------------------------------------------- #
def convnext_tiny(input_resolution: int = 224) -> CnnModel:
    """ConvNeXt-T layer table (stem, 4 stages of ConvNeXt blocks, classifier)."""
    layers: list[Layer] = []
    dims = (96, 192, 384, 768)
    depths = (3, 3, 9, 3)
    expansion = 4

    resolution = input_resolution // 4
    layers.append(
        Conv2dLayer(
            name="stem",
            in_channels=3,
            out_channels=dims[0],
            kernel_size=4,
            stride=4,
            padding=0,
            input_height=input_resolution,
            input_width=input_resolution,
        )
    )
    for stage_index, (dim, depth) in enumerate(zip(dims, depths), start=1):
        if stage_index > 1:
            layers.append(
                Conv2dLayer(
                    name=f"downsample{stage_index - 1}",
                    in_channels=dims[stage_index - 2],
                    out_channels=dim,
                    kernel_size=2,
                    stride=2,
                    padding=0,
                    input_height=resolution,
                    input_width=resolution,
                )
            )
            resolution //= 2
        for block in range(1, depth + 1):
            prefix = f"stage{stage_index}_block{block}"
            layers.append(
                Conv2dLayer(
                    name=f"{prefix}_dwconv",
                    in_channels=dim,
                    out_channels=dim,
                    kernel_size=7,
                    stride=1,
                    padding=3,
                    input_height=resolution,
                    input_width=resolution,
                    groups=dim,
                )
            )
            layers.append(
                Conv2dLayer(
                    name=f"{prefix}_pwconv1",
                    in_channels=dim,
                    out_channels=dim * expansion,
                    kernel_size=1,
                    stride=1,
                    padding=0,
                    input_height=resolution,
                    input_width=resolution,
                )
            )
            layers.append(
                Conv2dLayer(
                    name=f"{prefix}_pwconv2",
                    in_channels=dim * expansion,
                    out_channels=dim,
                    kernel_size=1,
                    stride=1,
                    padding=0,
                    input_height=resolution,
                    input_width=resolution,
                )
            )
    layers.append(LinearLayer(name="head", in_features=dims[-1], out_features=1000))
    return CnnModel(
        name="ConvNeXt-T", input_resolution=input_resolution, layers=tuple(layers)
    )


# ---------------------------------------------------------------------- #
# Additional workloads (not evaluated in the paper, provided for users who
# want to study ArrayFlex on other popular CNN shapes)
# ---------------------------------------------------------------------- #
def resnet50(input_resolution: int = 224) -> CnnModel:
    """ResNet-50 bottleneck trunk (1x1 / 3x3 / 1x1 blocks), without the
    projection shortcuts, plus the classifier."""
    layers: list[Layer] = []
    layers.append(
        Conv2dLayer(
            name="conv1",
            in_channels=3,
            out_channels=64,
            kernel_size=7,
            stride=2,
            padding=3,
            input_height=input_resolution,
            input_width=input_resolution,
        )
    )
    resolution = input_resolution // 4
    stage_specs = [
        ("conv2", 64, 64, 3, 1),
        ("conv3", 256, 128, 4, 2),
        ("conv4", 512, 256, 6, 2),
        ("conv5", 1024, 512, 3, 2),
    ]
    for stage_name, in_ch, mid_ch, num_blocks, first_stride in stage_specs:
        for block in range(num_blocks):
            stride = first_stride if block == 0 else 1
            block_in = in_ch if block == 0 else 4 * mid_ch
            prefix = f"{stage_name}_block{block + 1}"
            layers.append(
                Conv2dLayer(
                    name=f"{prefix}_reduce",
                    in_channels=block_in,
                    out_channels=mid_ch,
                    kernel_size=1,
                    stride=1,
                    padding=0,
                    input_height=resolution,
                    input_width=resolution,
                )
            )
            layers.append(
                Conv2dLayer(
                    name=f"{prefix}_conv3x3",
                    in_channels=mid_ch,
                    out_channels=mid_ch,
                    kernel_size=3,
                    stride=stride,
                    padding=1,
                    input_height=resolution,
                    input_width=resolution,
                )
            )
            if stride == 2:
                resolution //= 2
            layers.append(
                Conv2dLayer(
                    name=f"{prefix}_expand",
                    in_channels=mid_ch,
                    out_channels=4 * mid_ch,
                    kernel_size=1,
                    stride=1,
                    padding=0,
                    input_height=resolution,
                    input_width=resolution,
                )
            )
    layers.append(LinearLayer(name="fc", in_features=2048, out_features=1000))
    return CnnModel(name="ResNet-50", input_resolution=input_resolution, layers=tuple(layers))


def vgg16(input_resolution: int = 224) -> CnnModel:
    """VGG-16: thirteen 3x3 convolutions plus the three-layer classifier.

    A classic large-T workload: every convolution keeps a big spatial
    resolution, so the per-layer optimizer mostly stays in normal pipeline
    mode -- a useful stress case for the mode-selection logic.
    """
    layers: list[Layer] = []
    resolution = input_resolution
    in_ch = 3
    # (output channels, convolutions per stage)
    stage_specs = [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)]
    for stage_index, (out_ch, num_convs) in enumerate(stage_specs, start=1):
        for conv in range(1, num_convs + 1):
            layers.append(
                Conv2dLayer(
                    name=f"conv{stage_index}_{conv}",
                    in_channels=in_ch,
                    out_channels=out_ch,
                    kernel_size=3,
                    stride=1,
                    padding=1,
                    input_height=resolution,
                    input_width=resolution,
                )
            )
            in_ch = out_ch
        resolution //= 2  # max pooling after every stage
    layers.append(
        LinearLayer(name="fc6", in_features=512 * resolution * resolution, out_features=4096)
    )
    layers.append(LinearLayer(name="fc7", in_features=4096, out_features=4096))
    layers.append(LinearLayer(name="fc8", in_features=4096, out_features=1000))
    return CnnModel(name="VGG-16", input_resolution=input_resolution, layers=tuple(layers))


# ---------------------------------------------------------------------- #
def model_zoo(input_resolution: int = 224) -> dict[str, CnnModel]:
    """The three CNNs of the paper's evaluation, keyed by name."""
    models = [
        resnet34(input_resolution),
        mobilenet_v1(input_resolution),
        convnext_tiny(input_resolution),
    ]
    return {model.name: model for model in models}


def extended_model_zoo(input_resolution: int = 224) -> dict[str, CnnModel]:
    """The paper's three CNNs plus ResNet-50 and VGG-16."""
    models = dict(model_zoo(input_resolution))
    for model in (resnet50(input_resolution), vgg16(input_resolution)):
        models[model.name] = model
    return models
