"""Lowering CNN layers to GEMM dimensions (paper Section II).

A convolution layer is computed on the systolic array as the matrix
multiplication ``X[T, M] = A[T, N] x B[N, M]`` obtained by im2col lowering:

* ``M``  -- number of output channels (one column of B per kernel);
* ``N``  -- kernel volume, ``K * K * Cin / groups`` (one row of B per input
  of the dot product);
* ``T``  -- number of output pixels, ``Hout * Wout`` (one row of A per
  output location; single-batch inference as in the paper).

With the weight-stationary dataflow, B (the kernels) is preloaded into the
array (N maps to the R rows, M to the C columns) and A (the im2col'd input
features) is streamed (T rows).  This mapping reproduces the paper's quoted
shapes: ResNet-34 layer 20 -> (M, N, T) = (256, 2304, 196) and layer 28 ->
(512, 2304, 49).

Depthwise convolutions do not lower to a single dense GEMM (each output
channel only reads its own input channel).  Following the usual
SCALE-Sim-style approximation, a depthwise layer is mapped with
``N = K * K`` (``Cin = 1`` per group) and ``M = Cout``; the approximation
affects array utilisation, not the dataflow, and is documented in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn.layers import Conv2dLayer, Layer, LayerKind, LinearLayer


@dataclass(frozen=True)
class GemmShape:
    """The (M, N, T) dimensions of one lowered layer.

    ``m``: columns of B (output channels), mapped to the array columns C.
    ``n``: rows of B / columns of A (reduction dimension), mapped to the
    array rows R.
    ``t``: rows of A streamed through the array.
    """

    m: int
    n: int
    t: int
    name: str = ""
    kind: LayerKind = LayerKind.CONV

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.t) <= 0:
            raise ValueError(f"GEMM {self.name!r}: dimensions must be positive")

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the dense GEMM."""
        return self.m * self.n * self.t

    def as_tuple(self) -> tuple[int, int, int]:
        return (self.m, self.n, self.t)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name or 'gemm'}: (M={self.m}, N={self.n}, T={self.t})"


def conv_to_gemm(layer: Conv2dLayer) -> GemmShape:
    """Lower a convolution layer (standard, depthwise or pointwise)."""
    kernel_volume = layer.kernel_size * layer.kernel_size * layer.channels_per_group
    return GemmShape(
        m=layer.out_channels,
        n=kernel_volume,
        t=layer.output_pixels,
        name=layer.name,
        kind=layer.kind,
    )


def linear_to_gemm(layer: LinearLayer) -> GemmShape:
    """Lower a fully-connected layer."""
    return GemmShape(
        m=layer.out_features,
        n=layer.in_features,
        t=layer.tokens,
        name=layer.name,
        kind=LayerKind.LINEAR,
    )


def layer_to_gemm(layer: Layer) -> GemmShape:
    """Lower any supported layer descriptor to its GEMM shape."""
    if isinstance(layer, Conv2dLayer):
        return conv_to_gemm(layer)
    if isinstance(layer, LinearLayer):
        return linear_to_gemm(layer)
    raise TypeError(f"unsupported layer type: {type(layer).__name__}")


def model_to_gemms(layers: list[Layer]) -> list[GemmShape]:
    """Lower a whole model (list of layer descriptors) in order."""
    return [layer_to_gemm(layer) for layer in layers]
