"""Functional im2col lowering of convolutions to GEMM operands.

:mod:`repro.nn.gemm_mapping` computes only the GEMM *dimensions* of each
layer (all the latency/power models need).  This module provides the
matching *functional* lowering: given a real input tensor and real weights
it builds the A (im2col'd activations) and B (reshaped kernels) matrices
whose product equals the convolution output, in the exact layout the
weight-stationary array consumes:

* ``A`` has shape (T, N) with T = Hout * Wout rows (one per output pixel)
  and N = K * K * Cin columns;
* ``B`` has shape (N, M) with one column per output channel;
* ``A @ B`` reshaped to (Cout, Hout, Wout) equals the convolution.

Together with :mod:`repro.sim`, this closes the loop of the paper's
Section II: a quantized convolution layer can be executed bit-exactly on
the cycle-accurate ArrayFlex model and verified against a direct
convolution reference.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2dLayer


def _check_input(layer: Conv2dLayer, input_tensor: np.ndarray) -> np.ndarray:
    input_tensor = np.asarray(input_tensor)
    if input_tensor.ndim != 3:
        raise ValueError(
            "input tensor must have shape (channels, height, width); "
            f"got {input_tensor.shape}"
        )
    channels, height, width = input_tensor.shape
    if channels != layer.in_channels:
        raise ValueError(
            f"layer {layer.name!r} expects {layer.in_channels} input channels, "
            f"got {channels}"
        )
    if height != layer.input_height or width != layer.input_width:
        raise ValueError(
            f"layer {layer.name!r} expects a {layer.input_height}x{layer.input_width} "
            f"input, got {height}x{width}"
        )
    return input_tensor


def _check_weights(layer: Conv2dLayer, weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights)
    expected = (
        layer.out_channels,
        layer.channels_per_group,
        layer.kernel_size,
        layer.kernel_size,
    )
    if weights.shape != expected:
        raise ValueError(
            f"layer {layer.name!r} expects weights of shape {expected}, "
            f"got {weights.shape}"
        )
    return weights


def pad_input(layer: Conv2dLayer, input_tensor: np.ndarray) -> np.ndarray:
    """Zero-pad the spatial dimensions according to the layer's padding."""
    input_tensor = _check_input(layer, input_tensor)
    if layer.padding == 0:
        return input_tensor
    pad = layer.padding
    return np.pad(input_tensor, ((0, 0), (pad, pad), (pad, pad)), mode="constant")


def im2col(layer: Conv2dLayer, input_tensor: np.ndarray) -> np.ndarray:
    """Build the (T, N) activation matrix of a *dense* convolution.

    Row ``t`` contains the K*K*Cin receptive field of output pixel ``t``
    (row-major over the output feature map); column ordering is
    (channel, kernel row, kernel column), matching :func:`weights_to_matrix`.
    Grouped/depthwise layers must go through :func:`grouped_im2col` instead.
    """
    if layer.groups != 1:
        raise ValueError(
            f"layer {layer.name!r} is grouped; use grouped_im2col / run per group"
        )
    padded = pad_input(layer, input_tensor)
    k, stride = layer.kernel_size, layer.stride
    out_h, out_w = layer.output_height, layer.output_width
    columns = np.empty(
        (out_h * out_w, layer.in_channels * k * k), dtype=padded.dtype
    )
    for out_y in range(out_h):
        for out_x in range(out_w):
            window = padded[
                :, out_y * stride : out_y * stride + k, out_x * stride : out_x * stride + k
            ]
            columns[out_y * out_w + out_x, :] = window.reshape(-1)
    return columns


def weights_to_matrix(layer: Conv2dLayer, weights: np.ndarray) -> np.ndarray:
    """Reshape convolution kernels into the (N, M) weight matrix B."""
    weights = _check_weights(layer, weights)
    if layer.groups != 1:
        raise ValueError(
            f"layer {layer.name!r} is grouped; use grouped lowering instead"
        )
    # (Cout, Cin, K, K) -> (Cin*K*K, Cout)
    return weights.reshape(layer.out_channels, -1).T.copy()


def grouped_im2col(
    layer: Conv2dLayer, input_tensor: np.ndarray
) -> list[tuple[np.ndarray, slice]]:
    """Per-group (T, N_g) activation matrices of a grouped convolution.

    Returns one (matrix, output-channel slice) pair per group.  For a
    depthwise layer this yields ``Cin`` matrices of shape (T, K*K).
    """
    input_tensor = _check_input(layer, input_tensor)
    per_group_in = layer.channels_per_group
    per_group_out = layer.out_channels // layer.groups
    results = []
    for group in range(layer.groups):
        sub_layer = Conv2dLayer(
            name=f"{layer.name}.g{group}",
            in_channels=per_group_in,
            out_channels=per_group_out,
            kernel_size=layer.kernel_size,
            stride=layer.stride,
            padding=layer.padding,
            input_height=layer.input_height,
            input_width=layer.input_width,
        )
        channel_slice = slice(group * per_group_in, (group + 1) * per_group_in)
        matrix = im2col(sub_layer, input_tensor[channel_slice])
        out_slice = slice(group * per_group_out, (group + 1) * per_group_out)
        results.append((matrix, out_slice))
    return results


def direct_convolution(
    layer: Conv2dLayer, input_tensor: np.ndarray, weights: np.ndarray
) -> np.ndarray:
    """Straightforward (slow) convolution used as the verification reference."""
    input_tensor = _check_input(layer, input_tensor)
    weights = _check_weights(layer, weights)
    padded = pad_input(layer, input_tensor)
    out = np.zeros(
        (layer.out_channels, layer.output_height, layer.output_width),
        dtype=np.int64,
    )
    k, stride = layer.kernel_size, layer.stride
    per_group_in = layer.channels_per_group
    per_group_out = layer.out_channels // layer.groups
    for out_ch in range(layer.out_channels):
        group = out_ch // per_group_out
        in_start = group * per_group_in
        kernel = weights[out_ch]
        for out_y in range(layer.output_height):
            for out_x in range(layer.output_width):
                window = padded[
                    in_start : in_start + per_group_in,
                    out_y * stride : out_y * stride + k,
                    out_x * stride : out_x * stride + k,
                ]
                out[out_ch, out_y, out_x] = int(np.sum(window * kernel))
    return out


def gemm_output_to_feature_map(layer: Conv2dLayer, gemm_output: np.ndarray) -> np.ndarray:
    """Reshape the (T, M) GEMM result back into a (Cout, Hout, Wout) tensor."""
    gemm_output = np.asarray(gemm_output)
    expected = (layer.output_pixels, layer.out_channels)
    if gemm_output.shape != expected:
        raise ValueError(
            f"GEMM output for layer {layer.name!r} must have shape {expected}, "
            f"got {gemm_output.shape}"
        )
    return gemm_output.T.reshape(
        layer.out_channels, layer.output_height, layer.output_width
    )
