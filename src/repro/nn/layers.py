"""Declarative layer descriptors of the evaluated CNNs.

Only the information needed to size the GEMM of each layer is kept: channel
counts, kernel geometry, stride/padding and the input resolution.  Weights
and activations themselves are irrelevant to the latency/power evaluation
(the arrays are exercised with synthetic data when functional simulation is
requested).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class LayerKind(Enum):
    """Categories the mapping and the reports distinguish."""

    CONV = "conv"
    DEPTHWISE_CONV = "depthwise_conv"
    POINTWISE_CONV = "pointwise_conv"
    LINEAR = "linear"


@dataclass(frozen=True)
class Conv2dLayer:
    """A 2-D convolution layer (standard, depthwise or pointwise).

    ``groups`` follows the usual convention: ``groups == in_channels ==
    out_channels`` describes a depthwise convolution; ``kernel_size == 1``
    a pointwise (1x1) convolution.
    """

    name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    input_height: int
    input_width: int
    groups: int = 1

    def __post_init__(self) -> None:
        if min(
            self.in_channels,
            self.out_channels,
            self.kernel_size,
            self.stride,
            self.input_height,
            self.input_width,
            self.groups,
        ) <= 0:
            raise ValueError(f"layer {self.name!r}: all dimensions must be positive")
        if self.padding < 0:
            raise ValueError(f"layer {self.name!r}: padding must be non-negative")
        if self.in_channels % self.groups or self.out_channels % self.groups:
            raise ValueError(
                f"layer {self.name!r}: groups must divide both channel counts"
            )

    # ------------------------------------------------------------------ #
    @property
    def kind(self) -> LayerKind:
        if self.groups == self.in_channels == self.out_channels and self.groups > 1:
            return LayerKind.DEPTHWISE_CONV
        if self.kernel_size == 1 and self.groups == 1:
            return LayerKind.POINTWISE_CONV
        return LayerKind.CONV

    @property
    def output_height(self) -> int:
        return (self.input_height + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def output_width(self) -> int:
        return (self.input_width + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def output_pixels(self) -> int:
        """Spatial size of the output feature map (T of the GEMM)."""
        return self.output_height * self.output_width

    @property
    def channels_per_group(self) -> int:
        return self.in_channels // self.groups

    @property
    def weight_count(self) -> int:
        """Number of weight parameters of the layer."""
        return (
            self.out_channels
            * self.channels_per_group
            * self.kernel_size
            * self.kernel_size
        )

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations of one inference pass."""
        return self.weight_count * self.output_pixels

    def scaled_input(self, height: int, width: int) -> "Conv2dLayer":
        """Copy of the layer with a different input resolution."""
        return Conv2dLayer(
            name=self.name,
            in_channels=self.in_channels,
            out_channels=self.out_channels,
            kernel_size=self.kernel_size,
            stride=self.stride,
            padding=self.padding,
            input_height=height,
            input_width=width,
            groups=self.groups,
        )


@dataclass(frozen=True)
class LinearLayer:
    """A fully-connected layer (the classifier head of each CNN)."""

    name: str
    in_features: int
    out_features: int
    tokens: int = 1

    def __post_init__(self) -> None:
        if min(self.in_features, self.out_features, self.tokens) <= 0:
            raise ValueError(f"layer {self.name!r}: all dimensions must be positive")

    @property
    def kind(self) -> LayerKind:
        return LayerKind.LINEAR

    @property
    def weight_count(self) -> int:
        return self.in_features * self.out_features

    @property
    def macs(self) -> int:
        return self.weight_count * self.tokens


#: Any layer descriptor the mapping accepts.
Layer = Conv2dLayer | LinearLayer
