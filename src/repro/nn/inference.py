"""Layer-level functional inference on the simulated accelerators.

This module executes real (quantized, integer) convolution and linear
layers on the cycle-accurate systolic-array simulator, closing the loop
between the paper's Section II mapping and its Section IV evaluation:

1. the layer is lowered with :mod:`repro.nn.im2col` to the A / B operand
   matrices of the weight-stationary GEMM;
2. the GEMM is executed tile by tile on
   :func:`repro.sim.tiling.run_tiled_gemm` with a chosen (or
   optimizer-selected) pipeline collapse depth;
3. the result is folded back into a feature map and can be verified
   against a direct convolution.

Running whole ImageNet-scale CNNs this way is intentionally out of scope
(the cycle-accurate path is meant for validation, the analytical path for
evaluation), but any individual layer at a reduced resolution runs in
seconds and is exercised by the tests and the
``examples/quantized_conv_inference.py`` example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.optimizer import PipelineOptimizer
from repro.core.config import ArrayFlexConfig
from repro.nn.gemm_mapping import layer_to_gemm
from repro.nn.im2col import (
    direct_convolution,
    gemm_output_to_feature_map,
    grouped_im2col,
    im2col,
    weights_to_matrix,
)
from repro.nn.layers import Conv2dLayer, LinearLayer
from repro.sim.stats import SimulationStats
from repro.sim.tiling import run_tiled_gemm


@dataclass
class LayerInferenceResult:
    """Output and measurements of executing one layer on the simulator."""

    layer_name: str
    output: np.ndarray
    collapse_depth: int
    stats: SimulationStats
    verified: bool | None = None

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles


class LayerExecutor:
    """Executes individual CNN layers on the cycle-accurate array model."""

    def __init__(self, config: ArrayFlexConfig, configurable: bool = True) -> None:
        self.config = config
        self.configurable = configurable
        self.optimizer = PipelineOptimizer(config)

    # ------------------------------------------------------------------ #
    def _select_depth(self, layer: Conv2dLayer | LinearLayer, collapse_depth: int | None) -> int:
        if collapse_depth is not None:
            if not self.configurable and collapse_depth != 1:
                raise ValueError("the conventional baseline only supports k = 1")
            return collapse_depth
        if not self.configurable:
            return 1
        return self.optimizer.best_depth(layer_to_gemm(layer)).collapse_depth

    def _run_gemm(self, a_matrix: np.ndarray, b_matrix: np.ndarray, depth: int):
        return run_tiled_gemm(
            a_matrix,
            b_matrix,
            rows=self.config.rows,
            cols=self.config.cols,
            collapse_depth=depth,
            configurable=self.configurable,
        )

    # ------------------------------------------------------------------ #
    def run_conv2d(
        self,
        layer: Conv2dLayer,
        input_tensor: np.ndarray,
        weights: np.ndarray,
        collapse_depth: int | None = None,
        verify: bool = False,
    ) -> LayerInferenceResult:
        """Execute one convolution layer; optionally verify against a direct
        convolution reference (slow, meant for tests and demos)."""
        depth = self._select_depth(layer, collapse_depth)
        stats = SimulationStats()
        output_map = np.zeros(
            (layer.out_channels, layer.output_height, layer.output_width), dtype=np.int64
        )

        if layer.groups == 1:
            a_matrix = im2col(layer, input_tensor)
            b_matrix = weights_to_matrix(layer, weights)
            result = self._run_gemm(a_matrix, b_matrix, depth)
            stats.merge(result.stats)
            output_map = gemm_output_to_feature_map(layer, result.output)
        else:
            per_group_out = layer.out_channels // layer.groups
            for group_index, (a_matrix, out_slice) in enumerate(
                grouped_im2col(layer, input_tensor)
            ):
                group_weights = weights[out_slice]
                b_matrix = group_weights.reshape(per_group_out, -1).T
                result = self._run_gemm(a_matrix, b_matrix, depth)
                stats.merge(result.stats)
                output_map[out_slice] = (
                    result.output.T.reshape(
                        per_group_out, layer.output_height, layer.output_width
                    )
                )
                del group_index

        verified: bool | None = None
        if verify:
            reference = direct_convolution(layer, input_tensor, weights)
            verified = bool(np.array_equal(output_map, reference))

        return LayerInferenceResult(
            layer_name=layer.name,
            output=output_map,
            collapse_depth=depth,
            stats=stats,
            verified=verified,
        )

    # ------------------------------------------------------------------ #
    def run_linear(
        self,
        layer: LinearLayer,
        input_vector: np.ndarray,
        weights: np.ndarray,
        collapse_depth: int | None = None,
        verify: bool = False,
    ) -> LayerInferenceResult:
        """Execute a fully-connected layer (one token per row of the input)."""
        input_vector = np.asarray(input_vector)
        if input_vector.ndim == 1:
            input_vector = input_vector[np.newaxis, :]
        if input_vector.shape != (layer.tokens, layer.in_features):
            raise ValueError(
                f"layer {layer.name!r} expects input of shape "
                f"({layer.tokens}, {layer.in_features}), got {input_vector.shape}"
            )
        weights = np.asarray(weights)
        if weights.shape != (layer.out_features, layer.in_features):
            raise ValueError(
                f"layer {layer.name!r} expects weights of shape "
                f"({layer.out_features}, {layer.in_features}), got {weights.shape}"
            )
        depth = self._select_depth(layer, collapse_depth)
        result = self._run_gemm(input_vector, weights.T, depth)

        verified: bool | None = None
        if verify:
            verified = bool(np.array_equal(result.output, input_vector @ weights.T))
        return LayerInferenceResult(
            layer_name=layer.name,
            output=result.output,
            collapse_depth=depth,
            stats=result.stats,
            verified=verified,
        )
