"""Workload suites and synthetic GEMM generators.

The benchmark harness runs two kinds of workloads:

* the *paper suite* -- the three CNNs of Section IV (ResNet-34, MobileNetV1
  and ConvNeXt-T) at 224x224 single-batch inference;
* *synthetic sweeps* -- parameterised GEMM shapes used by the ablation
  benches, the Eq. (7) validation experiment and the property-based tests,
  where controlling (M, N, T) directly is more informative than a real
  network.

This module is re-exported by :mod:`repro.workloads.synthetic`; the
first-class workload registry, the transformer front-end and the
batch-scaling adapter live in :mod:`repro.workloads`.  Because this
module is imported while ``repro.nn`` is initialising, it must not import
``repro.workloads`` — the dependency points the other way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import model_zoo

if TYPE_CHECKING:  # import would be circular at runtime (see module docstring)
    from repro.workloads.base import Workload


@dataclass(frozen=True)
class WorkloadSuite:
    """A named collection of workloads to run through the scheduler.

    Any :class:`~repro.workloads.base.Workload` qualifies (CNN layer
    tables, transformer traces, pre-lowered GEMM workloads); ``models``
    keeps its historical name from when suites were CNN-only.
    """

    name: str
    models: tuple[Workload, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.models:
            raise ValueError(f"workload suite {self.name!r} is empty")

    @property
    def model_names(self) -> list[str]:
        return [model.name for model in self.models]

    def gemms_by_model(self) -> dict[str, list[GemmShape]]:
        return {model.name: model.gemms() for model in self.models}

    @property
    def total_layers(self) -> int:
        # Counted via gemms(), the only lowering the Workload protocol
        # guarantees (num_layers is an optional convenience attribute).
        return sum(len(model.gemms()) for model in self.models)


def paper_suite(input_resolution: int = 224) -> WorkloadSuite:
    """The exact workload mix of the paper's Figs. 8 and 9."""
    zoo = model_zoo(input_resolution)
    return WorkloadSuite(
        name=f"paper-suite-{input_resolution}",
        models=tuple(zoo[name] for name in ("ResNet-34", "MobileNetV1", "ConvNeXt-T")),
    )


def synthetic_gemm_sweep(
    t_values: list[int],
    n_values: list[int],
    m_values: list[int],
    prefix: str = "sweep",
) -> list[GemmShape]:
    """Cartesian sweep of GEMM shapes (used by ablations and Eq. 7 studies)."""
    if not t_values or not n_values or not m_values:
        raise ValueError("all sweep dimensions must be non-empty")
    shapes: list[GemmShape] = []
    for t in t_values:
        for n in n_values:
            for m in m_values:
                shapes.append(GemmShape(m=m, n=n, t=t, name=f"{prefix}_t{t}_n{n}_m{m}"))
    return shapes


def random_gemm_shapes(
    count: int,
    seed: int = 0,
    max_m: int = 4096,
    max_n: int = 4096,
    max_t: int = 4096,
) -> list[GemmShape]:
    """Reproducible random GEMM shapes for stress and property tests."""
    if count <= 0:
        raise ValueError("count must be positive")
    rng = np.random.default_rng(seed)
    shapes = []
    for i in range(count):
        shapes.append(
            GemmShape(
                m=int(rng.integers(1, max_m + 1)),
                n=int(rng.integers(1, max_n + 1)),
                t=int(rng.integers(1, max_t + 1)),
                name=f"random_{i}",
            )
        )
    return shapes


def random_int_matrices(
    t_rows: int,
    n_dim: int,
    m_dim: int,
    seed: int = 0,
    low: int = -128,
    high: int = 127,
) -> tuple[np.ndarray, np.ndarray]:
    """Random integer (A, B) operand pair for functional simulation tests."""
    if min(t_rows, n_dim, m_dim) <= 0:
        raise ValueError("matrix dimensions must be positive")
    if low >= high:
        raise ValueError("low must be smaller than high")
    rng = np.random.default_rng(seed)
    a_matrix = rng.integers(low, high + 1, size=(t_rows, n_dim), dtype=np.int64)
    b_matrix = rng.integers(low, high + 1, size=(n_dim, m_dim), dtype=np.int64)
    return a_matrix, b_matrix
