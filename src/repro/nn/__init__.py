"""CNN workload substrate.

The paper evaluates ArrayFlex by executing single-batch inference of three
CNNs -- ResNet-34, MobileNet(V1) and ConvNeXt(-Tiny) -- where every layer
is lowered to a GEMM and executed on the systolic array.  This package
provides that workload substrate:

* :mod:`repro.nn.layers` -- declarative layer descriptors (standard,
  depthwise and pointwise convolutions, fully-connected layers) with shape
  arithmetic (output resolution, MACs, parameters).
* :mod:`repro.nn.gemm_mapping` -- the im2col lowering of each layer to the
  (M, N, T) GEMM dimensions the latency model consumes (paper Section II).
* :mod:`repro.nn.models` -- the layer tables of the three evaluated CNNs,
  reproducing the exact shapes the paper quotes (e.g. ResNet-34 layer 20 =
  (256, 2304, 196) and layer 28 = (512, 2304, 49)).
* :mod:`repro.nn.workloads` -- workload suites and synthetic GEMM
  generators used by the benchmarks and the property-based tests.

The first-class workload layer on top of this substrate — the string-keyed
registry, the transformer front-end and the batch-scaling adapter — lives
in :mod:`repro.workloads`.
"""

from repro.nn.layers import Conv2dLayer, LinearLayer, LayerKind
from repro.nn.gemm_mapping import GemmShape, layer_to_gemm, model_to_gemms
from repro.nn.im2col import direct_convolution, im2col, weights_to_matrix

# NOTE: repro.nn.inference (LayerExecutor) is intentionally not re-exported
# here: it depends on repro.core, which itself consumes this package's GEMM
# mapping, and eagerly importing it would create a circular import.  Import
# it explicitly via ``from repro.nn.inference import LayerExecutor``.
from repro.nn.models import (
    CnnModel,
    convnext_tiny,
    mobilenet_v1,
    model_zoo,
    resnet34,
)
from repro.nn.workloads import WorkloadSuite, paper_suite, synthetic_gemm_sweep

__all__ = [
    "LayerKind",
    "Conv2dLayer",
    "LinearLayer",
    "GemmShape",
    "im2col",
    "weights_to_matrix",
    "direct_convolution",
    "layer_to_gemm",
    "model_to_gemms",
    "CnnModel",
    "resnet34",
    "mobilenet_v1",
    "convnext_tiny",
    "model_zoo",
    "WorkloadSuite",
    "paper_suite",
    "synthetic_gemm_sweep",
]
