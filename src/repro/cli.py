"""Command-line interface of the ArrayFlex reproduction.

Run as ``python -m repro <command>``.  The CLI is a thin wrapper around the
public library API and the experiment harness, so everything it prints can
also be obtained programmatically; it exists so that the headline results
can be regenerated without writing any Python.

Commands
--------
``info``        Operating points and area figures of one configuration.
``decide``      Pipeline-mode decision (Eq. 6/7) for one GEMM.
``compare``     Latency / power / EDP of one workload versus the
                conventional SA.
``batch``       Serve a whole (workload x array size) grid through the
                batch front-end, with the disk-persistent decision cache
                warm by default across invocations.
``serve``       Run the long-lived HTTP/JSON scheduler daemon
                (:mod:`repro.serve.daemon`): the batch front-end behind
                ``POST /v1/schedule|batch|compare`` plus ``GET
                /metrics`` and ``GET /healthz``, with bounded-queue
                backpressure, optional per-client rate limits, and a
                graceful SIGTERM drain that flushes the decision store.
``client``      Talk to a running daemon (``client healthz|metrics|
                schedule|compare``) — the smoke-test counterpart of
                ``serve``; typed daemon errors map to distinct exit
                codes (invalid request 2, queue full 3, rate limited 4,
                timeout 5).
``workloads``   List the workload registry (built-in CNN and transformer
                workloads, grouped by suite).
``cache``       Inspect (``cache stats``) or manually prune
                (``cache prune --max-bytes N``) the disk-persistent
                decision cache, honouring ``--cache-dir``.
``experiment``  Run one of the paper experiments (fig5, fig6, fig7, fig8,
                fig9, eq7, clock, abl_csa, abl_dirs) or the beyond-paper
                ``transformers`` suite / ``activity`` sensitivity /
                ``sampled`` backend-accuracy tables and print it.
``ablate``      Run a declarative ablation study over the design-space
                knobs (activity model, geometry, depths, backend,
                sampling parameters, workloads, batch): baseline plus
                one-off runs fan out through the batch front-end and a
                per-component importance ranking is printed (or emitted
                as ``--json``).
``report``      Regenerate the EXPERIMENTS.md measured-vs-paper report.
``trace``       Hierarchical tracing (:mod:`repro.obs`): ``trace
                schedule`` runs one workload comparison with tracing
                enabled and writes Chrome trace-event JSON (open it in
                Perfetto or ``chrome://tracing``); ``trace summary``
                aggregates a written trace file per span name.

The global ``--log-level``/``--log-json`` flags (before the command)
configure structured logging on the ``repro`` logger — ``--log-json``
switches to JSON-lines records carrying per-request correlation IDs.
The daemon also honours the ``REPRO_LOG_LEVEL`` environment variable::

    python -m repro --log-level debug --log-json serve

Workloads are resolved by name through the :mod:`repro.workloads`
registry (``python -m repro workloads`` lists them); ``--suite`` selects
a whole registry suite and ``--batch-size`` maps the selection to batched
inference (T scaled by the batch)::

    python -m repro batch --suite transformers
    python -m repro compare --model bert_base

The global ``--backend {analytical,batched,cycle,sampled}`` flag (before
the command) selects the execution backend: the closed-form reference,
the vectorised/cached fast path (same numbers), the cycle-accurate
measured path (slow; for validation), or the calibrated
sampled-simulation path (measured cycle-level estimates with per-layer
statistical error bounds, tuned by ``--sample-fraction``,
``--sample-seed``, ``--min-tiles-per-shape`` and — for auto mode, which
extends each layer's sample until its bound meets the target —
``--error-target``)::

    python -m repro --backend batched compare --model resnet34
    python -m repro --backend sampled --sample-fraction 0.1 compare --model resnet34
    python -m repro --backend sampled --error-target 0.02 compare --model resnet34

The global ``--cache-dir`` flag points the batched backend's decision
cache at a persistent directory (default for ``batch``: the user cache
directory per ``XDG_CACHE_HOME``; never inside the repository), so
repeated invocations skip re-deriving decisions::

    python -m repro batch --models resnet34 --sizes 128x128 256x256

``--activity-model {constant,utilization}`` (on ``info``, ``decide``,
``compare`` and ``batch``) selects the per-layer power activity model:
``constant`` is the paper's every-PE-busy behaviour, ``utilization``
derates datapath energy by each layer's occupied-PE tiling fraction.
``compare`` and ``batch`` report the resulting per-component energy
breakdown::

    python -m repro compare --model mobilenet_v1 --activity-model utilization
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence

from repro.backends import BACKENDS, default_cache_dir
from repro.core.activity import ACTIVITY_MODELS
from repro.core.arrayflex import ArrayFlexAccelerator
from repro.core.config import ArrayFlexConfig
from repro.core.metrics import ModelSchedule
from repro.timing.power_model import ArrayPowerBreakdown
from repro.eval.experiments import (
    AblationExperiment,
    ActivitySensitivityExperiment,
    ClockFrequencyExperiment,
    CsaAblationExperiment,
    DirectionAblationExperiment,
    Eq7ValidationExperiment,
    Fig5Experiment,
    Fig6Experiment,
    Fig7Experiment,
    Fig8Experiment,
    Fig9Experiment,
    SampledAccuracyExperiment,
    TransformerSuiteExperiment,
)
from repro.eval.report import format_percent, format_ratio
from repro.workloads import get_suite, get_workload, list_suites, workload_entry

#: Experiments selectable from the command line.  Factories take the
#: backend name; experiments whose schedules are backend-independent
#: ignore it.
EXPERIMENT_FACTORIES = {
    "fig5": lambda backend=None: [Fig5Experiment(20), Fig5Experiment(28)],
    "fig6": lambda backend=None: [Fig6Experiment()],
    "fig7": lambda backend=None: [Fig7Experiment(backend=backend)],
    "fig8": lambda backend=None: [Fig8Experiment(backend=backend)],
    "fig9": lambda backend=None: [Fig9Experiment(backend=backend)],
    "eq7": lambda backend=None: [Eq7ValidationExperiment()],
    "clock": lambda backend=None: [ClockFrequencyExperiment()],
    "abl_csa": lambda backend=None: [CsaAblationExperiment()],
    "abl_dirs": lambda backend=None: [DirectionAblationExperiment()],
    "transformers": lambda backend=None: [TransformerSuiteExperiment(backend=backend)],
    "activity": lambda backend=None: [ActivitySensitivityExperiment(backend=backend)],
    "sampled": lambda backend=None: [SampledAccuracyExperiment(backend=backend)],
    "ablation": lambda backend=None: [AblationExperiment(backend=backend)],
}


def _add_array_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--rows", type=int, default=128, help="array rows (default: 128)")
    parser.add_argument("--cols", type=int, default=128, help="array columns (default: 128)")
    parser.add_argument(
        "--depths",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="supported collapse depths (default: 1 2 4)",
    )
    _add_backend_argument(parser)
    _add_activity_model_argument(parser)


def _add_activity_model_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--activity-model",
        choices=sorted(ACTIVITY_MODELS),
        default="constant",
        help=(
            "per-layer power activity model: 'constant' (paper behaviour, "
            "every PE busy) or 'utilization' (edge tiles underfill the "
            "array, datapath energy scales with the occupied-PE fraction)"
        ),
    )


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    # Also accepted after the subcommand; SUPPRESS keeps the subparser from
    # overwriting the global flag's value when it is not repeated there.
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=argparse.SUPPRESS,
        help="execution backend (may also be given before the command)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ArrayFlex (DATE 2023) reproduction command-line interface",
    )
    # Default None (resolved to "analytical" in main) so commands with a
    # different natural backend, like `batch`, can tell an explicit
    # request apart from the fallback and refuse instead of ignoring it.
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help=(
            "execution backend: 'analytical' closed forms (default), 'batched' "
            "vectorised+cached fast path (identical numbers), 'sampled' "
            "calibrated sampled simulation (measured estimates with error "
            "bounds; see --sample-fraction/--sample-seed), 'cycle' "
            "cycle-accurate measurement (slow)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "directory for the disk-persistent decision cache (batched or "
            "sampled backend); default: no persistence, except for 'batch' "
            "which uses the user cache directory (XDG_CACHE_HOME aware)"
        ),
    )
    parser.add_argument(
        "--sample-fraction",
        type=float,
        default=None,
        help=(
            "sampled backend only: fraction of each layer's tiles (per "
            "distinct tile shape) simulated through the cycle engine "
            "(default: 0.05)"
        ),
    )
    parser.add_argument(
        "--sample-seed",
        type=int,
        default=None,
        help=(
            "sampled backend only: seed of the deterministic stratified "
            "tile sample (default: 0); the same seed reproduces bit-"
            "identical estimates"
        ),
    )
    parser.add_argument(
        "--error-target",
        type=float,
        default=None,
        help=(
            "sampled backend only: auto mode — keep extending each "
            "layer's seeded sample (doubling partial strata, new indices "
            "only) until the self-reported relative error bound drops to "
            "this value or the sample is exhaustive (default: off; the "
            "fixed --sample-fraction budget decides)"
        ),
    )
    parser.add_argument(
        "--min-tiles-per-shape",
        type=int,
        default=None,
        help=(
            "sampled backend only: minimum simulated tiles per distinct "
            "tile shape of a layer (default: 2); also sizes the variance "
            "pilot of the Neyman allocation"
        ),
    )
    parser.add_argument(
        "--log-level",
        default=None,
        help=(
            "configure logging on the 'repro' logger at this level "
            "(debug/info/warning/...); default: logging stays unconfigured "
            "(or follows the REPRO_LOG_LEVEL environment variable)"
        ),
    )
    parser.add_argument(
        "--log-json",
        action="store_true",
        help=(
            "emit JSON-lines log records (one object per line, with "
            "per-request correlation IDs) instead of plain text"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    info = subparsers.add_parser("info", help="operating points and area of a configuration")
    _add_array_arguments(info)

    decide = subparsers.add_parser("decide", help="pipeline-mode decision for one GEMM")
    _add_array_arguments(decide)
    decide.add_argument("--m", type=int, required=True, help="output dimension M (columns of B)")
    decide.add_argument("--n", type=int, required=True, help="reduction dimension N (rows of B)")
    decide.add_argument("--t", type=int, required=True, help="streamed dimension T (rows of A)")

    compare = subparsers.add_parser(
        "compare", help="compare ArrayFlex against the conventional SA on one workload"
    )
    _add_array_arguments(compare)
    compare.add_argument(
        "--model",
        default="resnet34",
        help=(
            "registry workload name, e.g. resnet34 or bert_base; append @bsN "
            "for batched inference (see the 'workloads' command; default: resnet34)"
        ),
    )

    batch = subparsers.add_parser(
        "batch",
        help="serve a (workload x array size) grid through the batch front-end",
    )
    batch.add_argument(
        "--models",
        nargs="+",
        default=None,
        help=(
            "registry workload names (see the 'workloads' command); combined "
            "with --suite when both are given (default: the 'cnn' suite)"
        ),
    )
    batch.add_argument(
        "--suite",
        default=None,
        help="add every workload of a registry suite, e.g. cnn or transformers",
    )
    batch.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="map the selected workloads to batched inference (T x batch; default: 1)",
    )
    batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help=(
            "per-request result deadline in seconds; timed-out requests are "
            "reported instead of hanging the batch (default: wait forever)"
        ),
    )
    batch.add_argument(
        "--sizes",
        nargs="+",
        default=["128x128"],
        help="array sizes as RxC (default: 128x128)",
    )
    batch.add_argument(
        "--depths",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="supported collapse depths (default: 1 2 4)",
    )
    batch.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="service executor (default: thread)",
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="service worker count (default: auto from CPU count)",
    )
    batch.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the disk-persistent decision cache",
    )
    _add_backend_argument(batch)
    _add_activity_model_argument(batch)

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP/JSON scheduler daemon (Ctrl-C / SIGTERM drains gracefully)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port",
        type=int,
        default=8537,
        help="bind port; 0 picks an ephemeral port (default: 8537)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=64,
        help=(
            "bounded admission queue: requests beyond this many in flight "
            "are shed with HTTP 429 + Retry-After (default: 64)"
        ),
    )
    serve.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help=(
            "per-client token-bucket rate in requests/second, keyed by the "
            "X-Client-Id header or peer host (default: no rate limiting)"
        ),
    )
    serve.add_argument(
        "--rate-burst",
        type=float,
        default=None,
        help="token-bucket burst depth (default: one second's worth of --rate-limit)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help=(
            "default per-request result deadline in seconds, applied when a "
            "wire request carries none (default: wait forever)"
        ),
    )
    serve.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="service executor (default: thread)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="service worker count (default: auto from CPU count)",
    )
    serve.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the disk-persistent decision cache",
    )
    _add_backend_argument(serve)

    client = subparsers.add_parser(
        "client", help="talk to a running scheduler daemon (see 'serve')"
    )
    client.add_argument("--host", default="127.0.0.1", help="daemon address (default: 127.0.0.1)")
    client.add_argument("--port", type=int, default=8537, help="daemon port (default: 8537)")
    client.add_argument(
        "--client-id",
        default=None,
        help="X-Client-Id header value (the daemon's rate-limit key)",
    )
    client.add_argument(
        "--http-timeout",
        type=float,
        default=120.0,
        help="HTTP socket timeout in seconds (default: 120)",
    )
    client_actions = client.add_subparsers(dest="client_action", required=True)
    client_actions.add_parser("healthz", help="liveness probe (prints the JSON body)")
    client_actions.add_parser(
        "metrics", help="request/latency/cache counters (prints the JSON body)"
    )
    for action, description in (
        ("schedule", "schedule one workload through the daemon"),
        ("compare", "compare ArrayFlex vs the conventional SA through the daemon"),
    ):
        client_action = client_actions.add_parser(action, help=description)
        client_action.add_argument(
            "--model",
            default="resnet34",
            help="registry workload name, e.g. resnet34 or bert_base@bs4",
        )
        client_action.add_argument("--rows", type=int, default=128, help="array rows")
        client_action.add_argument("--cols", type=int, default=128, help="array columns")
        client_action.add_argument(
            "--depths", type=int, nargs="+", default=[1, 2, 4], help="collapse depths"
        )
        _add_activity_model_argument(client_action)
        client_action.add_argument(
            "--totals-only",
            action="store_true",
            help="request aggregate totals instead of a full schedule",
        )
        client_action.add_argument(
            "--timeout",
            type=float,
            default=None,
            help="per-request result deadline in seconds",
        )
        if action == "schedule":
            client_action.add_argument(
                "--conventional",
                action="store_true",
                help="schedule the conventional fixed-pipeline baseline",
            )

    workloads = subparsers.add_parser(
        "workloads", help="list the workload registry (grouped by suite)"
    )
    workloads.add_argument(
        "--suite",
        default=None,
        help="only list one suite, e.g. cnn or transformers (default: all)",
    )

    cache = subparsers.add_parser(
        "cache", help="inspect or prune the disk-persistent decision cache"
    )
    cache_actions = cache.add_subparsers(dest="cache_action", required=True)
    cache_actions.add_parser(
        "stats",
        help=(
            "shard/row/byte counts plus the warm-start hit and corrupt-"
            "shard counters of the cache directory (--cache-dir, or the "
            "user cache directory)"
        ),
    )
    cache_prune = cache_actions.add_parser(
        "prune",
        help=(
            "evict the least-valuable shards (fewest warm-start hits, "
            "least recently used first) until the cache fits --max-bytes"
        ),
    )
    cache_prune.add_argument(
        "--max-bytes",
        type=int,
        required=True,
        help="target on-disk size of the cache directory, in bytes",
    )

    experiment = subparsers.add_parser("experiment", help="run one paper experiment")
    experiment.add_argument("id", choices=sorted(EXPERIMENT_FACTORIES), help="experiment id")
    _add_backend_argument(experiment)

    ablate = subparsers.add_parser(
        "ablate",
        help=(
            "run a declarative ablation study (baseline plus one-off runs "
            "over design knobs) and print the per-component importance ranking"
        ),
    )
    ablate.add_argument(
        "--component",
        action="append",
        default=None,
        metavar="KNOB=BASELINE:ALT[,ALT...]",
        help=(
            "one knob under ablation, repeatable: its baseline value, a colon, "
            "then comma-separated alternatives — e.g. "
            "'activity_model=constant:utilization', 'geometry=128x128:256x256', "
            "'depths=1+2+4:1+2,1+4' (default: the stock activity-model/"
            "geometry/depths study)"
        ),
    )
    ablate.add_argument(
        "--models",
        nargs="+",
        default=None,
        help=(
            "registry workload names every run schedules (see the 'workloads' "
            "command); overrides --suite"
        ),
    )
    ablate.add_argument(
        "--suite",
        default=None,
        help="registry suite every run schedules (default: cnn)",
    )
    ablate.add_argument(
        "--batch-size",
        type=int,
        default=1,
        help="map the workloads to batched inference (T x batch; default: 1)",
    )
    ablate.add_argument(
        "--rows", type=int, default=128, help="baseline array rows (default: 128)"
    )
    ablate.add_argument(
        "--cols", type=int, default=128, help="baseline array columns (default: 128)"
    )
    ablate.add_argument(
        "--depths",
        type=int,
        nargs="+",
        default=[1, 2, 4],
        help="baseline supported collapse depths (default: 1 2 4)",
    )
    ablate.add_argument(
        "--pairwise",
        action="store_true",
        help=(
            "also run the cross grid of every component pair's alternatives "
            "and report interactions (combined delta minus the sum of parts)"
        ),
    )
    ablate.add_argument(
        "--metric",
        choices=["latency", "energy", "edp"],
        default="edp",
        help="primary importance-ranking metric (default: edp)",
    )
    ablate.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="service executor the runs fan out on (default: thread)",
    )
    ablate.add_argument(
        "--workers",
        type=int,
        default=None,
        help="service worker count (default: auto from CPU count)",
    )
    ablate.add_argument(
        "--timeout",
        type=float,
        default=None,
        help=(
            "per-run result deadline in seconds; timed-out runs are reported "
            "and excluded from the ranking (default: wait forever)"
        ),
    )
    ablate.add_argument(
        "--json",
        action="store_true",
        help="print the full study result as JSON instead of tables",
    )
    _add_backend_argument(ablate)
    _add_activity_model_argument(ablate)

    report = subparsers.add_parser("report", help="regenerate EXPERIMENTS.md")
    report.add_argument(
        "--output", default="EXPERIMENTS.md", help="output path (default: EXPERIMENTS.md)"
    )

    trace = subparsers.add_parser(
        "trace", help="run with hierarchical tracing and export Chrome trace JSON"
    )
    trace_actions = trace.add_subparsers(dest="trace_action", required=True)
    trace_schedule = trace_actions.add_parser(
        "schedule",
        help=(
            "schedule one workload (ArrayFlex vs conventional) with tracing "
            "on and write the spans as Chrome trace-event JSON"
        ),
    )
    _add_array_arguments(trace_schedule)
    trace_schedule.add_argument(
        "--model",
        default="resnet34",
        help="registry workload name, e.g. resnet34 or bert_base@bs4",
    )
    trace_schedule.add_argument(
        "--output",
        default="trace.json",
        help="Chrome trace-event JSON output path (default: trace.json)",
    )
    trace_summary = trace_actions.add_parser(
        "summary", help="aggregate a written Chrome trace file per span name"
    )
    trace_summary.add_argument("path", help="trace JSON file written by 'trace schedule'")
    return parser


# ---------------------------------------------------------------------- #
# Command implementations
# ---------------------------------------------------------------------- #
def _resolve_backend(args: argparse.Namespace):
    """The backend argument handed to the library.

    Registry names pass through; ``--backend sampled`` builds a
    :class:`~repro.backends.SampledSimBackend` configured from the
    sampling flags.  Sampling flags without the sampled backend are an
    error, never a silent no-op (mirroring the ``--cache-dir`` rule).
    """
    given = [
        flag
        for flag, value in (
            ("--sample-fraction", args.sample_fraction),
            ("--sample-seed", args.sample_seed),
            ("--error-target", args.error_target),
            ("--min-tiles-per-shape", args.min_tiles_per_shape),
        )
        if value is not None
    ]
    if args.backend != "sampled":
        if given:
            raise ValueError(
                f"{'/'.join(given)} requires --backend sampled "
                f"(the {args.backend!r} backend does not sample)"
            )
        return args.backend
    from repro.backends import SampledSimBackend

    kwargs = {}
    if args.sample_fraction is not None:
        kwargs["sample_fraction"] = args.sample_fraction
    if args.sample_seed is not None:
        kwargs["sample_seed"] = args.sample_seed
    if args.error_target is not None:
        kwargs["error_target"] = args.error_target
    if args.min_tiles_per_shape is not None:
        kwargs["min_tiles_per_shape"] = args.min_tiles_per_shape
    return SampledSimBackend(**kwargs)


def _build_accelerator(args: argparse.Namespace) -> ArrayFlexAccelerator:
    # cache_dir validation is the facade's job (shared attach_store rules):
    # --cache-dir with a backend that owns no decision cache is an error,
    # never a no-op.
    return ArrayFlexAccelerator(
        rows=args.rows,
        cols=args.cols,
        supported_depths=tuple(args.depths),
        backend=_resolve_backend(args),
        cache_dir=args.cache_dir,
        activity_model=args.activity_model,
    )


def _breakdown_shares(schedule: ModelSchedule) -> str:
    """Energy composition of one run as 'datapath/clock/leakage' percents."""
    composition = schedule.energy_breakdown_nj()
    total = composition["total"] or 1.0
    datapath = sum(
        composition[component]
        for component in ArrayPowerBreakdown.DATAPATH_COMPONENTS
    )
    clock = composition["register_clock"]
    leakage = composition["leakage"]
    return (
        f"{100 * datapath / total:2.0f}/{100 * clock / total:2.0f}"
        f"/{100 * leakage / total:2.0f}"
    )


def _parse_size(text: str) -> tuple[int, int]:
    try:
        rows, _, cols = text.lower().partition("x")
        return int(rows), int(cols)
    except ValueError:
        raise ValueError(f"array size must look like 128x128, got {text!r}") from None


def _cmd_info(args: argparse.Namespace) -> int:
    accel = _build_accelerator(args)
    print(f"ArrayFlex {args.rows}x{args.cols}, supported depths {sorted(args.depths)}")
    print("operating points (GHz):")
    for name, freq in accel.frequency_table().items():
        print(f"  {name:16s} {freq:.1f}")
    area = accel.area_report()
    print(
        f"PE area: conventional {area['conventional_pe_um2']:.0f} um^2, "
        f"ArrayFlex {area['arrayflex_pe_um2']:.0f} um^2 "
        f"({format_percent(area['pe_area_overhead'])} overhead)"
    )
    print(
        f"array area: conventional {area['conventional_array_mm2']:.1f} mm^2, "
        f"ArrayFlex {area['arrayflex_array_mm2']:.1f} mm^2"
    )
    return 0


def _cmd_decide(args: argparse.Namespace) -> int:
    accel = _build_accelerator(args)
    decision = accel.decide((args.m, args.n, args.t))
    if args.backend != "analytical":
        print(
            f"note: mode decisions always use the analytical Eq. (6) policy; "
            f"the '{args.backend}' backend changes how schedules are "
            f"executed/measured, not this decision"
        )
    print(
        f"GEMM (M={args.m}, N={args.n}, T={args.t}) on {args.rows}x{args.cols}: "
        f"best collapse depth k = {decision.collapse_depth} "
        f"at {decision.clock_frequency_ghz:.1f} GHz"
    )
    print(f"analytical optimum (Eq. 7): k_hat = {decision.analytical_depth:.2f}")
    print(
        f"array utilization (occupied-PE fraction of the tiling): "
        f"{format_percent(decision.array_utilization)}"
    )
    for depth, time_ns in sorted(decision.per_depth_time_ns.items()):
        marker = "  <-- selected" if depth == decision.collapse_depth else ""
        print(f"  k={depth}: {time_ns / 1000.0:10.2f} us{marker}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    accel = _build_accelerator(args)
    model = get_workload(args.model)
    report = accel.compare_with_conventional(model)
    print(
        f"{model.name} on {args.rows}x{args.cols} SAs "
        f"({len(model.gemms())} GEMM layers, {accel.backend.name} backend)"
    )
    print(
        f"  execution time: conventional {report.conventional.total_time_ms:.3f} ms, "
        f"ArrayFlex {report.arrayflex.total_time_ms:.3f} ms "
        f"({format_percent(report.latency_saving)} saving)"
    )
    print(
        f"  average power : conventional {report.conventional.average_power_mw / 1000:.1f} W, "
        f"ArrayFlex {report.arrayflex.average_power_mw / 1000:.1f} W "
        f"({format_percent(report.power_saving)} saving)"
    )
    print(f"  energy-delay product gain: {format_ratio(report.edp_gain)}")
    print(f"  layers per pipeline mode: {report.arrayflex.depth_histogram()}")
    arrayflex = report.arrayflex
    print(
        f"  activity model '{args.activity_model}': "
        f"avg utilization {format_percent(arrayflex.average_utilization())}, "
        f"avg activity {format_percent(arrayflex.average_activity())}"
    )
    print("  ArrayFlex energy breakdown (nJ):")
    composition = arrayflex.energy_breakdown_nj()
    total = composition["total"] or 1.0
    for component, energy in composition.items():
        if component == "total":
            continue
        print(
            f"    {component:22s} {energy:14.1f}  ({format_percent(energy / total)})"
        )
    print(f"    {'total':22s} {composition['total']:14.1f}")
    return 0


def _batch_workloads(args: argparse.Namespace) -> list:
    """The workload selection of the ``batch`` command, registry-resolved.

    ``--models`` names and ``--suite`` members combine (each workload
    once, selection order); with neither given, the paper's ``cnn`` suite
    is served — the historical default grid.
    """
    if args.batch_size < 1:
        raise ValueError("--batch-size must be at least 1")
    workloads = []
    seen = set()
    if args.models:
        workloads.extend(get_workload(name, batch=args.batch_size) for name in args.models)
    if args.suite:
        workloads.extend(get_suite(args.suite, batch=args.batch_size))
    if not args.models and not args.suite:
        workloads = get_suite("cnn", batch=args.batch_size)
    unique = []
    for workload in workloads:
        if workload.name not in seen:
            seen.add(workload.name)
            unique.append(workload)
    return unique


def _cmd_batch(args: argparse.Namespace) -> int:
    """Serve a (workload x size) grid through the batch front-end.

    Always runs on the batched backend (it owns the decision cache being
    served); requesting any other backend is an error, not a silent
    override.  The disk-persistent cache is on by default — point it
    elsewhere with ``--cache-dir`` or turn it off with ``--no-cache``.
    Returns a non-zero exit code when ``--timeout`` expired on any
    request (the timed-out rows are reported, not hung on).
    """
    from repro.serve import SchedulingService

    if args.backend_explicit and args.backend != "batched":
        raise ValueError(
            f"the 'batch' command always uses the batched backend; "
            f"--backend {args.backend} is not supported here"
        )
    _resolve_backend(args)  # rejects stray sampling flags, never a no-op
    if args.no_cache and args.cache_dir:
        raise ValueError("--no-cache and --cache-dir are mutually exclusive")
    sizes = [_parse_size(size) for size in args.sizes]
    depths = tuple(args.depths)
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    grid = [
        (
            workload,
            ArrayFlexConfig(
                rows=rows,
                cols=cols,
                supported_depths=depths,
                activity_model=args.activity_model,
            ),
        )
        for workload in _batch_workloads(args)
        for rows, cols in sizes
    ]
    name_width = max(18, max(len(w.name) for w, _ in grid))
    service = SchedulingService(
        cache_dir=cache_dir, executor=args.executor, max_workers=args.workers
    )
    try:
        pairs = service.compare(grid, timeout=args.timeout)
        print(
            f"{'workload':{name_width}s} {'array':9s} "
            f"{'conv ms':>9s} {'flex ms':>9s} {'saving':>7s} "
            f"{'flex uJ':>10s} {'dp/clk/lk %':>11s}"
        )
        for (workload, config), (flex_response, conv_response) in zip(grid, pairs):
            geometry = f"{config.rows}x{config.cols:<6d}"
            if not flex_response.ok or not conv_response.ok:
                print(
                    f"{workload.name:{name_width}s} {geometry} "
                    f"{'-':>9s} {'-':>9s} {'timed out':>9s}"
                )
                continue
            arrayflex = flex_response.result
            conventional = conv_response.result
            saving = 1.0 - arrayflex.total_time_ns / conventional.total_time_ns
            print(
                f"{arrayflex.model_name:{name_width}s} {geometry} "
                f"{conventional.total_time_ms:9.3f} {arrayflex.total_time_ms:9.3f} "
                f"{format_percent(saving):>7s} "
                f"{arrayflex.total_energy_nj / 1000.0:10.1f} "
                f"{_breakdown_shares(arrayflex):>11s}"
            )
        stats = service.stats()
    finally:
        # Waiting would block on the very computations a deadline just
        # abandoned; after timeouts, walk away and cancel queued work.
        abandoned = bool(service.stats().get("timed_out", 0))
        service.close(wait=not abandoned, cancel_futures=abandoned)
    print(
        f"served {stats['requests']} requests "
        f"({stats['deduplicated']} deduplicated) on {stats['executor']} x "
        f"{stats['max_workers']} workers"
    )
    if "misses" in stats:  # thread mode; process workers keep their own counters
        print(
            f"decision cache: {stats.get('hits', 0)} hits, "
            f"{stats.get('store_hits', 0)} from disk, "
            f"{stats.get('misses', 0)} solved"
        )
    if cache_dir is not None:
        print(f"persistent cache: {cache_dir}")
    timed_out = int(stats.get("timed_out", 0))
    if timed_out:
        print(f"WARNING: {timed_out} requests timed out after {args.timeout}s")
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the HTTP/JSON scheduler daemon until drained.

    Like ``batch``, always the batched backend (the daemon serves its
    decision cache) with disk persistence on by default.  SIGTERM and
    SIGINT (Ctrl-C) trigger a graceful drain: the listening socket
    closes, in-flight requests finish, the decision store flushes, and
    the process exits 0.
    """
    from repro.serve import SchedulerDaemon

    if args.backend_explicit and args.backend != "batched":
        raise ValueError(
            f"the 'serve' command always uses the batched backend; "
            f"--backend {args.backend} is not supported here"
        )
    _resolve_backend(args)  # rejects stray sampling flags, never a no-op
    if args.no_cache and args.cache_dir:
        raise ValueError("--no-cache and --cache-dir are mutually exclusive")
    cache_dir = None if args.no_cache else (args.cache_dir or default_cache_dir())
    daemon = SchedulerDaemon(
        host=args.host,
        port=args.port,
        cache_dir=cache_dir,
        executor=args.executor,
        max_workers=args.workers,
        max_inflight=args.max_inflight,
        rate_limit=args.rate_limit,
        rate_burst=args.rate_burst,
        default_timeout=args.timeout,
    )
    daemon.install_signal_handlers()
    host, port = daemon.address
    print(f"repro scheduler daemon on http://{host}:{port}", flush=True)
    print(
        "  POST /v1/schedule  /v1/batch  /v1/compare   GET /metrics  /healthz",
        flush=True,
    )
    if cache_dir is not None:
        print(f"  persistent cache: {cache_dir}", flush=True)
    daemon.serve_forever()
    print("drained: in-flight requests finished, decision store flushed")
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    """Talk to a running daemon; typed errors become distinct exit codes."""
    from repro.serve import DaemonClient, Request, ServeError

    _reject_cache_dir(args)
    _reject_backend(
        args,
        "talks to a running daemon (whose backend was chosen by 'serve')",
    )
    client = DaemonClient(
        host=args.host,
        port=args.port,
        timeout=args.http_timeout,
        client_id=args.client_id,
    )
    try:
        if args.client_action in ("healthz", "metrics"):
            body = client.healthz() if args.client_action == "healthz" else client.metrics()
            print(json.dumps(body, indent=2, sort_keys=True))
            return 0
        request = Request(
            model=args.model,
            config=ArrayFlexConfig(
                rows=args.rows,
                cols=args.cols,
                supported_depths=tuple(args.depths),
                activity_model=args.activity_model,
            ),
            conventional=getattr(args, "conventional", False),
            totals_only=args.totals_only,
            timeout=args.timeout,
        )
        if args.client_action == "schedule":
            body = client.schedule(request)
            _print_client_result(body)
            return 0
        pair = client.compare([request])["pairs"][0]
        _print_client_result(pair[0])
        _print_client_result(pair[1])
        flex_time = pair[0]["result"]["time_ns"]
        conv_time = pair[1]["result"]["time_ns"]
        print(f"latency saving: {format_percent(1.0 - flex_time / conv_time)}")
        return 0
    except ServeError as exc:
        print(f"error [{exc.code}]: {exc}", file=sys.stderr)
        if exc.retry_after_s is not None:
            print(f"retry after {exc.retry_after_s:g}s", file=sys.stderr)
        return exc.exit_code
    except OSError as exc:
        print(
            f"error: cannot reach daemon at {args.host}:{args.port}: {exc}",
            file=sys.stderr,
        )
        return 1


def _print_client_result(body: dict) -> None:
    """One human-readable line per wire response body."""
    kind = "conventional" if body.get("conventional") else "arrayflex"
    result = body.get("result")
    if body.get("status") != "ok" or result is None:
        print(f"{body.get('model_name', '?')} [{kind}]: {body.get('status')}")
        return
    time_ms = result["time_ns"] / 1e6
    power_w = result["average_power_mw"] / 1e3
    line = (
        f"{body['model_name']} [{kind}]: {time_ms:.3f} ms, "
        f"{result['energy_nj'] / 1e3:.1f} uJ, {power_w:.1f} W"
    )
    if result.get("kind") == "schedule":
        line += f", modes {result['depth_histogram']}"
    print(line)


def _cmd_workloads(args: argparse.Namespace) -> int:
    """List the workload registry, grouped by suite."""
    _reject_cache_dir(args)
    _reject_backend(args, "only lists the registry, it schedules nothing")
    suites = list_suites()
    if args.suite is not None:
        if args.suite not in suites:
            raise ValueError(
                f"unknown workload suite {args.suite!r} (available: {sorted(suites)})"
            )
        suites = {args.suite: suites[args.suite]}
    for suite, names in suites.items():
        print(f"suite {suite!r}:")
        for name in names:
            workload = get_workload(name)
            entry = workload_entry(name)
            gemms = workload.gemms()
            macs = sum(g.macs for g in gemms)
            print(
                f"  {name:16s} {workload.name:16s} {len(gemms):4d} GEMMs "
                f"{macs / 1e9:8.2f} GMACs  {entry.description}"
            )
    print(
        "\nuse --model/--models/--suite to schedule these; append @bsN to a "
        "name (or pass --batch-size) for batched inference"
    )
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    _reject_cache_dir(args)
    backend = _resolve_backend(args)
    if args.id == "sampled" and args.backend_explicit:
        from repro.backends import SampledSimBackend

        # The accuracy experiment inherently runs the sampled backend
        # against the exact cycle backend; any other explicit request
        # must fail, not be silently replaced by the default.
        if not isinstance(backend, SampledSimBackend):
            raise ValueError(
                f"the 'sampled' experiment always compares the sampled "
                f"backend against the cycle backend; --backend "
                f"{args.backend} is not supported here (tune the sampled "
                f"side with --backend sampled --sample-fraction/--sample-seed)"
            )
    for experiment in EXPERIMENT_FACTORIES[args.id](backend):
        print(experiment.render())
        print()
    return 0


def _parse_component(text: str):
    """One ``--component KNOB=BASELINE:ALT[,ALT...]`` declaration."""
    from repro.eval.ablation import Component

    knob, equals, values = text.partition("=")
    baseline, colon, alternatives = values.partition(":")
    if not equals or not colon or not knob.strip() or not baseline.strip():
        raise ValueError(
            f"--component must look like KNOB=BASELINE:ALT[,ALT...], got {text!r}"
        )
    return Component(
        knob.strip().replace("-", "_"),
        baseline.strip(),
        tuple(part.strip() for part in alternatives.split(",") if part.strip()),
    )


def _cmd_ablate(args: argparse.Namespace) -> int:
    """Run a declarative ablation study and print the importance ranking."""
    from repro.eval.ablation import AblationStudy, Component

    _reject_cache_dir(args)
    backend = _resolve_backend(args)
    if args.batch_size < 1:
        raise ValueError("--batch-size must be at least 1")
    if args.component:
        components = [_parse_component(text) for text in args.component]
    else:
        # The stock study anchored at the baseline flags: flip the
        # activity model, double the array, drop the deepest mode.
        depths = tuple(args.depths)
        components = [
            Component("activity_model", "constant", ("utilization",)),
            Component(
                "geometry",
                (args.rows, args.cols),
                ((args.rows * 2, args.cols * 2),),
            ),
        ]
        if len(depths) > 1:
            components.append(
                Component("depths", depths, (tuple(sorted(depths)[:-1]),))
            )
    names = {component.name for component in components}
    fixed: dict[str, object] = {}
    if "backend" in names:
        if args.backend_explicit:
            raise ValueError(
                "--backend fixes the backend for every run; drop it when "
                "'backend' is itself an ablated component"
            )
    else:
        fixed["backend"] = backend
    if "activity_model" not in names:
        fixed["activity_model"] = args.activity_model
    if "geometry" not in names:
        fixed["geometry"] = (args.rows, args.cols)
    if "depths" not in names:
        fixed["depths"] = tuple(args.depths)
    if "batch" not in names:
        fixed["batch"] = args.batch_size
    if "workloads" not in names and "suite" not in names:
        if args.models:
            fixed["workloads"] = tuple(args.models)
        else:
            fixed["suite"] = args.suite or "cnn"
    study = AblationStudy(
        components=components,
        fixed=fixed,
        pairwise=args.pairwise,
        metric=args.metric,
        executor=args.executor,
        max_workers=args.workers,
        timeout=args.timeout,
    )
    result = study.run()
    if args.json:
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    else:
        print(result.render())
    timed_out = [run for run in result.runs if not run.ok]
    if timed_out:
        print(
            f"WARNING: {len(timed_out)} runs timed out after {args.timeout}s",
            file=sys.stderr,
        )
        return 1
    return 0


def _reject_cache_dir(args: argparse.Namespace) -> None:
    """--cache-dir must never be a silent no-op: commands that do not
    route through the batched decision cache refuse it outright.  The
    message names the subcommand from ``args.command`` itself, so it can
    never drift from what the user actually typed."""
    if args.cache_dir:
        raise ValueError(
            f"--cache-dir is not supported by the {args.command!r} command "
            f"(use it with info/decide/compare/batch/serve)"
        )


def _reject_backend(args: argparse.Namespace, reason: str) -> None:
    """Refuse ``--backend`` (and the sampling flags) on commands that
    never execute a backend.

    A ``--backend`` these commands would discard must be an error, never
    a silent no-op — otherwise ``--backend sampled --sample-fraction
    0.1 workloads`` "succeeds" while sampling nothing.  ``reason`` says
    why the command has no backend, in the command's own words; the
    stray-sampling-flag check still runs for the (default-backend) case
    so bare sampling flags fail with their own message everywhere.
    """
    if args.backend_explicit:
        raise ValueError(
            f"the {args.command!r} command {reason}; "
            f"--backend is not supported here"
        )
    _resolve_backend(args)  # rejects stray sampling flags, never a no-op


def _cmd_cache(args: argparse.Namespace) -> int:
    """Inspect or prune the disk-persistent decision cache.

    Pure store maintenance — no backend ever executes, so an explicit
    ``--backend`` (like stray sampling flags) is an error, never a silent
    no-op.  ``--cache-dir`` selects the directory; the default is the
    same user cache directory the ``batch`` command persists into.
    """
    _reject_backend(args, "only touches the on-disk store")
    from repro.backends import DecisionStore

    directory = args.cache_dir or default_cache_dir()
    store = DecisionStore(directory)
    if args.cache_action == "prune":
        result = store.prune(max_bytes=args.max_bytes)
        print(
            f"pruned {result['removed_shards']} shards "
            f"({result['removed_bytes']} bytes) from {directory}"
        )
        print(f"remaining: {result['total_bytes']} bytes")
        return 0
    stats = store.stats()
    print(f"cache directory: {directory}")
    print(f"  store version  : {store.version}")
    print(f"  shards         : {stats['shards']}")
    print(f"  rows           : {stats['entries']}")
    print(f"  bytes          : {stats['total_bytes']}")
    print(f"  warm-start hits: {stats['hits']}")
    print(f"  corrupt shards : {stats['corrupt_shards']}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Trace one workload comparison, or summarise a written trace file."""
    if args.trace_action == "summary":
        _reject_cache_dir(args)
        _reject_backend(
            args, "summarises an already-written trace file, it runs nothing"
        )
        with open(args.path, encoding="utf-8") as handle:
            payload = json.load(handle)
        events = payload.get("traceEvents", [])
        if not events:
            print(f"{args.path}: no trace events")
            return 1
        by_name: dict[str, list[int]] = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(int(event.get("dur", 0)))
        print(f"{args.path}: {len(events)} spans, {len(by_name)} distinct names")
        print(f"{'span':28s} {'count':>7s} {'total ms':>10s} {'mean ms':>9s} {'max ms':>9s}")
        for name, durations in sorted(
            by_name.items(), key=lambda item: -sum(item[1])
        ):
            total = sum(durations)
            print(
                f"{name:28s} {len(durations):7d} {total / 1e3:10.3f} "
                f"{total / len(durations) / 1e3:9.3f} {max(durations) / 1e3:9.3f}"
            )
        return 0

    from repro.obs.trace import configure_tracing, get_tracer

    tracer = configure_tracing(True)
    tracer.clear()
    accel = _build_accelerator(args)
    model = get_workload(args.model)
    report = accel.compare_with_conventional(model)
    count = get_tracer().export_chrome(args.output)
    print(
        f"{model.name} on {args.rows}x{args.cols} ({accel.backend.name} backend): "
        f"{format_percent(report.latency_saving)} latency saving"
    )
    print(
        f"wrote {count} spans to {args.output} — open in Perfetto "
        f"(https://ui.perfetto.dev) or chrome://tracing"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    _reject_cache_dir(args)
    _reject_backend(
        args, "regenerates EXPERIMENTS.md with each experiment's own backend"
    )
    from repro.eval.paper_report import write_experiments_markdown

    content = write_experiments_markdown(args.output)
    print(f"wrote {args.output} ({len(content.splitlines())} lines)")
    return 0


_HANDLERS = {
    "info": _cmd_info,
    "decide": _cmd_decide,
    "compare": _cmd_compare,
    "batch": _cmd_batch,
    "serve": _cmd_serve,
    "client": _cmd_client,
    "workloads": _cmd_workloads,
    "cache": _cmd_cache,
    "experiment": _cmd_experiment,
    "ablate": _cmd_ablate,
    "report": _cmd_report,
    "trace": _cmd_trace,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    args.backend_explicit = args.backend is not None
    if args.backend is None:
        args.backend = "analytical"
    # One configuration point for the 'repro' logger (idempotent: the
    # daemon's REPRO_LOG_LEVEL hook replaces, never stacks, the handler).
    level = args.log_level or os.environ.get("REPRO_LOG_LEVEL")
    if level or args.log_json:
        from repro.obs.logs import configure_logging

        configure_logging(level=level or "INFO", json_lines=args.log_json)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
