"""Setuptools shim for offline editable installs (no wheel package available)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.5.0",
    description=(
        "ArrayFlex: a systolic array architecture with configurable transparent "
        "pipelining (DATE 2023) - full Python reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "networkx>=3.0"],
)
