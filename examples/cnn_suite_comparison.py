#!/usr/bin/env python3
"""Reproduce Figs. 8 and 9: the full CNN suite on 128x128 and 256x256 arrays.

For ResNet-34, MobileNetV1 and ConvNeXt-T this example reports, per array
size:

* Fig. 8 -- total execution time of the conventional SA and ArrayFlex
  (absolute and normalized), and the per-model latency saving;
* Fig. 9 -- time-weighted average power of both designs, the share of time
  ArrayFlex spends in each pipeline mode, the power saving and the
  energy-delay-product (EDP) improvement.

Run with:  python examples/cnn_suite_comparison.py
"""

from repro.eval import Fig6Experiment, Fig8Experiment, Fig9Experiment


def main() -> None:
    area = Fig6Experiment()
    print(area.render())
    print()

    fig8 = Fig8Experiment(sizes=(128, 256))
    result8 = fig8.run()
    print(fig8.render(result8))
    low, high = result8.savings_range()
    print(
        f"\nLatency savings across models and sizes: "
        f"{low * 100:.1f}% .. {high * 100:.1f}%  (paper: 9% .. 11%)\n"
    )

    fig9 = Fig9Experiment(sizes=(128, 256))
    result9 = fig9.run()
    print(fig9.render(result9))
    for size in (128, 256):
        low, high = result9.power_saving_range(size)
        print(
            f"\nPower savings on {size}x{size} arrays: "
            f"{low * 100:.1f}% .. {high * 100:.1f}%"
            + ("  (paper: 13% .. 15%)" if size == 128 else "  (paper: 17% .. 23%)")
        )
    edp_low, edp_high = result9.edp_range()
    print(
        f"\nEnergy-delay-product improvement: {edp_low:.2f}x .. {edp_high:.2f}x "
        "(paper: 1.4x .. 1.8x)"
    )


if __name__ == "__main__":
    main()
