#!/usr/bin/env python3
"""Reproduce Fig. 7: per-layer execution time of ConvNeXt on 128x128 arrays.

ArrayFlex picks the pipeline depth independently for every CNN layer:

* the early layers (large spatial resolution, large T) run in normal
  pipeline mode -- there the conventional SA, with its higher clock, is
  actually faster;
* the middle layers prefer k = 2;
* the late layers (small T, many channels) prefer k = 4, where ArrayFlex
  is clearly faster despite its lower clock.

The example also prints the analytical optimum of Eq. (7) next to the
discrete choice, showing how closely the closed form tracks the argmin.

Run with:  python examples/convnext_per_layer.py
"""

from repro.eval import Fig7Experiment


def main() -> None:
    experiment = Fig7Experiment()
    result = experiment.run()
    print(experiment.render(result))

    shallow_savings = result.shallow_layer_savings()
    print()
    print(
        "Layers executed in shallow mode: "
        f"{len(shallow_savings)} of {len(result.arrayflex.layers)}"
    )
    if shallow_savings:
        print(
            "Per-layer savings in shallow mode: "
            f"min {min(shallow_savings) * 100:.1f}%, "
            f"max {max(shallow_savings) * 100:.1f}%"
        )
    print(
        f"Total execution-time saving: {result.total_saving * 100:.1f}% "
        "(paper: ~11% for ConvNeXt on 128x128 SAs)"
    )


if __name__ == "__main__":
    main()
