#!/usr/bin/env python3
"""Cycle-accurate functional simulation of ArrayFlex versus the baseline.

The analytical models (Eqs. 1-6) answer "how long and how much power"; this
example shows the underlying hardware behaviour with the cycle-accurate
simulator:

* a random integer GEMM is executed tile by tile on a small 16x16 array in
  normal mode (k = 1) and both shallow modes (k = 2, k = 4);
* every run produces exactly the same product as NumPy (bit-true
  integer arithmetic through the carry-save datapath);
* the measured cycle counts match Eqs. (1)/(3)/(4), and the shallow modes
  show the clock-gated (transparent) register fraction the power model
  relies on.

Run with:  python examples/functional_simulation.py
"""

import numpy as np

from repro.core.config import ArrayFlexConfig
from repro.core.clock import ClockModel
from repro.core.latency import LatencyModel
from repro.eval.report import format_table
from repro.nn.gemm_mapping import GemmShape
from repro.nn.workloads import random_int_matrices
from repro.sim.tiling import run_tiled_gemm


def main() -> None:
    rows = cols = 16
    t_rows, n_dim, m_dim = 24, 40, 36
    a_matrix, b_matrix = random_int_matrices(t_rows, n_dim, m_dim, seed=7)
    reference = a_matrix @ b_matrix

    config = ArrayFlexConfig(rows=rows, cols=cols, supported_depths=(1, 2, 4))
    latency = LatencyModel(config)
    clock = ClockModel(config)
    gemm = GemmShape(m=m_dim, n=n_dim, t=t_rows, name="demo")

    table_rows = []
    for depth in (1, 2, 4):
        result = run_tiled_gemm(
            a_matrix, b_matrix, rows=rows, cols=cols, collapse_depth=depth
        )
        assert np.array_equal(result.output, reference), "functional mismatch!"
        expected_cycles = latency.total_cycles(gemm, depth)
        table_rows.append(
            (
                f"k={depth}",
                result.tiles,
                result.total_cycles,
                expected_cycles,
                result.total_cycles == expected_cycles,
                f"{result.stats.pe_utilization * 100:.1f}%",
                f"{result.stats.gated_register_fraction * 100:.1f}%",
                clock.execution_time_ns(result.total_cycles, depth) / 1000.0,
            )
        )

    print(
        format_table(
            [
                "mode",
                "tiles",
                "measured cycles",
                "Eq. (4) cycles",
                "match",
                "PE utilization",
                "gated registers",
                "time (us)",
            ],
            table_rows,
            title=(
                f"Cycle-accurate execution of a ({t_rows}x{n_dim}) x ({n_dim}x{m_dim}) "
                f"GEMM on a {rows}x{cols} ArrayFlex array"
            ),
        )
    )
    print("\nAll modes produced bit-exact results identical to NumPy's A @ B.")


if __name__ == "__main__":
    main()
