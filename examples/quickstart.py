#!/usr/bin/env python3
"""Quickstart: the ArrayFlex public API in five minutes.

This example walks through the core workflow of the library:

1. build an ArrayFlex accelerator (128x128 PEs, the paper's main instance);
2. look at its operating points and area cost;
3. schedule a single GEMM and see which pipeline mode the optimizer picks;
4. run a full CNN (ResNet-34) on both ArrayFlex and the conventional
   fixed-pipeline baseline and compare latency, power and EDP.

Run with:  python examples/quickstart.py
"""

from repro import ArrayFlexAccelerator, GemmShape
from repro.eval.report import format_percent, format_ratio, format_table
from repro.nn import resnet34


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. Build the accelerator of the paper's main evaluation.
    # ------------------------------------------------------------------ #
    accel = ArrayFlexAccelerator(rows=128, cols=128, supported_depths=(1, 2, 4))

    print("Operating points (GHz):")
    for name, freq in accel.frequency_table().items():
        print(f"  {name:16s} {freq:.1f}")
    print()

    area = accel.area_report()
    print(
        "PE area overhead of reconfigurability: "
        f"{format_percent(area['pe_area_overhead'])} "
        f"({area['conventional_pe_um2']:.0f} -> {area['arrayflex_pe_um2']:.0f} um^2)"
    )
    print()

    # ------------------------------------------------------------------ #
    # 2. One GEMM: the paper's ResNet-34 layer 28, (M, N, T) = (512, 2304, 49).
    # ------------------------------------------------------------------ #
    gemm = GemmShape(m=512, n=2304, t=49, name="resnet34-layer28")
    decision = accel.decide(gemm)
    print(f"Layer {gemm.name}: optimizer picks k = {decision.collapse_depth}")
    print(f"  analytical optimum (Eq. 7): k_hat = {decision.analytical_depth:.2f}")
    for depth, time_ns in sorted(decision.per_depth_time_ns.items()):
        marker = "  <-- selected" if depth == decision.collapse_depth else ""
        print(f"  k={depth}: {time_ns / 1000.0:8.2f} us{marker}")
    print()

    # ------------------------------------------------------------------ #
    # 3. A whole CNN, against the conventional baseline.
    # ------------------------------------------------------------------ #
    model = resnet34()
    comparison = accel.compare_with_conventional(model)

    rows = [
        (
            "execution time (ms)",
            comparison.conventional.total_time_ms,
            comparison.arrayflex.total_time_ms,
            format_percent(comparison.latency_saving),
        ),
        (
            "average power (W)",
            comparison.conventional.average_power_mw / 1000.0,
            comparison.arrayflex.average_power_mw / 1000.0,
            format_percent(comparison.power_saving),
        ),
        (
            "energy-delay product (a.u.)",
            comparison.conventional.energy_delay_product,
            comparison.arrayflex.energy_delay_product,
            format_ratio(comparison.edp_gain),
        ),
    ]
    print(
        format_table(
            ["metric", "conventional", "ArrayFlex", "improvement"],
            rows,
            title=f"{model.name} single-batch inference on 128x128 SAs",
        )
    )
    print()
    print("Layers per selected pipeline mode:", comparison.arrayflex.depth_histogram())


if __name__ == "__main__":
    main()
