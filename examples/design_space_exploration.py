#!/usr/bin/env python3
"""Explore the design space around the paper's ArrayFlex configuration.

The paper ships 128x128 and 256x256 arrays supporting collapse depths
{1, 2, 4}.  This example uses the same latency/power/area models to ask two
follow-up questions a prospective adopter would ask:

* how do the savings change with the array size?
* is it worth supporting a deeper k = 8 mode, or a reduced {1, 2} set?

Every candidate is evaluated over the full three-CNN workload suite and
ranked by energy-delay-product gain over a conventional fixed-pipeline
array of the same geometry.

Run with:  python examples/design_space_exploration.py
"""

from repro.core.design_space import DesignPoint, DesignSpaceExplorer
from repro.eval.report import format_percent, format_ratio, format_table
from repro.nn.models import model_zoo


def main() -> None:
    models = list(model_zoo().values())
    explorer = DesignSpaceExplorer(models)

    candidates = [
        DesignPoint(rows=64, cols=64, supported_depths=(1, 2, 4)),
        DesignPoint(rows=128, cols=128, supported_depths=(1, 2)),
        DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4)),
        DesignPoint(rows=128, cols=128, supported_depths=(1, 2, 4, 8)),
        DesignPoint(rows=256, cols=256, supported_depths=(1, 2, 4)),
        DesignPoint(rows=256, cols=256, supported_depths=(1, 2, 4, 8)),
    ]
    ranked = explorer.rank(candidates, objective="edp_gain")

    rows = [
        (
            result.label,
            format_percent(result.latency_saving),
            format_percent(result.power_saving),
            format_ratio(result.edp_gain),
            format_percent(result.pe_area_overhead),
        )
        for result in ranked
    ]
    print(
        format_table(
            ["design point", "latency saving", "power saving", "EDP gain", "PE area overhead"],
            rows,
            title="Design-space exploration over ResNet-34 + MobileNetV1 + ConvNeXt-T",
        )
    )

    best = ranked[0]
    print(
        f"\nBest EDP design point: {best.label} "
        f"({format_ratio(best.edp_gain)} over the conventional SA of the same size)."
    )
    print("Per-model latency savings of the best point:")
    for model_name, saving in best.per_model_latency_saving.items():
        print(f"  {model_name:12s} {format_percent(saving)}")


if __name__ == "__main__":
    main()
