#!/usr/bin/env python3
"""Reproduce Fig. 5: execution time vs pipeline collapse depth.

The paper motivates configurable pipelining with a simple experiment:
compute two layers of ResNet-34 (layer 20 with T = 196 and layer 28 with
T = 49) on a 132x132 systolic array while sweeping the collapse depth
k in {1, 2, 3, 4} and scaling the clock accordingly.

* For layer 20 (larger T), the optimum is a *moderate* collapse (k = 2):
  deeper collapsing keeps cutting cycles but the slower clock eats the gain.
* For layer 28 (small T), the pipeline fill/drain dominates, so the deepest
  collapse (k = 4) wins.

Run with:  python examples/resnet34_layer_study.py
"""

from repro.eval import Fig5Experiment


def main() -> None:
    for layer_index in (20, 28):
        experiment = Fig5Experiment(layer_index=layer_index)
        result = experiment.run()
        print(experiment.render(result))
        print(
            f"--> best collapse depth for layer {layer_index}: k = {result.best_depth} "
            f"({result.best_time_us:.2f} us, "
            f"{result.best_saving * 100:.1f}% faster than the conventional SA)"
        )
        print()

    print(
        "Paper reference: the execution-time minimum falls at k = 2 for layer 20\n"
        "and at k = 4 for layer 28 (Fig. 5a / Fig. 5b)."
    )


if __name__ == "__main__":
    main()
