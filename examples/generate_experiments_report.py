#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md from the experiment harness.

Runs every experiment of ``repro.eval`` (one per figure/table of the paper
plus the ablations) and rewrites the repository's EXPERIMENTS.md with the
measured-vs-paper comparison.

Run with:  python examples/generate_experiments_report.py
"""

from pathlib import Path

from repro.eval.paper_report import write_experiments_markdown


def main() -> None:
    target = Path(__file__).resolve().parent.parent / "EXPERIMENTS.md"
    content = write_experiments_markdown(str(target))
    print(f"wrote {target} ({len(content.splitlines())} lines)")


if __name__ == "__main__":
    main()
