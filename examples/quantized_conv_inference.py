#!/usr/bin/env python3
"""Run a real quantized convolution layer on the cycle-accurate ArrayFlex model.

This example closes the loop of the paper's Section II end to end:

1. a floating-point activation tensor and kernel set are symmetrically
   quantized to integers (the paper evaluates 32-bit quantized inference;
   8 bits are used here so the example prints nicely);
2. the convolution is lowered to its weight-stationary GEMM with im2col;
3. the GEMM is executed tile by tile on the cycle-accurate simulator in the
   pipeline mode the Eq. (7)/Eq. (6) optimizer selects;
4. the result is folded back into a feature map and verified against a
   direct convolution.

Run with:  python examples/quantized_conv_inference.py
"""

import numpy as np

from repro.core.config import ArrayFlexConfig
from repro.core.clock import ClockModel
from repro.eval.report import format_table
from repro.nn.gemm_mapping import layer_to_gemm
from repro.nn.inference import LayerExecutor
from repro.nn.layers import Conv2dLayer
from repro.arith.fixed_point import quantize_symmetric
from repro.timing.activity_power import ActivityBasedPowerEstimator


def main() -> None:
    # A late-CNN-style layer at reduced resolution so the cycle-accurate
    # simulation finishes in a few seconds.
    layer = Conv2dLayer(
        name="demo_conv",
        in_channels=32,
        out_channels=48,
        kernel_size=3,
        stride=1,
        padding=1,
        input_height=10,
        input_width=10,
    )
    rng = np.random.default_rng(42)
    activations, _ = quantize_symmetric(rng.normal(size=(32, 10, 10)), width=8)
    weights, _ = quantize_symmetric(rng.normal(size=(48, 32, 3, 3)), width=8)

    config = ArrayFlexConfig(rows=32, cols=32, supported_depths=(1, 2, 4))
    clock = ClockModel(config)
    gemm = layer_to_gemm(layer)
    print(f"layer {layer.name}: lowered to GEMM (M={gemm.m}, N={gemm.n}, T={gemm.t})\n")

    rows = []
    for label, configurable, depth in (
        ("conventional (k=1 @ 2.0 GHz)", False, 1),
        ("ArrayFlex, optimizer-selected mode", True, None),
    ):
        executor = LayerExecutor(config, configurable=configurable)
        result = executor.run_conv2d(layer, activations, weights, collapse_depth=depth, verify=True)
        if configurable:
            period_ns = clock.period_ns(result.collapse_depth)
        else:
            period_ns = clock.conventional_period_ns()
        estimator = ActivityBasedPowerEstimator(
            rows=config.rows,
            cols=config.cols,
            collapse_depth=result.collapse_depth,
            technology=config.technology,
            configurable=configurable,
        )
        power_w = estimator.average_power_mw(result.stats, period_ns) / 1000.0
        rows.append(
            (
                label,
                result.collapse_depth,
                result.total_cycles,
                result.total_cycles * period_ns / 1000.0,
                power_w,
                result.verified,
            )
        )

    print(
        format_table(
            ["design", "k", "cycles", "time (us)", "core power (W)", "bit-exact"],
            rows,
            title="Quantized 3x3 convolution on a 32x32 systolic array (cycle-accurate)",
        )
    )
    print(
        "\nBoth designs produce the exact integer feature map of a direct convolution,\n"
        "and ArrayFlex finishes earlier despite its slower clock (fewer cycles in\n"
        "shallow mode).  For a single small layer like this one the measured core\n"
        "power of the two designs is comparable -- the paper's 13%-23% power savings\n"
        "come from full CNN runs dominated by large layers in deep collapse modes;\n"
        "see benchmarks/test_bench_fig9.py for that experiment."
    )


if __name__ == "__main__":
    main()
