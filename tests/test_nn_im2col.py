"""Tests for the functional im2col lowering."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn.im2col import (
    direct_convolution,
    gemm_output_to_feature_map,
    grouped_im2col,
    im2col,
    pad_input,
    weights_to_matrix,
)
from repro.nn.layers import Conv2dLayer


def make_layer(**overrides):
    defaults = dict(
        name="conv",
        in_channels=3,
        out_channels=4,
        kernel_size=3,
        stride=1,
        padding=1,
        input_height=6,
        input_width=6,
    )
    defaults.update(overrides)
    return Conv2dLayer(**defaults)


def random_tensors(layer, seed=0, low=-4, high=4):
    rng = np.random.default_rng(seed)
    x = rng.integers(low, high, size=(layer.in_channels, layer.input_height, layer.input_width))
    w = rng.integers(
        low, high,
        size=(layer.out_channels, layer.channels_per_group, layer.kernel_size, layer.kernel_size),
    )
    return x.astype(np.int64), w.astype(np.int64)


class TestShapes:
    def test_im2col_shape(self):
        layer = make_layer()
        x, _ = random_tensors(layer)
        assert im2col(layer, x).shape == (36, 27)

    def test_weight_matrix_shape(self):
        layer = make_layer()
        _, w = random_tensors(layer)
        assert weights_to_matrix(layer, w).shape == (27, 4)

    def test_pad_input(self):
        layer = make_layer(padding=2)
        x, _ = random_tensors(layer)
        padded = pad_input(layer, x)
        assert padded.shape == (3, 10, 10)
        assert np.all(padded[:, :2, :] == 0)

    def test_strided_layer_shapes(self):
        layer = make_layer(stride=2)
        x, _ = random_tensors(layer)
        assert im2col(layer, x).shape == (9, 27)

    def test_dimension_validation(self):
        layer = make_layer()
        with pytest.raises(ValueError):
            im2col(layer, np.zeros((2, 6, 6)))
        with pytest.raises(ValueError):
            im2col(layer, np.zeros((3, 5, 6)))
        with pytest.raises(ValueError):
            weights_to_matrix(layer, np.zeros((4, 3, 3, 5)))

    def test_grouped_layers_rejected_by_dense_path(self):
        layer = make_layer(in_channels=4, out_channels=4, groups=4)
        x, w = random_tensors(layer)
        with pytest.raises(ValueError):
            im2col(layer, x)
        with pytest.raises(ValueError):
            weights_to_matrix(layer, w)


class TestCorrectness:
    def test_gemm_equals_direct_convolution(self):
        layer = make_layer()
        x, w = random_tensors(layer, seed=1)
        gemm_out = im2col(layer, x) @ weights_to_matrix(layer, w)
        feature_map = gemm_output_to_feature_map(layer, gemm_out)
        assert np.array_equal(feature_map, direct_convolution(layer, x, w))

    def test_strided_and_unpadded(self):
        layer = make_layer(stride=2, padding=0, kernel_size=2, input_height=8, input_width=8)
        x, w = random_tensors(layer, seed=2)
        gemm_out = im2col(layer, x) @ weights_to_matrix(layer, w)
        assert np.array_equal(
            gemm_output_to_feature_map(layer, gemm_out), direct_convolution(layer, x, w)
        )

    def test_pointwise_conv(self):
        layer = make_layer(kernel_size=1, padding=0)
        x, w = random_tensors(layer, seed=3)
        gemm_out = im2col(layer, x) @ weights_to_matrix(layer, w)
        assert np.array_equal(
            gemm_output_to_feature_map(layer, gemm_out), direct_convolution(layer, x, w)
        )

    def test_depthwise_via_groups(self):
        layer = make_layer(in_channels=4, out_channels=4, groups=4)
        x, w = random_tensors(layer, seed=4)
        out = np.zeros((4, 6, 6), dtype=np.int64)
        for (a_matrix, out_slice), out_ch in zip(grouped_im2col(layer, x), range(4)):
            b_matrix = w[out_slice].reshape(1, -1).T
            out[out_ch] = (a_matrix @ b_matrix).T.reshape(6, 6)
        assert np.array_equal(out, direct_convolution(layer, x, w))

    def test_feature_map_reshape_validation(self):
        layer = make_layer()
        with pytest.raises(ValueError):
            gemm_output_to_feature_map(layer, np.zeros((10, 4)))

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(1, 4),
        st.integers(1, 5),
        st.sampled_from([1, 2, 3]),
        st.sampled_from([1, 2]),
        st.integers(4, 8),
        st.integers(0, 500),
    )
    def test_property_gemm_matches_direct(self, cin, cout, kernel, stride, size, seed):
        layer = make_layer(
            in_channels=cin, out_channels=cout, kernel_size=kernel, stride=stride,
            padding=kernel // 2, input_height=size, input_width=size,
        )
        x, w = random_tensors(layer, seed=seed)
        gemm_out = im2col(layer, x) @ weights_to_matrix(layer, w)
        assert np.array_equal(
            gemm_output_to_feature_map(layer, gemm_out), direct_convolution(layer, x, w)
        )

    def test_im2col_dimensions_match_gemm_mapping(self):
        """The functional lowering and the analytical GEMM dimensions agree."""
        from repro.nn.gemm_mapping import layer_to_gemm

        layer = make_layer(in_channels=5, out_channels=7, input_height=9, input_width=9)
        x, w = random_tensors(layer, seed=5)
        gemm = layer_to_gemm(layer)
        assert im2col(layer, x).shape == (gemm.t, gemm.n)
        assert weights_to_matrix(layer, w).shape == (gemm.n, gemm.m)
