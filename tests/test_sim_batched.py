"""Bit-identity of the batched tile engine against the scalar reference.

``CycleAccurateSystolicArray.simulate_tiles`` replays the value
datapath's closed-form trajectory (one integer matmul per batch) instead
of stepping registers cycle by cycle; every backend probe, calibration
and GEMM execution routes through it.  These property tests pin the
contract the whole stack relies on: for random ``(T, n, m, k, R, C)``
batches the batched path is **bit-identical** to a scalar
``simulate_tile`` loop — the output tiles, every
:class:`~repro.sim.stats.SimulationStats` field and the collapse depth —
including int64 wraparound, edge tiles, broadcast weight tiles and
stacked 3-D operands.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.systolic_sim import CycleAccurateSystolicArray


@st.composite
def tile_batches(draw):
    """A random geometry, mode and batch of same-depth tile shapes."""
    k = draw(st.sampled_from([1, 2, 4]))
    rows = k * draw(st.integers(1, 4))
    cols = k * draw(st.integers(1, 4))
    t_rows = draw(st.integers(1, 24))
    n_tiles = draw(st.integers(1, 5))
    shapes = [
        (draw(st.integers(1, rows)), draw(st.integers(1, cols)))
        for _ in range(n_tiles)
    ]
    seed = draw(st.integers(0, 2**31 - 1))
    return rows, cols, k, t_rows, shapes, seed


def _operands(t_rows, shapes, seed):
    """Random int64 operand tiles; magnitudes big enough to wrap sums."""
    rng = np.random.default_rng(seed)
    a_tiles, b_tiles = [], []
    for rows_used, cols_used in shapes:
        a_tiles.append(
            rng.integers(-(2**31), 2**31, size=(t_rows, rows_used), dtype=np.int64)
        )
        b_tiles.append(
            rng.integers(-(2**31), 2**31, size=(rows_used, cols_used), dtype=np.int64)
        )
    return a_tiles, b_tiles


def _assert_identical(batched, scalar):
    assert len(batched) == len(scalar)
    for got, want in zip(batched, scalar):
        assert got.output.dtype == want.output.dtype
        assert got.output.shape == want.output.shape
        assert np.array_equal(got.output, want.output)
        assert got.stats.as_dict() == want.stats.as_dict()
        assert got.stats.extra == want.stats.extra
        assert got.collapse_depth == want.collapse_depth


class TestBatchedScalarIdentity:
    @settings(max_examples=60, deadline=None)
    @given(tile_batches())
    def test_batched_matches_scalar_everywhere(self, batch):
        rows, cols, k, t_rows, shapes, seed = batch
        array = CycleAccurateSystolicArray(rows=rows, cols=cols, collapse_depth=k)
        a_tiles, b_tiles = _operands(t_rows, shapes, seed)
        batched = array.simulate_tiles(a_tiles, b_tiles)
        scalar = [array.simulate_tile(a, b) for a, b in zip(a_tiles, b_tiles)]
        _assert_identical(batched, scalar)
        # And the captured product is the padded integer matmul itself.
        for result, a_tile, b_tile in zip(batched, a_tiles, b_tiles):
            assert np.array_equal(result.output, a_tile @ b_tile)

    @settings(max_examples=20, deadline=None)
    @given(tile_batches())
    def test_chunked_batches_equal_one_call(self, batch):
        """Splitting a batch into chunks never changes any result."""
        rows, cols, k, t_rows, shapes, seed = batch
        array = CycleAccurateSystolicArray(rows=rows, cols=cols, collapse_depth=k)
        a_tiles, b_tiles = _operands(t_rows, shapes, seed)
        whole = array.simulate_tiles(a_tiles, b_tiles)
        chunked = []
        for start in range(0, len(a_tiles), 2):
            chunked.extend(
                array.simulate_tiles(
                    a_tiles[start : start + 2], b_tiles[start : start + 2]
                )
            )
        _assert_identical(chunked, whole)

    def test_non_configurable_array_matches_scalar(self):
        array = CycleAccurateSystolicArray(rows=8, cols=8, configurable=False)
        a_tiles, b_tiles = _operands(9, [(8, 8), (3, 5)], seed=7)
        batched = array.simulate_tiles(a_tiles, b_tiles)
        scalar = [array.simulate_tile(a, b) for a, b in zip(a_tiles, b_tiles)]
        _assert_identical(batched, scalar)


class TestBatchedInputForms:
    def test_single_weight_tile_broadcasts_across_batch(self):
        """One 2-D B tile is shared by every A tile of the batch."""
        array = CycleAccurateSystolicArray(rows=8, cols=8, collapse_depth=2)
        a_tiles, b_tiles = _operands(6, [(8, 5), (8, 5), (8, 5)], seed=3)
        shared = b_tiles[0]
        broadcast = array.simulate_tiles(a_tiles, shared)
        explicit = array.simulate_tiles(a_tiles, [shared] * len(a_tiles))
        _assert_identical(broadcast, explicit)

    def test_stacked_3d_operands_accepted(self):
        array = CycleAccurateSystolicArray(rows=8, cols=8)
        a_tiles, b_tiles = _operands(5, [(6, 4), (6, 4)], seed=11)
        stacked = array.simulate_tiles(np.stack(a_tiles), np.stack(b_tiles))
        listed = array.simulate_tiles(a_tiles, b_tiles)
        _assert_identical(stacked, listed)

    def test_empty_batch_returns_empty_list(self):
        array = CycleAccurateSystolicArray(rows=8, cols=8)
        assert array.simulate_tiles([], []) == []

    def test_max_batch_tiles_is_always_positive(self):
        array = CycleAccurateSystolicArray(rows=128, cols=128)
        assert array.max_batch_tiles(1) >= 1
        assert array.max_batch_tiles(100_000) >= 1


class TestBatchedValidation:
    @pytest.fixture()
    def array(self):
        return CycleAccurateSystolicArray(rows=8, cols=8)

    def test_mixed_stream_depths_rejected(self, array):
        a_tiles, b_tiles = _operands(5, [(4, 4)], seed=0)
        a2, b2 = _operands(6, [(4, 4)], seed=0)
        with pytest.raises(ValueError, match="same depth"):
            array.simulate_tiles(a_tiles + a2, b_tiles + b2)

    def test_inner_dimension_mismatch_rejected(self, array):
        a_tiles, _ = _operands(5, [(4, 4)], seed=0)
        _, b_tiles = _operands(5, [(3, 4)], seed=0)
        with pytest.raises(ValueError, match="inner dimensions"):
            array.simulate_tiles(a_tiles, b_tiles)

    def test_oversize_tile_rejected(self, array):
        rng = np.random.default_rng(0)
        a_tile = rng.integers(-4, 4, size=(5, 9), dtype=np.int64)
        b_tile = rng.integers(-4, 4, size=(9, 4), dtype=np.int64)
        with pytest.raises(ValueError, match="does not fit"):
            array.simulate_tiles([a_tile], [b_tile])

    def test_tile_count_mismatch_rejected(self, array):
        a_tiles, b_tiles = _operands(5, [(4, 4), (4, 4)], seed=0)
        with pytest.raises(ValueError, match="A tiles but"):
            array.simulate_tiles(a_tiles, b_tiles[:1])

    def test_non_2d_tiles_rejected(self, array):
        a_tiles, b_tiles = _operands(5, [(4, 4)], seed=0)
        with pytest.raises(ValueError, match="two-dimensional"):
            array.simulate_tiles([a_tiles[0][:, 0]], b_tiles)
