"""Tests for the transformer front-end: golden GEMM tables, phase
semantics, batch-scaling invariants and backend parity.

The golden tables play the same role as the pinned ResNet-34 layer-20/28
shapes: they freeze the attention/MLP lowering of the three named
workloads, so any change to the trace is a deliberate, visible diff.
"""

import pytest

from repro.backends import AnalyticalBackend, BatchedCachedBackend, model_totals
from repro.core.config import ArrayFlexConfig
from repro.workloads import (
    TransformerConfig,
    batched_workload,
    bert_base,
    get_workload,
    gpt2_decode,
    transformer_suite,
    vit_b16,
)


class TestTransformerConfig:
    def test_head_dim(self):
        config = TransformerConfig(
            hidden_size=768, num_layers=12, num_heads=12,
            intermediate_size=3072, seq_len=128,
        )
        assert config.head_dim == 64
        assert config.kv_len == 128

    def test_hidden_must_divide_heads(self):
        with pytest.raises(ValueError):
            TransformerConfig(
                hidden_size=100, num_layers=1, num_heads=12,
                intermediate_size=4, seq_len=8,
            )

    def test_dimensions_must_be_positive(self):
        with pytest.raises(ValueError):
            TransformerConfig(
                hidden_size=64, num_layers=0, num_heads=4,
                intermediate_size=4, seq_len=8,
            )

    def test_unknown_phase_rejected(self):
        config = TransformerConfig(
            hidden_size=64, num_layers=1, num_heads=4,
            intermediate_size=4, seq_len=8,
        )
        with pytest.raises(ValueError):
            config.gemms("train")


class TestGoldenBertBase:
    """BERT-Base prefill, seq 128: 12 layers x 6 GEMMs."""

    def test_gemm_count(self):
        assert len(bert_base().gemms()) == 12 * 6

    def test_layer_shape_table(self):
        gemms = bert_base().gemms()
        # One layer's (M, N, T) table; every layer repeats it.
        expected = [
            ("qkv", 2304, 768, 128),
            ("scores", 128, 64, 1536),    # T = heads x seq = 12 x 128
            ("context", 64, 128, 1536),
            ("out", 768, 768, 128),
            ("mlp_up", 3072, 768, 128),
            ("mlp_down", 768, 3072, 128),
        ]
        for layer in range(12):
            for slot, (op, m, n, t) in enumerate(expected):
                gemm = gemms[6 * layer + slot]
                assert gemm.name == f"enc{layer + 1}_{op}"
                assert (gemm.m, gemm.n, gemm.t) == (m, n, t)

    def test_total_macs(self):
        # 12 x (qkv + scores + context + out + mlp x2), tokens = 128.
        per_layer = (
            2304 * 768 * 128
            + 128 * 64 * 1536 * 2
            + 768 * 768 * 128
            + 3072 * 768 * 128 * 2
        )
        assert bert_base().total_macs == 12 * per_layer


class TestGoldenVitB16:
    """ViT-B/16 at 224: patch embed + 12 encoder layers (seq 197) + head."""

    def test_gemm_count(self):
        assert len(vit_b16().gemms()) == 1 + 12 * 6 + 1

    def test_patch_embed_and_head(self):
        gemms = vit_b16().gemms()
        assert gemms[0].name == "patch_embed"
        assert (gemms[0].m, gemms[0].n, gemms[0].t) == (768, 3 * 16 * 16, 196)
        assert gemms[-1].name == "head"
        assert (gemms[-1].m, gemms[-1].n, gemms[-1].t) == (1000, 768, 1)

    def test_encoder_runs_over_class_token(self):
        gemms = vit_b16().gemms()
        qkv = gemms[1]
        scores = gemms[2]
        assert qkv.name == "enc1_qkv" and qkv.t == 197
        assert (scores.m, scores.n, scores.t) == (197, 64, 12 * 197)

    def test_resolution_must_tile_into_patches(self):
        with pytest.raises(ValueError):
            vit_b16(input_resolution=200)


class TestGoldenGpt2Decode:
    """GPT-2 decode, context 1024: 12 layers x 6 GEMMs + LM head, T = batch."""

    def test_gemm_count(self):
        assert len(gpt2_decode().gemms()) == 12 * 6 + 1

    def test_layer_shape_table(self):
        gemms = gpt2_decode().gemms()
        expected = [
            ("qkv", 2304, 768, 1),
            ("scores", 1024, 64, 12),     # T = heads x 1 query token
            ("context", 64, 1024, 12),
            ("out", 768, 768, 1),
            ("mlp_up", 3072, 768, 1),
            ("mlp_down", 768, 3072, 1),
        ]
        for layer in range(12):
            for slot, (op, m, n, t) in enumerate(expected):
                gemm = gemms[6 * layer + slot]
                assert gemm.name == f"dec{layer + 1}_{op}"
                assert (gemm.m, gemm.n, gemm.t) == (m, n, t)

    def test_lm_head(self):
        head = gpt2_decode().gemms()[-1]
        assert head.name == "lm_head"
        assert (head.m, head.n, head.t) == (50257, 768, 1)

    def test_decode_prefers_deep_modes(self):
        """T = 1 streams are the small-T regime: every projection collapses."""
        config = ArrayFlexConfig.paper_128x128()
        schedule = AnalyticalBackend().schedule_model(gpt2_decode(), config)
        assert schedule.depth_histogram() == {4: 73}


class TestBatchScalingInvariants:
    def test_decode_t_scales_linearly_with_batch(self):
        base = gpt2_decode().gemms()
        for batch in (2, 4, 16):
            scaled = batched_workload(gpt2_decode(), batch).gemms()
            assert [g.t for g in scaled] == [g.t * batch for g in base]
            assert [(g.m, g.n) for g in scaled] == [(g.m, g.n) for g in base]

    def test_native_batch_matches_adapter(self):
        """Lowering with batch=B equals adapting the batch-1 trace."""
        for build in (bert_base, vit_b16, gpt2_decode):
            native = build(batch=4).gemms()
            adapted = batched_workload(build(), 4).gemms()
            assert [g.as_tuple() for g in native] == [g.as_tuple() for g in adapted]

    def test_prefill_tokens_are_batch_times_seq(self):
        assert bert_base(batch=3).gemms()[0].t == 3 * 128


class TestBackendParity:
    """analytical == batched == totals on a transformer workload."""

    @pytest.fixture(scope="class")
    def config(self):
        return ArrayFlexConfig.paper_128x128()

    @pytest.mark.parametrize("name", ["bert_base", "vit_b16", "gpt2_decode"])
    def test_batched_matches_analytical(self, config, name):
        workload = get_workload(name)
        reference = AnalyticalBackend().schedule_model(workload, config)
        fast = BatchedCachedBackend().schedule_model(workload, config)
        assert fast.layers == reference.layers
        assert fast.model_name == reference.model_name

    @pytest.mark.parametrize("conventional", [False, True])
    def test_totals_match_schedule_sums(self, config, conventional):
        workload = get_workload("gpt2_decode")
        backend = BatchedCachedBackend()
        totals = model_totals(backend, workload, config, conventional=conventional)
        scheduler = (
            backend.schedule_model_conventional if conventional else backend.schedule_model
        )
        schedule = scheduler(workload, config)
        assert totals.time_ns == schedule.total_time_ns
        assert totals.energy_nj == schedule.total_energy_nj

    def test_suite_helper_counts(self):
        suite = transformer_suite()
        assert suite.model_names == ["BERT-Base", "ViT-B/16", "GPT-2-decode"]
        assert suite.total_layers == 72 + 74 + 73
