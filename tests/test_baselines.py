"""Tests for the conventional fixed-pipeline baseline accelerator."""

import numpy as np
import pytest

from repro import ArrayFlexAccelerator, ConventionalAccelerator, GemmShape
from repro.nn.models import mobilenet_v1
from repro.nn.workloads import random_int_matrices


@pytest.fixture(scope="module")
def baseline():
    return ConventionalAccelerator(rows=128, cols=128)


class TestBaselineBehaviour:
    def test_single_frequency(self, baseline):
        assert baseline.frequency_ghz() == pytest.approx(2.0)

    def test_run_gemm_always_normal_mode(self, baseline):
        layer = baseline.run_gemm((512, 4608, 49))
        assert layer.collapse_depth == 1
        assert layer.clock_frequency_ghz == pytest.approx(2.0)

    def test_run_model_matches_facade_baseline_path(self, baseline):
        model = mobilenet_v1()
        direct = baseline.run_model(model)
        via_facade = ArrayFlexAccelerator(rows=128, cols=128).run_model_conventional(model)
        assert direct.total_cycles == via_facade.total_cycles
        assert direct.total_time_ns == pytest.approx(via_facade.total_time_ns)
        assert direct.average_power_mw == pytest.approx(via_facade.average_power_mw)

    def test_array_power_positive_and_constant(self, baseline):
        assert baseline.array_power_mw() > 0

    def test_pe_area_smaller_than_arrayflex(self, baseline):
        arrayflex = ArrayFlexAccelerator(rows=128, cols=128)
        assert baseline.pe_area_um2() < arrayflex.area_report()["arrayflex_pe_um2"]

    def test_execute_gemm_functional(self):
        baseline = ConventionalAccelerator(rows=8, cols=8)
        a_matrix, b_matrix = random_int_matrices(5, 10, 9, seed=6)
        result = baseline.execute_gemm(a_matrix, b_matrix)
        assert np.array_equal(result.output, a_matrix @ b_matrix)
        assert result.stats.gated_register_cycles == 0

    def test_gemm_shape_object_accepted(self, baseline):
        layer = baseline.run_gemm(GemmShape(m=64, n=64, t=64))
        assert layer.cycles == baseline.scheduler.latency.conventional_total_cycles(
            GemmShape(m=64, n=64, t=64)
        )
