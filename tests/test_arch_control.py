"""Tests for the configuration plane (per-PE config bits)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.arch.control import ConfigurationPlane, PEConfigBits


class TestLegality:
    def test_depth_must_divide_dimensions(self):
        plane = ConfigurationPlane(128, 128)
        assert plane.is_legal_depth(1)
        assert plane.is_legal_depth(2)
        assert plane.is_legal_depth(4)
        assert not plane.is_legal_depth(3)

    def test_k3_legal_on_132(self):
        """Fig. 5 uses a 132x132 array precisely so k = 3 divides it."""
        plane = ConfigurationPlane(132, 132)
        assert plane.is_legal_depth(3)

    def test_depth_zero_illegal(self):
        assert not ConfigurationPlane(8, 8).is_legal_depth(0)

    def test_rectangular_array(self):
        plane = ConfigurationPlane(8, 16)
        assert plane.is_legal_depth(8)
        assert not plane.is_legal_depth(16)

    def test_check_depth_raises(self):
        with pytest.raises(ValueError):
            ConfigurationPlane(8, 8).check_depth(3)

    def test_legal_depths_listing(self):
        assert ConfigurationPlane(8, 8).legal_depths() == [1, 2, 4, 8]
        assert ConfigurationPlane(8, 8).legal_depths(max_depth=4) == [1, 2, 4]

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            ConfigurationPlane(0, 8)


class TestPerPEConfig:
    def test_normal_mode_all_opaque(self):
        plane = ConfigurationPlane(4, 4)
        for r in range(4):
            for c in range(4):
                bits = plane.pe_config(r, c, 1)
                assert bits == PEConfigBits(False, False)

    def test_k2_alternating_pattern(self):
        plane = ConfigurationPlane(4, 4)
        # Row 0 (top of its group) is vertically transparent, row 1 is not.
        assert plane.pe_config(0, 1, 2).vertical_transparent
        assert not plane.pe_config(1, 1, 2).vertical_transparent
        # Column 0 (left of its group) is horizontally transparent, col 1 not.
        assert plane.pe_config(2, 0, 2).horizontal_transparent
        assert not plane.pe_config(2, 1, 2).horizontal_transparent

    def test_bottom_row_always_opaque_vertically(self):
        plane = ConfigurationPlane(8, 8)
        for k in (1, 2, 4, 8):
            for c in range(8):
                assert not plane.pe_config(7, c, k).vertical_transparent

    def test_out_of_range_coordinates(self):
        with pytest.raises(ValueError):
            ConfigurationPlane(4, 4).pe_config(4, 0, 1)

    def test_config_matrix_matches_pe_config(self):
        plane = ConfigurationPlane(8, 8)
        matrix = plane.config_matrix(4)
        for r in range(8):
            for c in range(8):
                bits = plane.pe_config(r, c, 4)
                assert matrix[r, c, 0] == bits.horizontal_transparent
                assert matrix[r, c, 1] == bits.vertical_transparent

    def test_config_bits_tuple(self):
        assert PEConfigBits(True, False).as_tuple() == (True, False)


class TestGatingAccounting:
    @given(st.sampled_from([(8, 8), (16, 16), (128, 128), (12, 24)]), st.data())
    def test_gated_fraction_is_k_minus_1_over_k(self, dims, data):
        """The fraction of transparent registers equals (k-1)/k -- the exact
        factor the analytical power model assumes."""
        rows, cols = dims
        plane = ConfigurationPlane(rows, cols)
        k = data.draw(st.sampled_from(plane.legal_depths(max_depth=min(rows, cols))))
        assert plane.gated_fraction(k) == pytest.approx((k - 1) / k)

    def test_transparent_register_counts(self):
        plane = ConfigurationPlane(4, 4)
        counts = plane.transparent_register_counts(2)
        assert counts["horizontal"] == 8  # half of the 16 horizontal registers
        assert counts["vertical"] == 8

    def test_normal_mode_gates_nothing(self):
        counts = ConfigurationPlane(8, 8).transparent_register_counts(1)
        assert counts == {"horizontal": 0, "vertical": 0}

    def test_config_load_is_free(self):
        """Config bits ride along with the weight preload (Section III-B)."""
        assert ConfigurationPlane(8, 8).config_load_cycles() == 0

    def test_config_matrix_dtype_and_shape(self):
        matrix = ConfigurationPlane(6, 4).config_matrix(2)
        assert matrix.shape == (6, 4, 2)
        assert matrix.dtype == np.bool_
