"""Tests for the CNN model zoo."""

import pytest

from repro.nn.layers import Conv2dLayer, LayerKind, LinearLayer
from repro.nn.models import CnnModel, convnext_tiny, mobilenet_v1, model_zoo, resnet34


class TestResNet34:
    @pytest.fixture(scope="class")
    def model(self):
        return resnet34()

    def test_layer_count(self, model):
        """Stem + 32 stage convolutions + classifier = 34 layers."""
        assert model.num_layers == 34

    def test_stage_structure(self, model):
        convs = [l for l in model.layers if isinstance(l, Conv2dLayer)]
        assert len(convs) == 33
        out_channels = [c.out_channels for c in convs[1:]]
        assert out_channels.count(64) == 6
        assert out_channels.count(128) == 8
        assert out_channels.count(256) == 12
        assert out_channels.count(512) == 6

    def test_resolutions_per_stage(self, model):
        assert model.layer(2).output_pixels == 56 * 56
        assert model.layer(10).output_pixels == 28 * 28
        assert model.layer(20).output_pixels == 14 * 14
        assert model.layer(30).output_pixels == 7 * 7

    def test_classifier(self, model):
        fc = model.layer(34)
        assert isinstance(fc, LinearLayer)
        assert fc.in_features == 512 and fc.out_features == 1000

    def test_total_macs_in_expected_range(self, model):
        """ResNet-34 is ~3.6 GMACs at 224x224; the plain trunk without the
        projection shortcuts lands slightly below."""
        assert 3.0e9 < model.total_macs < 4.2e9

    def test_layer_index_is_one_based(self, model):
        assert model.layer(1).name == "conv1"
        with pytest.raises(IndexError):
            model.layer(0)
        with pytest.raises(IndexError):
            model.layer(35)


class TestMobileNetV1:
    @pytest.fixture(scope="class")
    def model(self):
        return mobilenet_v1()

    def test_layer_count(self, model):
        """Stem + 13 x (depthwise + pointwise) + classifier = 28 layers."""
        assert model.num_layers == 28

    def test_alternating_depthwise_pointwise(self, model):
        kinds = [layer.kind for layer in model.layers[1:-1]]
        assert kinds[0::2] == [LayerKind.DEPTHWISE_CONV] * 13
        assert kinds[1::2] == [LayerKind.POINTWISE_CONV] * 13

    def test_final_resolution(self, model):
        last_conv = model.layers[-2]
        assert isinstance(last_conv, Conv2dLayer)
        assert last_conv.output_pixels == 49

    def test_total_macs_in_expected_range(self, model):
        """MobileNetV1 is ~0.57 GMACs at 224x224."""
        assert 0.4e9 < model.total_macs < 0.7e9

    def test_channel_progression(self, model):
        pointwise = [l for l in model.layers if getattr(l, "kind", None) is LayerKind.POINTWISE_CONV]
        assert pointwise[0].out_channels == 64
        assert pointwise[-1].out_channels == 1024


class TestConvNeXtTiny:
    @pytest.fixture(scope="class")
    def model(self):
        return convnext_tiny()

    def test_layer_count(self, model):
        """Stem + 3 downsamplers + (3+3+9+3) blocks x 3 convs + classifier."""
        assert model.num_layers == 1 + 3 + 18 * 3 + 1

    def test_stage_dims(self, model):
        dwconvs = [
            l for l in model.layers
            if isinstance(l, Conv2dLayer) and l.kind is LayerKind.DEPTHWISE_CONV
        ]
        dims = sorted({l.out_channels for l in dwconvs})
        assert dims == [96, 192, 384, 768]

    def test_expansion_ratio(self, model):
        pw1 = next(l for l in model.layers if l.name == "stage1_block1_pwconv1")
        assert pw1.out_channels == 4 * pw1.in_channels

    def test_stem_downsamples_by_four(self, model):
        stem = model.layer(1)
        assert isinstance(stem, Conv2dLayer)
        assert stem.output_pixels == 56 * 56

    def test_late_layers_have_small_t(self, model):
        gemms = model.gemms()
        assert gemms[-2].t == 49  # last stage at 7x7
        assert gemms[1].t == 3136  # first stage at 56x56

    def test_total_macs_in_expected_range(self, model):
        """ConvNeXt-T is ~4.5 GMACs at 224x224."""
        assert 3.5e9 < model.total_macs < 5.5e9

    def test_runtime_dominates_other_models(self, model):
        """The reason the paper normalizes Fig. 8: ConvNeXt takes far longer."""
        assert model.total_macs > mobilenet_v1().total_macs * 5


class TestModelZoo:
    def test_zoo_contains_all_three_models(self):
        zoo = model_zoo()
        assert set(zoo) == {"ResNet-34", "MobileNetV1", "ConvNeXt-T"}

    def test_zoo_resolution_parameter(self):
        zoo = model_zoo(input_resolution=112)
        assert zoo["ResNet-34"].input_resolution == 112
        assert zoo["ResNet-34"].gemm(2).t == 28 * 28

    def test_empty_model_rejected(self):
        with pytest.raises(ValueError):
            CnnModel(name="empty", input_resolution=224, layers=())

    def test_gemms_are_cached_per_call_but_consistent(self):
        model = resnet34()
        assert [g.as_tuple() for g in model.gemms()] == [
            g.as_tuple() for g in model.gemms()
        ]
