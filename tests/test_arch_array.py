"""Tests for the structural (object-per-element) systolic array model."""

import numpy as np
import pytest

from repro.arch.array import SystolicArrayModel
from repro.core.latency import arrayflex_tile_cycles, conventional_tile_cycles
from repro.nn.workloads import random_int_matrices


def _run(rows, cols, k, t_rows, rows_used=None, cols_used=None, configurable=True, seed=0):
    rows_used = rows_used or rows
    cols_used = cols_used or cols
    a_tile, b_tile = random_int_matrices(t_rows, rows_used, cols_used, seed=seed)
    array = SystolicArrayModel(rows, cols, configurable=configurable)
    array.configure(k)
    result = array.execute_tile(a_tile, b_tile)
    return a_tile, b_tile, result


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_full_tile_product_matches_numpy(self, k):
        a_tile, b_tile, result = _run(rows=8, cols=8, k=k, t_rows=6, seed=k)
        assert np.array_equal(result.output, a_tile @ b_tile)

    def test_partial_tile(self):
        a_tile, b_tile, result = _run(rows=8, cols=8, k=2, t_rows=5, rows_used=5, cols_used=3)
        assert result.output.shape == (5, 3)
        assert np.array_equal(result.output, a_tile @ b_tile)

    def test_conventional_array_product(self):
        a_tile, b_tile, result = _run(rows=6, cols=6, k=1, t_rows=4, configurable=False)
        assert np.array_equal(result.output, a_tile @ b_tile)

    def test_single_row_stream(self):
        a_tile, b_tile, result = _run(rows=4, cols=4, k=2, t_rows=1)
        assert np.array_equal(result.output, a_tile @ b_tile)

    def test_negative_values(self):
        a_tile = np.array([[-3, 2, -1, 4]], dtype=np.int64)
        b_tile = -np.arange(16, dtype=np.int64).reshape(4, 4)
        array = SystolicArrayModel(4, 4)
        array.configure(4)
        result = array.execute_tile(a_tile, b_tile)
        assert np.array_equal(result.output, a_tile @ b_tile)


class TestCycleCounts:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_total_cycles_match_eq3(self, k):
        _, _, result = _run(rows=8, cols=8, k=k, t_rows=7)
        assert result.total_cycles == arrayflex_tile_cycles(8, 8, 7, k)

    def test_conventional_cycles_match_eq1(self):
        _, _, result = _run(rows=8, cols=8, k=1, t_rows=7, configurable=False)
        assert result.total_cycles == conventional_tile_cycles(8, 8, 7)

    def test_weight_load_is_r_cycles(self):
        _, _, result = _run(rows=8, cols=4, k=1, t_rows=3)
        assert result.weight_load_cycles == 8

    def test_shallow_mode_needs_fewer_cycles(self):
        _, _, normal = _run(rows=8, cols=8, k=1, t_rows=4)
        _, _, shallow = _run(rows=8, cols=8, k=4, t_rows=4)
        assert shallow.total_cycles < normal.total_cycles


class TestActivityAndConfig:
    def test_mac_count_positive(self):
        _, _, result = _run(rows=4, cols=4, k=2, t_rows=3)
        assert result.mac_operations > 0

    def test_gated_registers_only_in_shallow_mode(self):
        _, _, normal = _run(rows=4, cols=4, k=1, t_rows=3)
        _, _, shallow = _run(rows=4, cols=4, k=2, t_rows=3)
        assert normal.gated_register_cycles == 0
        assert shallow.gated_register_cycles > 0
        assert 0.0 < shallow.gated_register_fraction < 1.0

    def test_conventional_rejects_shallow_configuration(self):
        array = SystolicArrayModel(4, 4, configurable=False)
        with pytest.raises(ValueError):
            array.configure(2)

    def test_illegal_depth_rejected(self):
        array = SystolicArrayModel(4, 4)
        with pytest.raises(ValueError):
            array.configure(3)

    def test_gated_register_fraction_matches_plane(self):
        array = SystolicArrayModel(8, 8)
        array.configure(4)
        assert array.gated_register_fraction() == pytest.approx(0.75)

    def test_oversized_tile_rejected(self):
        array = SystolicArrayModel(4, 4)
        with pytest.raises(ValueError):
            array.execute_tile(np.ones((2, 5)), np.ones((5, 4)))

    def test_mismatched_operands_rejected(self):
        array = SystolicArrayModel(4, 4)
        with pytest.raises(ValueError):
            array.execute_tile(np.ones((2, 3)), np.ones((4, 4)))


class TestBitLevelMode:
    def test_bitlevel_small_array_matches_numpy(self):
        a_tile, b_tile = random_int_matrices(2, 3, 3, seed=5, low=-8, high=7)
        array = SystolicArrayModel(3, 3, use_bitlevel=True, input_width=8, accum_width=16)
        array.configure(1)
        result = array.execute_tile(a_tile, b_tile)
        assert np.array_equal(result.output, a_tile @ b_tile)
