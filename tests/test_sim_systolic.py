"""Tests for the vectorised cycle-accurate systolic array simulator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.latency import arrayflex_tile_cycles
from repro.nn.workloads import random_int_matrices
from repro.sim.systolic_sim import CycleAccurateSystolicArray
from repro.sim.trace import CycleTrace


class TestConstruction:
    def test_depth_must_divide_dimensions(self):
        with pytest.raises(ValueError):
            CycleAccurateSystolicArray(8, 8, collapse_depth=3)

    def test_conventional_only_k1(self):
        with pytest.raises(ValueError):
            CycleAccurateSystolicArray(8, 8, collapse_depth=2, configurable=False)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            CycleAccurateSystolicArray(0, 8)


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("k", [1, 2, 4, 8])
    def test_single_tile_matches_numpy(self, k):
        array = CycleAccurateSystolicArray(8, 8, collapse_depth=k)
        a_tile, b_tile = random_int_matrices(10, 8, 8, seed=k)
        result = array.simulate_tile(a_tile, b_tile)
        assert np.array_equal(result.output, a_tile @ b_tile)

    def test_partial_tile(self):
        array = CycleAccurateSystolicArray(16, 16, collapse_depth=4)
        a_tile, b_tile = random_int_matrices(7, 11, 5, seed=3)
        result = array.simulate_tile(a_tile, b_tile)
        assert result.output.shape == (7, 5)
        assert np.array_equal(result.output, a_tile @ b_tile)

    def test_t_equal_one(self):
        array = CycleAccurateSystolicArray(8, 8, collapse_depth=2)
        a_tile, b_tile = random_int_matrices(1, 8, 8, seed=1)
        result = array.simulate_tile(a_tile, b_tile)
        assert np.array_equal(result.output, a_tile @ b_tile)

    def test_all_zero_inputs(self):
        array = CycleAccurateSystolicArray(4, 4, collapse_depth=2)
        result = array.simulate_tile(np.zeros((3, 4), dtype=np.int64), np.zeros((4, 4), dtype=np.int64))
        assert np.all(result.output == 0)

    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from([(4, 4), (8, 8), (8, 4), (4, 8), (16, 8)]),
        st.sampled_from([1, 2, 4]),
        st.integers(1, 12),
        st.integers(0, 1000),
    )
    def test_random_shapes_and_modes(self, dims, k, t_rows, seed):
        """Property: for any legal configuration the simulator is bit-exact
        and cycle-exact with respect to Eqs. (1)/(3)."""
        rows, cols = dims
        array = CycleAccurateSystolicArray(rows, cols, collapse_depth=k)
        rows_used = 1 + seed % rows
        cols_used = 1 + (seed // 7) % cols
        a_tile, b_tile = random_int_matrices(t_rows, rows_used, cols_used, seed=seed)
        result = array.simulate_tile(a_tile, b_tile)
        assert np.array_equal(result.output, a_tile @ b_tile)
        assert result.total_cycles == arrayflex_tile_cycles(rows, cols, t_rows, k)


class TestCyclesAndStats:
    @pytest.mark.parametrize("k", [1, 2, 4])
    def test_measured_cycles_equal_closed_form(self, k):
        array = CycleAccurateSystolicArray(16, 16, collapse_depth=k)
        a_tile, b_tile = random_int_matrices(9, 16, 16, seed=k)
        result = array.simulate_tile(a_tile, b_tile)
        assert result.total_cycles == array.expected_tile_cycles(9)
        assert result.total_cycles == arrayflex_tile_cycles(16, 16, 9, k)

    def test_mac_count_equals_dense_work(self):
        """Every (t, row, col-group broadcast) multiplication is counted once;
        for a full tile that is T x R x C MACs."""
        array = CycleAccurateSystolicArray(4, 4, collapse_depth=1)
        a_tile, b_tile = random_int_matrices(5, 4, 4, seed=2)
        result = array.simulate_tile(a_tile, b_tile)
        assert result.stats.mac_operations == 5 * 4 * 4

    def test_utilization_increases_with_collapsing(self):
        """Shallow modes shrink the fill/drain bubbles, so utilisation rises."""
        results = {}
        for k in (1, 2, 4):
            array = CycleAccurateSystolicArray(8, 8, collapse_depth=k)
            a_tile, b_tile = random_int_matrices(6, 8, 8, seed=4)
            results[k] = array.simulate_tile(a_tile, b_tile).stats.pe_utilization
        assert results[1] < results[2] < results[4]

    def test_gated_register_fraction(self):
        for k in (1, 2, 4):
            array = CycleAccurateSystolicArray(8, 8, collapse_depth=k)
            a_tile, b_tile = random_int_matrices(4, 8, 8, seed=k)
            stats = array.simulate_tile(a_tile, b_tile).stats
            assert stats.gated_register_fraction == pytest.approx((k - 1) / k)

    def test_conventional_never_gates(self):
        array = CycleAccurateSystolicArray(8, 8, collapse_depth=1, configurable=False)
        a_tile, b_tile = random_int_matrices(4, 8, 8, seed=9)
        stats = array.simulate_tile(a_tile, b_tile).stats
        assert stats.gated_register_cycles == 0

    def test_sram_accounting(self):
        array = CycleAccurateSystolicArray(8, 8, collapse_depth=1)
        a_tile, b_tile = random_int_matrices(4, 6, 5, seed=9)
        stats = array.simulate_tile(a_tile, b_tile).stats
        assert stats.sram_reads == 6 * 5 + 4 * 6  # weights + activations
        assert stats.sram_writes == 4 * 5  # results

    def test_mismatched_operands_rejected(self):
        array = CycleAccurateSystolicArray(8, 8)
        with pytest.raises(ValueError):
            array.simulate_tile(np.ones((3, 4)), np.ones((5, 6)))

    def test_oversized_tile_rejected(self):
        array = CycleAccurateSystolicArray(4, 4)
        with pytest.raises(ValueError):
            array.simulate_tile(np.ones((3, 6)), np.ones((6, 4)))


class TestTracing:
    def test_trace_records_phases_inputs_outputs(self):
        array = CycleAccurateSystolicArray(4, 4, collapse_depth=2)
        a_tile, b_tile = random_int_matrices(3, 4, 4, seed=0)
        trace = CycleTrace()
        array.simulate_tile(a_tile, b_tile, trace=trace)
        summary = trace.summary()
        assert summary[CycleTrace.PHASE] == 1
        assert summary[CycleTrace.INPUT_INJECTED] > 0
        assert summary[CycleTrace.OUTPUT_CAPTURED] > 0

    def test_outputs_follow_inputs(self):
        array = CycleAccurateSystolicArray(4, 4, collapse_depth=1)
        a_tile, b_tile = random_int_matrices(3, 4, 4, seed=0)
        trace = CycleTrace()
        array.simulate_tile(a_tile, b_tile, trace=trace)
        first_in = trace.first_cycle(CycleTrace.INPUT_INJECTED)
        first_out = trace.first_cycle(CycleTrace.OUTPUT_CAPTURED)
        assert first_in is not None and first_out is not None
        assert first_out > first_in
