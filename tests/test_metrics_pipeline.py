"""Tests for the structured LayerMetrics pipeline across the whole stack.

Three contracts:

* **Bit-identical defaults** — with the default ``ConstantActivity(1.0)``
  every schedule equals the pre-refactor numbers (pinned here as golden
  totals captured from the flat-``LayerSchedule`` implementation) across
  all three backends, per-layer and in the totals fast path.
* **Activity plumbing** — ``UtilizationActivity`` produces strictly lower
  datapath energy on every layer whose GEMM does not tile the array
  exactly, never touches a timing number, and the batched backend's
  vectorised utilization path matches the analytical backend bit for
  bit.
* **Structured records** — breakdown components are self-consistent, the
  back-compat ``power_mw``/``energy_nj`` surface is intact, and the
  serving front-end treats activity models as part of request identity.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.backends import (
    AnalyticalBackend,
    BatchedCachedBackend,
    CycleAccurateBackend,
)
from repro.core.activity import ConstantActivity, UtilizationActivity
from repro.core.config import ArrayFlexConfig
from repro.core.metrics import InvalidWorkloadError, LayerMetrics, resolve_workload
from repro.core.scheduler import LayerSchedule, Scheduler
from repro.nn.gemm_mapping import GemmShape
from repro.nn.models import convnext_tiny, mobilenet_v1, resnet34
from repro.timing.power_model import ArrayPowerBreakdown
from repro.workloads import get_workload

#: (workload, config) -> pre-refactor golden totals, captured from the
#: flat-LayerSchedule implementation at PR 3's head:
#: (arrayflex time ns, arrayflex energy nJ, conventional time ns,
#:  conventional energy nJ).  Full-precision reprs — equality is exact.
GOLDEN_TOTALS = {
    "resnet34@128": (363675.2194211018, 36453679.439712465, 401790.0, 47031066.23078399),
    "convnext@128": (447138.366013072, 44226650.90025829, 502726.0, 58846013.59400962),
    "mobilenet@256": (61044.00560224088, 24692143.91144918, 65103.0, 30482227.082035203),
    "bert_base@128": (1190145.8823529412, 125835279.96118169, 1344936.0, 157429936.26562554),
    "gpt2_decode@256": (543246.4285714284, 183080968.60116437, 761008.5, 356315898.01328653),
}


def _workload_config(key):
    name, _, size = key.partition("@")
    config = (
        ArrayFlexConfig.paper_128x128() if size == "128" else ArrayFlexConfig.paper_256x256()
    )
    models = {
        "resnet34": resnet34,
        "convnext": convnext_tiny,
        "mobilenet": mobilenet_v1,
    }
    model = models[name]() if name in models else get_workload(name)
    return model, config


@pytest.fixture(scope="module")
def analytical():
    return AnalyticalBackend()


@pytest.fixture(scope="module")
def batched():
    return BatchedCachedBackend()


class TestPreRefactorGoldenParity:
    """ConstantActivity(1.0) defaults are bit-identical to the old numbers."""

    @pytest.mark.parametrize("key", sorted(GOLDEN_TOTALS))
    def test_analytical_and_batched_match_goldens(self, key, analytical, batched):
        model, config = _workload_config(key)
        af_time, af_energy, conv_time, conv_energy = GOLDEN_TOTALS[key]
        for backend in (analytical, batched):
            schedule = backend.schedule_model(model, config)
            conventional = backend.schedule_model_conventional(model, config)
            assert schedule.total_time_ns == af_time
            assert schedule.total_energy_nj == af_energy
            assert conventional.total_time_ns == conv_time
            assert conventional.total_energy_nj == conv_energy
        totals = batched.schedule_model_totals(model, config)
        conv_totals = batched.schedule_model_totals(model, config, conventional=True)
        assert (totals.time_ns, totals.energy_nj) == (af_time, af_energy)
        assert (conv_totals.time_ns, conv_totals.energy_nj) == (conv_time, conv_energy)

    def test_cycle_backend_matches_goldens_scaled_down(self, analytical):
        """The cycle backend agrees layer-for-layer on a simulable geometry."""
        config = ArrayFlexConfig(rows=16, cols=16)
        gemms = resnet34().gemms()[:5]
        measured = CycleAccurateBackend().schedule_model(gemms, config, model_name="s")
        modelled = analytical.schedule_model(gemms, config, model_name="s")
        assert measured.layers == modelled.layers

    def test_scheduler_facade_matches_backend(self, analytical):
        """Scheduler is now a facade: same records, same objects API."""
        config = ArrayFlexConfig.paper_128x128()
        scheduler = Scheduler(config)
        model = mobilenet_v1()
        assert (
            scheduler.schedule_model_arrayflex(model).layers
            == analytical.schedule_model(model, config).layers
        )
        assert (
            scheduler.schedule_model_conventional(model).layers
            == analytical.schedule_model_conventional(model, config).layers
        )


class TestUtilizationActivityPlumbing:
    CONFIGS = {
        "constant": ArrayFlexConfig.paper_128x128(),
        "utilization": ArrayFlexConfig.paper_128x128().with_activity_model(
            UtilizationActivity()
        ),
    }

    @pytest.mark.parametrize("model_builder", [resnet34, convnext_tiny, mobilenet_v1])
    def test_batched_matches_analytical_bit_for_bit(
        self, model_builder, analytical, batched
    ):
        model = model_builder()
        config = self.CONFIGS["utilization"]
        assert (
            batched.schedule_model(model, config).layers
            == analytical.schedule_model(model, config).layers
        )
        assert (
            batched.schedule_model_conventional(model, config).layers
            == analytical.schedule_model_conventional(model, config).layers
        )

    def test_totals_fast_path_matches_layer_sums_under_utilization(self, batched):
        model = mobilenet_v1()
        config = self.CONFIGS["utilization"]
        schedule = batched.schedule_model(model, config)
        totals = batched.schedule_model_totals(model, config)
        assert totals.time_ns == schedule.total_time_ns
        assert totals.energy_nj == schedule.total_energy_nj
        conventional = batched.schedule_model_conventional(model, config)
        conv_totals = batched.schedule_model_totals(model, config, conventional=True)
        assert conv_totals.time_ns == conventional.total_time_ns
        assert conv_totals.energy_nj == conventional.total_energy_nj

    @pytest.mark.parametrize("model_builder", [resnet34, convnext_tiny, mobilenet_v1])
    def test_strictly_lower_datapath_energy_on_inexact_layers(
        self, model_builder, analytical
    ):
        """The acceptance criterion: derating bites exactly where tiling is
        inexact, and only in datapath energy — never in any timing number."""
        model = model_builder()
        constant = analytical.schedule_model(model, self.CONFIGS["constant"])
        derated = analytical.schedule_model(model, self.CONFIGS["utilization"])
        saw_inexact = False
        for base, layer in zip(constant.layers, derated.layers):
            assert layer.execution_time_ns == base.execution_time_ns
            assert layer.cycles == base.cycles
            assert layer.collapse_depth == base.collapse_depth
            assert layer.array_utilization == base.array_utilization
            if layer.array_utilization < 1.0:
                saw_inexact = True
                assert layer.datapath_energy_nj < base.datapath_energy_nj
                assert layer.energy_nj < base.energy_nj
                assert layer.activity == pytest.approx(layer.array_utilization)
            else:
                assert layer.power == base.power
        assert saw_inexact, "suite should contain at least one inexact tiling"

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(1, 4096),
        n=st.integers(1, 4096),
        t=st.integers(1, 8192),
    )
    def test_single_layer_parity_property_under_utilization(self, m, n, t):
        """Property: the vectorised utilization path equals the scalar one
        for any GEMM — decision, activity, and every breakdown component."""
        config = ArrayFlexConfig(rows=128, cols=128, activity_model="utilization")
        gemm = GemmShape(m=m, n=n, t=t, name="prop")
        reference = AnalyticalBackend().schedule_layer(gemm, config)
        fast = BatchedCachedBackend().schedule_layer(gemm, config)
        assert fast == reference
        conventional_ref = AnalyticalBackend().schedule_layer_conventional(gemm, config)
        conventional_fast = (
            BatchedCachedBackend()
            .schedule_model_conventional([gemm], config, model_name="prop")
            .layers[0]
        )
        assert conventional_fast == conventional_ref

    def test_conventional_baseline_also_derated(self, analytical):
        """Both accelerators are priced under the same activity model."""
        gemm = GemmShape(m=100, n=150, t=49, name="edge")
        constant = analytical.schedule_layer_conventional(gemm, self.CONFIGS["constant"])
        derated = analytical.schedule_layer_conventional(
            gemm, self.CONFIGS["utilization"]
        )
        assert derated.power.datapath_mw < constant.power.datapath_mw
        assert derated.execution_time_ns == constant.execution_time_ns


class TestLayerMetricsRecord:
    def test_back_compat_alias_and_properties(self, analytical):
        layer = analytical.schedule_layer(
            resnet34().gemm(28), ArrayFlexConfig.paper_128x128()
        )
        assert isinstance(layer, LayerMetrics)
        assert LayerSchedule is LayerMetrics
        assert layer.power_mw == layer.power.total_mw
        assert layer.energy_nj == pytest.approx(
            layer.power_mw * layer.execution_time_ns / 1000.0
        )

    def test_breakdown_components_sum_to_total(self, analytical):
        layer = analytical.schedule_layer(
            resnet34().gemm(20), ArrayFlexConfig.paper_128x128()
        )
        parts = layer.energy_breakdown_nj()
        total = parts.pop("total")
        assert total == pytest.approx(sum(parts.values()))
        assert set(parts) == set(ArrayPowerBreakdown.DATAPATH_COMPONENTS) | {
            "register_clock",
            "leakage",
        }

    def test_model_schedule_breakdown_and_averages(self, analytical):
        config = ArrayFlexConfig(rows=128, cols=128, activity_model="utilization")
        schedule = analytical.schedule_model(mobilenet_v1(), config)
        composition = schedule.energy_breakdown_nj()
        assert composition["total"] == schedule.total_energy_nj
        components = {k: v for k, v in composition.items() if k != "total"}
        assert sum(components.values()) == pytest.approx(composition["total"])
        assert 0.0 < schedule.average_utilization() < 1.0
        assert schedule.average_activity() == pytest.approx(
            schedule.average_utilization()
        )
        constant = analytical.schedule_model(
            mobilenet_v1(), ArrayFlexConfig.paper_128x128()
        )
        assert constant.average_activity() == 1.0

    def test_mode_decision_reports_utilization(self):
        from repro.core.optimizer import PipelineOptimizer

        optimizer = PipelineOptimizer(ArrayFlexConfig.paper_128x128())
        decision = optimizer.best_depth(GemmShape(m=100, n=150, t=49, name="edge"))
        assert decision.array_utilization == (150 * 100) / (2 * 128 * 128)


class TestResolveWorkloadTyping:
    """The falsy-check fix: empty vs not-a-workload are distinct failures."""

    def test_empty_list_is_value_error(self):
        with pytest.raises(ValueError, match="empty"):
            resolve_workload([])

    def test_generator_input_accepted(self):
        gemms = (GemmShape(m=8, n=8, t=8, name=f"g{i}") for i in range(3))
        resolved, name = resolve_workload(gemms, model_name="gen")
        assert len(resolved) == 3
        assert name == "gen"

    def test_exhausted_generator_is_value_error_not_type_error(self):
        empty = (g for g in [])
        with pytest.raises(ValueError, match="empty"):
            resolve_workload(empty)

    @pytest.mark.parametrize("bogus", [42, 3.14, object(), GemmShape(m=1, n=1, t=1)])
    def test_non_workload_raises_typed_error_naming_argument(self, bogus):
        with pytest.raises(InvalidWorkloadError, match="model argument"):
            resolve_workload(bogus)
        # The typed error is still a TypeError for generic handlers.
        with pytest.raises(TypeError):
            resolve_workload(bogus)


class TestCustomActivityModelValidation:
    """Both backends reject a custom model emitting out-of-range factors."""

    class _Overdriven(ConstantActivity):
        """Bypasses ConstantActivity's bound check to emit activity > 1."""

        def activity(self, gemm, rows, cols):
            return 1.5

        def activity_vector(self, m, n, t, rows, cols):
            import numpy as np

            return np.full(len(m), 1.5)

        def cache_key(self):
            return ("overdriven",)

    def test_analytical_and_batched_agree_on_rejection(self):
        config = ArrayFlexConfig(rows=8, cols=8, activity_model=self._Overdriven())
        gemm = GemmShape(m=8, n=8, t=8, name="x")
        with pytest.raises(ValueError, match="activity"):
            AnalyticalBackend().schedule_layer(gemm, config)
        with pytest.raises(ValueError, match="activity"):
            BatchedCachedBackend().schedule_layer(gemm, config)
        with pytest.raises(ValueError, match="activity"):
            BatchedCachedBackend().schedule_model_conventional(
                [gemm], config, model_name="x"
            )

    def test_config_requires_the_vector_method_too(self):
        class ScalarOnly:
            def activity(self, gemm, rows, cols):
                return 1.0

            def cache_key(self):
                return ("scalar-only",)

        with pytest.raises(ValueError, match="activity_vector"):
            ArrayFlexConfig(rows=8, cols=8, activity_model=ScalarOnly())


class TestServingActivityIdentity:
    def test_activity_models_do_not_dedup_together(self):
        from repro.serve import ScheduleRequest, SchedulingService

        constant = ArrayFlexConfig.paper_128x128()
        derated = constant.with_activity_model("utilization")
        with SchedulingService(max_workers=2) as service:
            results = service.schedule_all(
                [
                    ScheduleRequest(model="mobilenet_v1", config=constant),
                    ScheduleRequest(model="mobilenet_v1", config=derated),
                    ScheduleRequest(model="mobilenet_v1", config=constant),
                ]
            )
            stats = service.stats()
        assert stats["submitted"] == 2  # constant + derated, third deduped
        assert stats["deduplicated"] == 1
        assert results[0].total_energy_nj == results[2].total_energy_nj
        assert results[1].total_energy_nj < results[0].total_energy_nj
        assert results[1].total_time_ns == results[0].total_time_ns
